//! Durability integration tests: process-kill restart and live ingestion.
//!
//! The contract under test extends the recovery suite's bit-identity rule
//! across a **process boundary**: a job whose whole process dies at a
//! durable checkpoint commit, resumed from the on-disk store by a fresh
//! engine via [`JobEngine::resume`], must finish **bit-identical** to the
//! same job never having been killed — at every barrier, in every crash
//! phase, on both solvers and both backends, and through a mid-substitution
//! kill (the adopted spare's checkpoint round-trips through disk). On the
//! same splice seam, scan positions streamed into a running job via
//! [`JobHandle::ingest`] must converge to the batch run over the final
//! dataset, bit for bit.

use ptycho_cluster::{CommError, CrashPhase, FaultPolicy};
use ptycho_core::{
    CheckpointStore, DurabilityError, JobEngine, JobError, JobReport, JobSpec, JobState,
    ReconstructionResult, ServiceBackend, SolverConfig, SolverMethod,
};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::path::PathBuf;
use std::time::Duration;

mod common;
use common::assert_bit_identical;

/// A fresh scratch directory for one test's checkpoint store.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ptycho-durable-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> Dataset {
    Dataset::synthesize(SyntheticConfig::tiny())
}

/// A 2-iteration spec for `method` on `backend` over the tiny dataset —
/// two consistency barriers, so the store commits epochs 0 and 1.
fn spec_for(method: SolverMethod, backend: ServiceBackend) -> JobSpec {
    let config = match method {
        SolverMethod::GradientDecomposition => SolverConfig {
            iterations: 2,
            halo_px: 20,
            ..SolverConfig::default()
        },
        SolverMethod::HaloVoxelExchange => SolverConfig {
            iterations: 2,
            hve_extra_probe_rows: 1,
            ..SolverConfig::default()
        },
    };
    JobSpec::new(tiny(), config, (2, 2))
        .with_method(method)
        .with_backend(backend)
}

/// Runs `spec` to completion on a dedicated engine and returns the result —
/// the uninterrupted baseline every kill/resume cycle must reproduce.
fn uninterrupted(spec: JobSpec) -> ReconstructionResult {
    let report = JobEngine::new(8)
        .submit(spec)
        .expect("fits the fleet")
        .wait();
    assert_eq!(report.state, JobState::Completed);
    report.result.expect("completed")
}

fn assert_process_killed(report: &JobReport, expect_seq: u64) {
    assert_eq!(report.state, JobState::Failed);
    match report.error.as_ref().expect("killed jobs carry an error") {
        JobError::Failed(failure) => match failure.error {
            CommError::ProcessKilled { seq, .. } => {
                assert_eq!(seq, expect_seq, "kill must strike the armed barrier")
            }
            ref other => panic!("expected ProcessKilled, got {other:?}"),
        },
        other => panic!("expected JobError::Failed, got {other}"),
    }
}

/// The tentpole matrix: kill the process at **every** barrier (epoch 0 and
/// epoch 1 of a 2-iteration run), for both solvers on both backends, and
/// pin each resumed run bit-identical to the uninterrupted one.
#[test]
fn kill_at_every_barrier_resumes_bit_identical_for_both_solvers_and_backends() {
    let backends = [
        ("lockstep", ServiceBackend::Lockstep),
        (
            "threaded",
            ServiceBackend::Threaded {
                recv_timeout: Duration::from_millis(500),
            },
        ),
    ];
    for (method_label, method) in [
        ("gd", SolverMethod::GradientDecomposition),
        ("hve", SolverMethod::HaloVoxelExchange),
    ] {
        for (backend_label, backend) in backends {
            let baseline = uninterrupted(spec_for(method, backend));
            for kill_seq in 0..2u64 {
                let label = format!("{method_label}/{backend_label}/seq{kill_seq}");
                let dir = scratch(&label.replace('/', "-"));
                let engine = JobEngine::new(8);
                let killed = engine
                    .submit(
                        spec_for(method, backend)
                            .with_checkpoint_dir(&dir)
                            .with_fault_policy(
                                FaultPolicy::reliable(7)
                                    .kill_process_at_barrier(kill_seq, CrashPhase::AfterRename),
                            ),
                    )
                    .expect("fits the fleet")
                    .wait();
                assert_process_killed(&killed, kill_seq);

                let resumed = engine.resume(&dir).expect("resumable").wait();
                assert_eq!(resumed.state, JobState::Completed, "{label}");
                assert_bit_identical(&baseline, resumed.result.as_ref().unwrap());
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

/// Each crash phase leaves the documented on-disk state — `BeforeRename`
/// and `DuringRename` fall back to the previous epoch (the torn manifest is
/// rejected by checksum with a typed reason, never trusted), `AfterRename`
/// resumes from the committed one — and every phase's resume is
/// bit-identical to the uninterrupted run.
#[test]
fn every_crash_phase_resumes_bit_identical() {
    let baseline = uninterrupted(spec_for(
        SolverMethod::GradientDecomposition,
        ServiceBackend::Lockstep,
    ));
    for (phase, surviving_seq) in [
        (CrashPhase::BeforeRename, 0),
        (CrashPhase::DuringRename, 0),
        (CrashPhase::AfterRename, 1),
    ] {
        let dir = scratch(&format!("phase-{phase:?}"));
        let engine = JobEngine::new(8);
        let killed = engine
            .submit(
                spec_for(
                    SolverMethod::GradientDecomposition,
                    ServiceBackend::Lockstep,
                )
                .with_checkpoint_dir(&dir)
                .with_fault_policy(FaultPolicy::reliable(3).kill_process_at_barrier(1, phase)),
            )
            .expect("fits the fleet")
            .wait();
        assert_process_killed(&killed, 1);

        // The store sees exactly what the phase documents.
        let recovery = CheckpointStore::open(&dir)
            .expect("store reopens")
            .recover()
            .expect("scan succeeds");
        let epoch = recovery.epoch.expect("an epoch survives every phase");
        assert_eq!(epoch.manifest.seq, surviving_seq, "phase {phase:?}");
        match phase {
            CrashPhase::AfterRename => assert!(recovery.rejected.is_empty()),
            CrashPhase::DuringRename => {
                assert_eq!(recovery.rejected.len(), 1);
                assert!(
                    recovery.rejected[0].1.contains("checksum mismatch"),
                    "torn manifests must be rejected by checksum, got: {}",
                    recovery.rejected[0].1
                );
            }
            CrashPhase::BeforeRename => assert_eq!(recovery.rejected.len(), 1),
        }

        let resumed = engine.resume(&dir).expect("resumable").wait();
        assert_eq!(resumed.state, JobState::Completed, "phase {phase:?}");
        assert_bit_identical(&baseline, resumed.result.as_ref().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Torn-write tolerance at the service level: truncating the newest
/// manifest mid-byte makes resume fall back to the previous epoch (and
/// still finish bit-identical); corrupting the fallback too yields a typed
/// rejection listing every bad epoch — never a panic, never a silent wrong
/// resume.
#[test]
fn torn_newest_checkpoint_falls_back_and_total_corruption_is_a_typed_error() {
    let spec = spec_for(
        SolverMethod::GradientDecomposition,
        ServiceBackend::Lockstep,
    );
    let baseline = uninterrupted(spec.clone());

    let dir = scratch("torn");
    let engine = JobEngine::new(8);
    let clean = engine
        .submit(spec.with_checkpoint_dir(&dir))
        .expect("fits the fleet")
        .wait();
    assert_eq!(clean.state, JobState::Completed);
    assert_bit_identical(&baseline, clean.result.as_ref().unwrap());

    // Tear the newest manifest mid-byte, as a crash mid-write would.
    let newest = dir.join("epoch-0000000001").join("manifest.ckpt");
    let bytes = std::fs::read(&newest).expect("newest manifest exists");
    std::fs::write(&newest, &bytes[..bytes.len() - 3]).expect("truncate");

    let resumed = engine.resume(&dir).expect("falls back to epoch 0").wait();
    assert_eq!(resumed.state, JobState::Completed);
    assert_bit_identical(&baseline, resumed.result.as_ref().unwrap());

    // The resumed run committed epoch 2 and pruned epoch 0, leaving the
    // torn epoch 1 plus the fresh epoch 2. Flip a byte in epoch 2's slot
    // file too: now no epoch verifies, and resume must refuse with every
    // rejection reason — never panic, never trust a bad byte.
    let slot = dir.join("epoch-0000000002").join("slot-0.ckpt");
    let mut bytes = std::fs::read(&slot).expect("newest slot exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&slot, &bytes).expect("corrupt");
    match JobEngine::new(8).resume(&dir) {
        Err(JobError::Rejected { reason }) => {
            assert!(
                reason.contains("no valid checkpoint epoch"),
                "got: {reason}"
            );
            assert!(reason.contains("checksum mismatch"), "got: {reason}");
        }
        Ok(_) => panic!("fully corrupted store must not resume"),
        Err(other) => panic!("expected Rejected, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mid-substitution kill: rank 1's node dies early (healed by promoting a
/// shared-pool spare), then the whole process is killed at the first barrier
/// the substituted attempt commits. The resumed run must adopt the
/// checkpointed membership — the spare's slot state round-trips through
/// disk — and finish bit-identical to the same job killed never.
#[test]
fn mid_substitution_kill_round_trips_the_adopted_checkpoint() {
    let node_death = FaultPolicy::reliable(5).kill_rank(1, 1);
    let spec = spec_for(
        SolverMethod::GradientDecomposition,
        ServiceBackend::Lockstep,
    )
    .with_fault_policy(node_death.clone());
    let baseline = {
        let report = JobEngine::new(8)
            .submit(spec.clone())
            .expect("fits the fleet")
            .wait();
        assert_eq!(report.state, JobState::Completed);
        let result = report.result.expect("healed");
        assert_eq!(result.recovery.substitutions, 1, "the death must heal");
        result
    };

    let dir = scratch("mid-substitution");
    let engine = JobEngine::new(8);
    let killed = engine
        .submit(
            spec.clone()
                .with_checkpoint_dir(&dir)
                .with_fault_policy(node_death.kill_process_at_barrier(0, CrashPhase::AfterRename)),
        )
        .expect("fits the fleet")
        .wait();
    assert_process_killed(&killed, 0);

    // The surviving epoch was committed by the substituted attempt: its
    // membership has already promoted the spare.
    let epoch = CheckpointStore::open(&dir)
        .expect("store reopens")
        .recover()
        .expect("scan succeeds")
        .epoch
        .expect("epoch 0 committed");
    assert_eq!(epoch.manifest.substitutions, 1);

    let resumed = engine.resume(&dir).expect("resumable").wait();
    assert_eq!(resumed.state, JobState::Completed);
    let resumed = resumed.result.expect("completed");
    assert_eq!(resumed.recovery.substitutions, 1);
    assert_bit_identical(&baseline, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live ingestion, splice-before-start: frames streamed into a still-queued
/// job are spliced in before its first iteration, and the run over the
/// grown dataset is bit-identical to the batch run over the full one.
#[test]
fn frames_ingested_before_admission_match_the_batch_run() {
    let full = tiny();
    let batch = uninterrupted(JobSpec::new(
        full.clone(),
        SolverConfig {
            iterations: 2,
            halo_px: 20,
            ..SolverConfig::default()
        },
        (2, 2),
    ));

    let prefix = 5;
    let engine = JobEngine::paused(8);
    let job = engine
        .submit(JobSpec::new(
            full.clone().with_scan_prefix(prefix),
            SolverConfig {
                iterations: 2,
                halo_px: 20,
                ..SolverConfig::default()
            },
            (2, 2),
        ))
        .expect("fits the fleet");
    assert!(job.ingest(full.frames_after(prefix)), "job is live");
    engine.start_admitting();
    let report = job.wait();
    assert_eq!(report.state, JobState::Completed);
    assert_bit_identical(&batch, report.result.as_ref().unwrap());
}

/// Live ingestion against a running job: whenever the frames land — before
/// the first boundary poll, mid-run (surfacing as a preemption and re-run),
/// or after the last one (caught by the post-completion pending check) —
/// the final volume is bit-identical to the batch run.
#[test]
fn frames_ingested_mid_run_match_the_batch_run() {
    let full = tiny();
    let config = SolverConfig {
        iterations: 4,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let batch = uninterrupted(JobSpec::new(full.clone(), config, (2, 2)));

    let prefix = 7;
    let engine = JobEngine::new(8);
    let job = engine
        .submit(JobSpec::new(
            full.clone().with_scan_prefix(prefix),
            config,
            (2, 2),
        ))
        .expect("fits the fleet");
    // Deliberately racing the run: every interleaving must converge to the
    // same bits.
    assert!(job.ingest(full.frames_after(prefix)), "job is live");
    let report = job.wait();
    assert_eq!(report.state, JobState::Completed);
    assert_bit_identical(&batch, report.result.as_ref().unwrap());
}

/// Ingestion and durable checkpointing compose: a streamed job that is
/// killed after its splice resumes from disk — the resumed spec carries the
/// enlarged scan — and still matches the batch run.
#[test]
fn ingested_then_killed_job_resumes_over_the_grown_dataset() {
    let full = tiny();
    let config = SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let batch = uninterrupted(JobSpec::new(full.clone(), config, (2, 2)));

    let prefix = 6;
    let dir = scratch("ingest-kill");
    let engine = JobEngine::paused(8);
    let job = engine
        .submit(
            JobSpec::new(full.clone().with_scan_prefix(prefix), config, (2, 2))
                .with_checkpoint_dir(&dir)
                .with_fault_policy(
                    FaultPolicy::reliable(11).kill_process_at_barrier(0, CrashPhase::AfterRename),
                ),
        )
        .expect("fits the fleet");
    assert!(job.ingest(full.frames_after(prefix)), "job is live");
    engine.start_admitting();
    assert_process_killed(&job.wait(), 0);

    let resumed = engine.resume(&dir).expect("resumable").wait();
    assert_eq!(resumed.state, JobState::Completed);
    assert_bit_identical(&batch, resumed.result.as_ref().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing is invisible in the numbers: the extra persistence
/// barriers change no message payloads, so a checkpointed run equals the
/// plain one bit for bit (already implied by the kill matrix, pinned
/// directly here for both solvers).
#[test]
fn checkpointing_does_not_perturb_the_reconstruction() {
    for method in [
        SolverMethod::GradientDecomposition,
        SolverMethod::HaloVoxelExchange,
    ] {
        let plain = uninterrupted(spec_for(method, ServiceBackend::Lockstep));
        let dir = scratch(&format!("invisible-{method:?}"));
        let checkpointed =
            uninterrupted(spec_for(method, ServiceBackend::Lockstep).with_checkpoint_dir(&dir));
        assert_bit_identical(&plain, &checkpointed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Durable checkpointing requires a barrier to ride: the fail-fast policy
/// has none, and the service refuses the combination at submission.
#[test]
fn fail_fast_with_a_checkpoint_dir_is_rejected_at_submission() {
    let dir = scratch("failfast");
    let spec = spec_for(
        SolverMethod::GradientDecomposition,
        ServiceBackend::Lockstep,
    )
    .with_recovery(ptycho_core::RecoveryPolicy::FailFast)
    .with_checkpoint_dir(&dir);
    match JobEngine::new(8).submit(spec) {
        Err(JobError::Rejected { reason }) => {
            assert!(reason.contains("recovering policy"), "got: {reason}")
        }
        Ok(_) => panic!("fail-fast + checkpointing must be refused"),
        Err(other) => panic!("expected Rejected, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming an empty or missing store is a typed refusal, not a panic.
#[test]
fn resuming_an_empty_store_is_rejected() {
    let dir = scratch("empty-resume");
    match JobEngine::new(8).resume(&dir) {
        Err(JobError::Rejected { reason }) => {
            assert!(
                reason.contains("no valid checkpoint epoch"),
                "got: {reason}"
            )
        }
        Ok(_) => panic!("an empty store must not resume"),
        Err(other) => panic!("expected Rejected, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Lockfile guard: one store owner at a time, stale locks reclaimed.
// ---------------------------------------------------------------------------

/// Two live handles on the same store directory are a concurrency bug the
/// lockfile turns into a typed error instead of silent corruption.
#[test]
fn double_open_of_a_checkpoint_store_is_a_typed_lock_error() {
    let dir = scratch("lock-double");
    let first = CheckpointStore::open(&dir).expect("first open acquires the lock");
    match CheckpointStore::open(&dir) {
        Err(DurabilityError::Locked { owner_pid, path }) => {
            assert_eq!(owner_pid, std::process::id(), "the lock names its owner");
            assert!(path.ends_with("lock"), "got: {}", path.display());
        }
        Ok(_) => panic!("a second open of a live store must be refused"),
        Err(other) => panic!("expected Locked, got {other}"),
    }
    drop(first);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dropping the store releases the lock, so sequential open → drop → open
/// cycles (the shape of every kill/resume drill) need no manual cleanup.
#[test]
fn dropping_the_store_releases_the_lock() {
    let dir = scratch("lock-drop");
    let store = CheckpointStore::open(&dir).expect("first open");
    let lock_path = store.lock_path().to_path_buf();
    assert!(lock_path.exists(), "the lock file exists while held");
    drop(store);
    assert!(!lock_path.exists(), "drop must remove the lock file");
    CheckpointStore::open(&dir).expect("reopen after drop succeeds");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A lock left behind by a killed process (its PID no longer runs) must be
/// detected as stale and reclaimed — a `kill -9` mid-run cannot brick the
/// store. PIDs near `u32::MAX` are far above any real `pid_max`.
#[test]
fn stale_lock_from_a_dead_process_is_reclaimed() {
    let dir = scratch("lock-stale");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(dir.join("lock"), format!("{}\n", u32::MAX - 7)).expect("plant stale lock");
    let store = CheckpointStore::open(&dir).expect("a dead owner's lock must be reclaimed");
    let owned = std::fs::read_to_string(store.lock_path()).expect("lock readable");
    assert_eq!(
        owned.trim().parse::<u32>().ok(),
        Some(std::process::id()),
        "the reclaimed lock must name the new owner"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unparsable lock file (torn write at kill time) is stale by
/// definition: no live owner can be identified, so open reclaims it.
#[test]
fn torn_lock_file_is_reclaimed() {
    let dir = scratch("lock-torn");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    std::fs::write(dir.join("lock"), b"gar\xFFbage").expect("plant torn lock");
    CheckpointStore::open(&dir).expect("a torn lock must be reclaimed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The engine surfaces the lock as a typed rejection: resuming a store that
/// another live engine still holds fails loudly instead of corrupting it.
#[test]
fn resume_of_a_held_store_is_rejected() {
    let dir = scratch("lock-resume");
    let engine = JobEngine::new(8);
    let killed = engine
        .submit(
            spec_for(
                SolverMethod::GradientDecomposition,
                ServiceBackend::Lockstep,
            )
            .with_checkpoint_dir(&dir)
            .with_fault_policy(
                FaultPolicy::reliable(7).kill_process_at_barrier(0, CrashPhase::AfterRename),
            ),
        )
        .expect("fits the fleet")
        .wait();
    assert_process_killed(&killed, 0);
    let guard = CheckpointStore::open(&dir).expect("hold the store");
    match JobEngine::new(8).resume(&dir) {
        Err(JobError::Rejected { reason }) => {
            assert!(reason.contains("locked by live process"), "got: {reason}")
        }
        Ok(_) => panic!("resuming a held store must be refused"),
        Err(other) => panic!("expected Rejected, got {other}"),
    }
    drop(guard);
    JobEngine::new(8)
        .resume(&dir)
        .expect("resume succeeds once the lock is free");
    let _ = std::fs::remove_dir_all(&dir);
}
