//! Helpers shared by the integration suites.
//!
//! Every suite used to carry its own copy of the same dataset, config and
//! backend fixtures; they live here once now. `mod common;` compiles this
//! file into each test binary separately, so not every binary uses every
//! helper — hence the file-level `dead_code` allowance.

#![allow(dead_code)]

use ptycho_cluster::{Cluster, ClusterTopology, LockstepBackend};
use ptycho_core::{
    GradientDecompositionSolver, HaloVoxelExchangeSolver, ReconstructionResult, RecoveryPolicy,
    SolverConfig,
};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

/// The shared small reconstruction problem: a 128 px, 2-slice object under a
/// 4×4 scan — big enough for a 2×2 tile grid with real halo traffic, small
/// enough that a 2-iteration solve takes milliseconds.
pub fn small_problem() -> Dataset {
    Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (4, 4),
        window_px: 32,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 21,
    })
}

/// The Gradient Decomposition config matching [`small_problem`].
pub fn gd_config() -> SolverConfig {
    SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    }
}

/// The Halo Voxel Exchange config matching [`small_problem`].
pub fn hve_config() -> SolverConfig {
    SolverConfig {
        iterations: 2,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    }
}

/// A Gradient Decomposition solver on the standard 2×2 grid.
pub fn gd_solver(dataset: &Dataset) -> GradientDecompositionSolver<'_> {
    GradientDecompositionSolver::new(dataset, gd_config(), (2, 2))
}

/// A Halo Voxel Exchange solver on the standard 2×2 grid.
pub fn hve_solver(dataset: &Dataset) -> HaloVoxelExchangeSolver<'_> {
    HaloVoxelExchangeSolver::new(dataset, hve_config(), (2, 2)).expect("feasible decomposition")
}

/// The deterministic lockstep backend on the Summit topology.
pub fn lockstep() -> LockstepBackend {
    LockstepBackend::new(ClusterTopology::summit())
}

/// The threaded backend with a bounded receive, so lost messages surface as
/// errors within `timeout_ms` instead of after the 30 s loss-detection
/// default. Suites pick the timeout their fault scenario needs.
pub fn threaded(timeout_ms: u64) -> Cluster {
    Cluster::new(ClusterTopology::summit()).with_recv_timeout(Duration::from_millis(timeout_ms))
}

/// Retransmit + checkpoint-restart recovery with the standard budget.
pub fn restart_policy() -> RecoveryPolicy {
    RecoveryPolicy::RetransmitThenRestart {
        max_iteration_restarts: 2,
    }
}

/// Spare-substitution recovery with a pool of `spares` standby nodes.
pub fn substitute_policy(spares: usize) -> RecoveryPolicy {
    RecoveryPolicy::SubstituteSpare {
        spares,
        max_iteration_restarts: 1,
    }
}

/// Asserts two reconstructions match **bit for bit**: every voxel of the
/// stitched volume and every entry of the cost history. This is the
/// recovery contract — a healed run (retransmit, checkpoint restart, spare
/// substitution) must be indistinguishable from a fault-free one.
pub fn assert_bit_identical(a: &ReconstructionResult, b: &ReconstructionResult) {
    assert_eq!(a.volume.shape(), b.volume.shape());
    for (x, y) in a.volume.iter().zip(b.volume.iter()) {
        assert_eq!(
            x.re.to_bits(),
            y.re.to_bits(),
            "volumes must match bit for bit"
        );
        assert_eq!(
            x.im.to_bits(),
            y.im.to_bits(),
            "volumes must match bit for bit"
        );
    }
    assert_eq!(
        a.cost_history.costs().len(),
        b.cost_history.costs().len(),
        "cost histories must cover the same iterations"
    );
    for (x, y) in a.cost_history.costs().iter().zip(b.cost_history.costs()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "cost histories must match bit for bit"
        );
    }
}

/// Runs the same test body once per solver: `$solver` binds a
/// [`GradientDecompositionSolver`] and then a [`HaloVoxelExchangeSolver`]
/// (both on [`small_problem`]'s standard 2×2 fixtures), `$label` names the
/// method for assertion messages. The body is expanded twice, so it only
/// needs the API surface the two solvers share (`run`, `try_run`,
/// `run_with_recovery`, `run_job`, `grid`).
#[allow(unused_macros)]
macro_rules! run_both_solvers {
    ($dataset:expr, |$solver:ident, $label:ident| $body:block) => {{
        {
            let $label = "gradient-decomposition";
            let $solver = $crate::common::gd_solver($dataset);
            let _ = &$label;
            $body
        }
        {
            let $label = "halo-voxel-exchange";
            let $solver = $crate::common::hve_solver($dataset);
            let _ = &$label;
            $body
        }
    }};
}
#[allow(unused_imports)]
pub(crate) use run_both_solvers;
