//! Helpers shared by the integration suites.

use ptycho_core::ReconstructionResult;

/// Asserts two reconstructions match **bit for bit**: every voxel of the
/// stitched volume and every entry of the cost history. This is the
/// recovery contract — a healed run (retransmit, checkpoint restart, spare
/// substitution) must be indistinguishable from a fault-free one.
pub fn assert_bit_identical(a: &ReconstructionResult, b: &ReconstructionResult) {
    assert_eq!(a.volume.shape(), b.volume.shape());
    for (x, y) in a.volume.iter().zip(b.volume.iter()) {
        assert_eq!(
            x.re.to_bits(),
            y.re.to_bits(),
            "volumes must match bit for bit"
        );
        assert_eq!(
            x.im.to_bits(),
            y.im.to_bits(),
            "volumes must match bit for bit"
        );
    }
    assert_eq!(
        a.cost_history.costs().len(),
        b.cost_history.costs().len(),
        "cost histories must cover the same iterations"
    );
    for (x, y) in a.cost_history.costs().iter().zip(b.cost_history.costs()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "cost histories must match bit for bit"
        );
    }
}
