//! Zero-allocation regression gate for the reconstruction hot path.
//!
//! ISSUE 4's tentpole makes the steady-state Gradient Decomposition
//! iteration allocation-free: FFTs run in place through pooled
//! [`Fft2Scratch`](ptycho_fft::fft2d::Fft2Scratch) workspaces, the
//! multislice forward/adjoint evaluation reuses a `SimWorkspace`, the
//! per-rank gradient and accumulation buffers are pooled at `init`, and the
//! buffer resets happen in place. This binary installs a counting global
//! allocator and pins the property: a single-rank GD run with extra
//! iterations must perform **exactly** the same number of allocations as a
//! shorter run — i.e. a steady-state iteration allocates nothing.
//!
//! ISSUE 5 extends the pin to **multi-rank** sends and to the **HVE**
//! kernel: every wire payload now comes out of a rank-local
//! [`TilePayloadPool`](ptycho_cluster::TilePayloadPool) that recycles
//! `SharedTile` buffers once their `Arc` strong count returns to 1, so a
//! steady-state lockstep 2×2 GD iteration allocates nothing either.

//!
//! ISSUE 7 extends the pin once more: attaching a telemetry flight recorder
//! must not break it. The per-rank ring buffers are preallocated when the
//! rank's sink is created (a per-run setup cost identical between the short
//! and long runs), so recording an event on the steady-state path is a ring
//! write — zero allocations.

use ptycho_alloc::CountingAllocator;
use ptycho_cluster::{ClusterTopology, LockstepBackend, SharedTile};
use ptycho_core::{
    GradientDecompositionSolver, HaloVoxelExchangeSolver, JobContext, RecoveryPolicy, SolverConfig,
};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use ptycho_telemetry::Telemetry;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Allocation events of one full GD reconstruction on a `grid` tile
/// decomposition: everything between `run` and the stitched result (rank
/// spawn, kernel init with its pooled buffers, every iteration, stitching).
/// Dataset synthesis, solver and backend construction happen before the
/// counter snapshot and are not measured.
fn gd_run_allocations(dataset: &Dataset, iterations: usize, grid: (usize, usize)) -> u64 {
    let config = SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    };
    // The lockstep backend schedules deterministically (one runnable rank,
    // fixed baton order), so two runs perform identical allocation sequences
    // and the comparison below is exact, not statistical.
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let solver = GradientDecompositionSolver::new(dataset, config, grid);
    let before = ALLOC.allocations();
    let result = solver.run(&backend);
    let after = ALLOC.allocations();
    assert!(result.cost_history.final_cost().is_finite());
    after - before
}

/// The multi-rank GD measurement with a telemetry flight recorder attached:
/// every send, receive and iteration event is recorded into the preallocated
/// per-rank rings. Sink creation (the ring allocations) happens inside the
/// measured window but costs the same for the short and the long run, so the
/// `long == short` pin still isolates the steady-state iterations.
fn gd_traced_allocations(dataset: &Dataset, iterations: usize, grid: (usize, usize)) -> u64 {
    let config = SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let solver = GradientDecompositionSolver::new(dataset, config, grid);
    // No durable writer: the in-memory recorder alone must be free. (The
    // JSONL serialisation runs driver-side after the ranks finish and is
    // allowed to allocate; it is exercised by the telemetry suite.)
    let telemetry = Telemetry::new();
    let job = JobContext {
        telemetry: Some(&telemetry),
        ..JobContext::default()
    };
    let before = ALLOC.allocations();
    let result = solver
        .run_job(&backend, RecoveryPolicy::FailFast, &job)
        .expect("traced run completes");
    let after = ALLOC.allocations();
    assert!(result.cost_history.final_cost().is_finite());
    assert!(telemetry.total_recorded() > 0, "the recorder must be live");
    after - before
}

/// The same measurement for the Halo Voxel Exchange baseline kernel.
fn hve_run_allocations(dataset: &Dataset, iterations: usize, grid: (usize, usize)) -> u64 {
    let config = SolverConfig {
        iterations,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let solver = HaloVoxelExchangeSolver::new(dataset, config, grid).expect("feasible");
    let before = ALLOC.allocations();
    let result = solver.run(&backend);
    let after = ALLOC.allocations();
    assert!(result.cost_history.final_cost().is_finite());
    after - before
}

/// Pins `long == short` for a measured pair, i.e. the extra iterations
/// allocated exactly nothing.
fn assert_steady_state(label: &str, short: u64, long: u64) {
    assert!(
        short > 0,
        "{label}: init is expected to allocate the pooled buffers"
    );
    assert_eq!(
        long,
        short,
        "{label}: the extra steady-state iterations performed {} extra allocations \
         (expected zero: every per-iteration buffer and wire payload must be pooled)",
        long as i64 - short as i64
    );
}

// A single #[test] on purpose: the harness runs tests concurrently, and a
// second test allocating in parallel would corrupt the global counters.
#[test]
fn steady_state_iterations_are_allocation_free() {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());

    // Warm-up runs: lazy runtime initialisation (thread-local storage, stdio
    // locks, ...) must not be charged to the measured runs.
    let _ = gd_run_allocations(&dataset, 1, (1, 1));
    let _ = gd_run_allocations(&dataset, 1, (2, 2));
    let _ = hve_run_allocations(&dataset, 1, (1, 1));
    let _ = gd_traced_allocations(&dataset, 1, (2, 2));

    // Single-rank GD (the ISSUE 4 pin).
    assert_steady_state(
        "GD 1x1",
        gd_run_allocations(&dataset, 2, (1, 1)),
        gd_run_allocations(&dataset, 6, (1, 1)),
    );

    // Multi-rank GD: each iteration sends pass messages in every direction;
    // with the payload pool those sends must reuse released buffers, so a
    // lockstep 2x2 run is steady-state allocation-free too (ISSUE 5).
    assert_steady_state(
        "GD 2x2",
        gd_run_allocations(&dataset, 2, (2, 2)),
        gd_run_allocations(&dataset, 6, (2, 2)),
    );

    // Multi-rank GD with the flight recorder on: recording an event is a
    // write into a preallocated ring, so the steady-state iterations stay
    // allocation-free with telemetry enabled (ISSUE 7).
    assert_steady_state(
        "GD 2x2 + telemetry",
        gd_traced_allocations(&dataset, 2, (2, 2)),
        gd_traced_allocations(&dataset, 6, (2, 2)),
    );

    // The HVE baseline kernel (single rank: pooled gradient scratch and
    // workspace, no exchange traffic).
    assert_steady_state(
        "HVE 1x1",
        hve_run_allocations(&dataset, 2, (1, 1)),
        hve_run_allocations(&dataset, 6, (1, 1)),
    );

    // The zero-copy payload pin: cloning a SharedTile — what the
    // fault-injection duplicator and ReliableComm's retransmit outbox do to
    // every in-flight message — must alias the Arc, not copy the buffer.
    let tile = SharedTile::new(vec![0.5; 1 << 16]);
    let before = ALLOC.allocations();
    let copy = tile.clone();
    assert_eq!(
        ALLOC.allocations(),
        before,
        "cloning a SharedTile must not allocate"
    );
    assert_eq!(copy.len(), 1 << 16);

    // The control-frame pin: heartbeats and acknowledgements carry
    // SharedTile::default(), which aliases one static empty buffer (first
    // use initialises the static; that one-time cost is not the pin).
    let _ = SharedTile::default();
    let before = ALLOC.allocations();
    let empty = SharedTile::default();
    assert_eq!(
        ALLOC.allocations(),
        before,
        "SharedTile::default must alias the static empty tile, not allocate"
    );
    assert!(empty.is_empty());
}
