//! Zero-allocation regression gate for the reconstruction hot path.
//!
//! ISSUE 4's tentpole makes the steady-state Gradient Decomposition
//! iteration allocation-free: FFTs run in place through pooled
//! [`Fft2Scratch`](ptycho_fft::fft2d::Fft2Scratch) workspaces, the
//! multislice forward/adjoint evaluation reuses a `SimWorkspace`, the
//! per-rank gradient and accumulation buffers are pooled at `init`, and the
//! buffer resets happen in place. This binary installs a counting global
//! allocator and pins the property: a single-rank GD run with extra
//! iterations must perform **exactly** the same number of allocations as a
//! shorter run — i.e. a steady-state iteration allocates nothing.
//!
//! (Multi-rank runs inherently allocate per iteration: each wire message is
//! one fresh payload `Vec`. Those payloads are covered separately below — a
//! `SharedTile` clone, the unit the comm layers copy, must not allocate.)

use ptycho_alloc::CountingAllocator;
use ptycho_cluster::{ClusterTopology, LockstepBackend, SharedTile};
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Allocation events of one full single-rank GD reconstruction: everything
/// between `run` and the stitched result (rank spawn, kernel init with its
/// pooled buffers, every iteration, stitching). Dataset synthesis, solver
/// and backend construction happen before the counter snapshot and are not
/// measured.
fn gd_run_allocations(dataset: &Dataset, iterations: usize) -> u64 {
    let config = SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    };
    // The lockstep backend schedules deterministically (one runnable rank,
    // fixed baton order), so two runs perform identical allocation sequences
    // and the comparison below is exact, not statistical.
    let backend = LockstepBackend::new(ClusterTopology::summit());
    let solver = GradientDecompositionSolver::new(dataset, config, (1, 1));
    let before = ALLOC.allocations();
    let result = solver.run(&backend);
    let after = ALLOC.allocations();
    assert!(result.cost_history.final_cost().is_finite());
    after - before
}

// A single #[test] on purpose: the harness runs tests concurrently, and a
// second test allocating in parallel would corrupt the global counters.
#[test]
fn steady_state_gd_iteration_is_allocation_free() {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());

    // Warm-up run: lazy runtime initialisation (thread-local storage, stdio
    // locks, ...) must not be charged to the measured runs.
    let _ = gd_run_allocations(&dataset, 1);

    let short = gd_run_allocations(&dataset, 2);
    let long = gd_run_allocations(&dataset, 6);
    assert!(short > 0, "init is expected to allocate the pooled buffers");
    assert_eq!(
        long,
        short,
        "4 extra steady-state GD iterations performed {} extra allocations \
         (expected zero: every per-iteration buffer must be pooled)",
        long as i64 - short as i64
    );

    // The zero-copy payload pin: cloning a SharedTile — what the
    // fault-injection duplicator and ReliableComm's retransmit outbox do to
    // every in-flight message — must alias the Arc, not copy the buffer.
    let tile = SharedTile::new(vec![0.5; 1 << 16]);
    let before = ALLOC.allocations();
    let copy = tile.clone();
    assert_eq!(
        ALLOC.allocations(),
        before,
        "cloning a SharedTile must not allocate"
    );
    assert_eq!(copy.len(), 1 << 16);
}
