//! Integration tests for rank membership and spare-rank substitution.
//!
//! The contract under test: a **permanently dead rank** — which defeats both
//! retransmission (the node answers nothing) and checkpoint restarts (it
//! dies again every attempt) — is healed by
//! [`RecoveryPolicy::SubstituteSpare`]: a standby spare node adopts the dead
//! node's tile from its last consistency-barrier checkpoint, the membership
//! epoch is bumped, and the finished reconstruction is **bit-identical** to
//! the fault-free one, on both solvers and both backends. Without spares the
//! legacy policies keep their exact pre-membership behaviour.

use ptycho_cluster::backend::reliable::wire_data_tag;
use ptycho_cluster::membership::frames;
use ptycho_cluster::{
    CommBackend, CommError, FaultAction, FaultInjectionBackend, FaultPolicy, LockstepBackend,
    RankComm, ReliableComm, ReliableStats, SharedTile,
};
use ptycho_core::RecoveryPolicy;

mod common;
use common::{
    assert_bit_identical, gd_solver, hve_solver, lockstep, small_problem, substitute_policy,
};

// A dead rank's silence should be detected (and the substitution triggered)
// quickly, not after the 30 s loss-detection default.
fn threaded() -> ptycho_cluster::Cluster {
    common::threaded(100)
}

/// Kills node 1 early in iteration 0 (its second send decision, counting
/// acknowledgements — well before the first consistency barrier).
fn early_death() -> FaultPolicy {
    FaultPolicy::reliable(0).kill_rank(1, 1)
}

/// Kills node 1 in a later iteration: by its seventh send decision the rank
/// has completed iteration 0 (data sends + acks + heartbeat), so the spare
/// must resume from the iteration-0 checkpoint rather than from scratch.
fn late_death() -> FaultPolicy {
    FaultPolicy::reliable(0).kill_rank(1, 6)
}

#[test]
fn gd_spare_substitution_heals_a_dead_rank_on_both_backends() {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    for (label, backend_kind) in [("lockstep", 0), ("threaded", 1)] {
        let healed = if backend_kind == 0 {
            solver.run_with_recovery(
                &FaultInjectionBackend::new(lockstep(), early_death()),
                substitute_policy(1),
            )
        } else {
            solver.run_with_recovery(
                &FaultInjectionBackend::new(threaded(), early_death()),
                substitute_policy(1),
            )
        };
        let healed = healed
            .unwrap_or_else(|failure| panic!("{label}: substitution must heal, got {failure}"));
        assert_bit_identical(&clean, &healed);
        assert_eq!(
            healed.recovery.substitutions, 1,
            "{label}: exactly one spare promotion"
        );
        assert_eq!(
            healed.recovery.membership_epoch, 1,
            "{label}: one promotion bumps the membership epoch once"
        );
        assert_eq!(
            healed.recovery.iteration_restarts, 0,
            "{label}: a death consumes a spare, not the restart budget"
        );
    }
}

#[test]
fn gd_substitution_resumes_from_the_adopted_checkpoint() {
    // The death lands after iteration 0's consistency barrier, so the
    // promoted spare must adopt the dead node's iteration-0 checkpoint and
    // the engine must not recompute iteration 0 — and the volume must still
    // come out bit-identical to the fault-free run.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    let faulty = FaultInjectionBackend::new(lockstep(), late_death());
    let healed = solver
        .run_with_recovery(&faulty, substitute_policy(1))
        .expect("substitution must heal a late death");
    assert_bit_identical(&clean, &healed);
    assert_eq!(healed.recovery.substitutions, 1);
}

#[test]
fn hve_spare_substitution_heals_a_dead_rank_on_both_backends() {
    let ds = small_problem();
    let solver = hve_solver(&ds);
    let clean = solver.run(&lockstep());

    for (label, backend_kind) in [("lockstep", 0), ("threaded", 1)] {
        let healed = if backend_kind == 0 {
            solver.run_with_recovery(
                &FaultInjectionBackend::new(lockstep(), early_death()),
                substitute_policy(1),
            )
        } else {
            solver.run_with_recovery(
                &FaultInjectionBackend::new(threaded(), early_death()),
                substitute_policy(1),
            )
        };
        let healed = healed
            .unwrap_or_else(|failure| panic!("{label}: substitution must heal, got {failure}"));
        assert_bit_identical(&clean, &healed);
        assert_eq!(healed.recovery.substitutions, 1, "{label}");
    }
}

#[test]
fn fault_free_spare_mode_is_bit_identical_and_counts_heartbeats() {
    // Configuring a spare pool must not perturb the numerics: a fault-free
    // SubstituteSpare run matches the plain run bit for bit, on both
    // backends, and the ring heartbeat ledger is complete (every beat sent
    // was observed by its ring successor).
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    let on_lockstep = solver
        .run_with_recovery(&lockstep(), substitute_policy(2))
        .expect("fault-free");
    let on_threaded = solver
        .run_with_recovery(&threaded(), substitute_policy(2))
        .expect("fault-free");
    for (label, run) in [("lockstep", &on_lockstep), ("threaded", &on_threaded)] {
        assert_bit_identical(&clean, run);
        assert_eq!(run.recovery.substitutions, 0, "{label}");
        assert_eq!(run.recovery.membership_epoch, 0, "{label}");
        // 4 ranks x 2 iterations, one ring beat each.
        assert_eq!(run.recovery.heartbeats_sent, 8, "{label}");
        assert_eq!(
            run.recovery.heartbeats_observed, 8,
            "{label}: every beat sent before a completed barrier is observable after it"
        );
    }
}

#[test]
fn rank_death_without_spares_keeps_the_legacy_policies_intact() {
    let ds = small_problem();
    let solver = gd_solver(&ds);

    // FailFast: the first attempt surfaces the failure.
    let failure = solver
        .try_run(&FaultInjectionBackend::new(lockstep(), early_death()))
        .expect_err("FailFast must not heal a dead rank");
    assert!(
        matches!(
            failure.error,
            CommError::RankDead { .. } | CommError::Deadlock { .. }
        ),
        "unexpected error: {}",
        failure.error
    );

    // RetransmitThenRestart: the node dies again on every attempt (same
    // node, same slot, same send count), so the restart budget runs out and
    // the run fails — exactly the pre-membership behaviour.
    let failure = solver
        .run_with_recovery(
            &FaultInjectionBackend::new(lockstep(), early_death()),
            RecoveryPolicy::RetransmitThenRestart {
                max_iteration_restarts: 2,
            },
        )
        .expect_err("restarts cannot heal a permanently dead rank");
    assert!(
        matches!(
            failure.error,
            CommError::RankDead { .. } | CommError::RecoveryExhausted { .. }
        ),
        "unexpected error: {}",
        failure.error
    );
}

#[test]
fn exhausted_spare_pool_surfaces_a_typed_error() {
    // A death with zero spares configured must fail with the typed
    // SparesExhausted error — not hang, not loop, not return a wrong volume.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let failure = solver
        .run_with_recovery(
            &FaultInjectionBackend::new(lockstep(), early_death()),
            substitute_policy(0),
        )
        .expect_err("no spares: the death cannot be healed");
    match failure.error {
        CommError::SparesExhausted { dead_node, .. } => assert_eq!(dead_node, 1),
        other => panic!("expected SparesExhausted, got {other}"),
    }
}

#[test]
fn rank_death_trace_replays_to_the_identical_reconstruction() {
    // Record a whole multi-attempt recovery (death in attempt 0, healed
    // attempt 1) with trace accumulation, then replay the recorded
    // decisions verbatim: the kill fires at the same send, the same spare
    // is promoted, and the volume matches bit for bit.
    let ds = small_problem();
    let solver = gd_solver(&ds);

    let recording = FaultInjectionBackend::new(lockstep(), early_death()).accumulate_traces();
    let first = solver
        .run_with_recovery(&recording, substitute_policy(1))
        .expect("substitution must heal");
    assert_eq!(first.recovery.substitutions, 1);
    let trace = recording.trace();
    assert!(
        trace.events().iter().any(|e| e.action == FaultAction::Kill),
        "the recorded trace must contain the rank death"
    );

    let replaying = FaultInjectionBackend::replay(lockstep(), &trace).accumulate_traces();
    let second = solver
        .run_with_recovery(&replaying, substitute_policy(1))
        .expect("the replay must heal identically");
    assert_eq!(second.recovery.substitutions, 1);
    assert_bit_identical(&first, &second);
    assert_eq!(
        replaying.trace().fault_count(),
        trace.fault_count(),
        "the replay re-executes exactly the recorded faults"
    );
}

#[test]
fn heartbeats_never_perturb_reliable_seq_accounting() {
    // Two identical reliable exchanges, one of them interleaving control
    // frames with the data traffic. A surgical drop pinned on an exact
    // *data* wire tag must hit the same logical message in both runs, the
    // retransmission must heal it identically, and the reliable layer's
    // stats (sequence counters, acks, retransmits) must not move by a
    // single unit — control frames are invisible to sequence accounting.
    fn exchange(with_heartbeats: bool) -> Vec<(Vec<f64>, ReliableStats)> {
        let policy = FaultPolicy::reliable(0).drop_message(0, 1, wire_data_tag(0x7, 1, 0), 0);
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let outcomes = backend
            .run::<SharedTile, (Vec<f64>, ReliableStats), _>(2, |ctx| {
                let mut rc = ReliableComm::new(ctx);
                let me = rc.rank();
                let peer = 1 - me;
                let mut got = Vec::new();
                for round in 0..3u64 {
                    if with_heartbeats {
                        rc.isend_control(
                            peer,
                            frames::heartbeat_tag(0, 0, round),
                            SharedTile::default(),
                        );
                    }
                    rc.isend(
                        peer,
                        0x7,
                        SharedTile::new(vec![(me as u64 * 10 + round) as f64]),
                    );
                    got.push(rc.recv(peer, 0x7)?.values()[0]);
                    if with_heartbeats {
                        let _ = rc.try_recv_control(peer, frames::heartbeat_tag(0, 0, round));
                    }
                }
                rc.barrier()?;
                Ok((got, rc.stats()))
            })
            .expect("the dropped frame is healed by retransmission");
        outcomes.into_iter().map(|o| o.result).collect()
    }

    let without = exchange(false);
    let with_heartbeats = exchange(true);
    assert_eq!(
        without, with_heartbeats,
        "control frames must not shift data seqs, acks or retransmit counts"
    );
    assert!(
        without.iter().any(|(_, stats)| stats.retransmits > 0),
        "the pinned drop must actually have been healed"
    );
}

// The assert fires inside the rank body, so it surfaces through the
// backend's thread join.
#[test]
#[should_panic(expected = "rank thread panicked")]
fn control_sends_reject_data_tags() {
    let backend = LockstepBackend::default();
    let _ = backend.run::<SharedTile, (), _>(2, |ctx| {
        let mut rc = ReliableComm::new(ctx);
        if rc.rank() == 0 {
            // Tag 0x7 has no control bit: the reliable layer must refuse to
            // smuggle it around sequence accounting.
            rc.isend_control(1, 0x7, SharedTile::default());
        }
        Ok(())
    });
}
