//! Integration tests for the cluster substrate driven by realistic
//! reconstruction workloads: message-passing patterns, time accounting,
//! topology-aware costs and the analytic scaling model they feed.

use ptycho_cluster::{Cluster, ClusterTopology, HardwareModel, RankComm, TimeBreakdown};
use ptycho_core::memory_model::{decomposition_geometry, gd_memory_per_gpu, hve_memory_per_gpu};
use ptycho_core::scaling::{Method, ScalingScenario, GD_HALO_PM, HVE_HALO_PM};
use ptycho_sim::dataset::DatasetSpec;

#[test]
fn all_to_one_gather_pattern_works_at_node_scale() {
    // A gather of per-rank partial costs to rank 0 — the pattern used to
    // assemble the global cost history — exercised at one "node" (6 ranks).
    let cluster = Cluster::new(ClusterTopology::summit());
    let outcomes = cluster
        .run::<Vec<f64>, f64, _>(6, |ctx| {
            let my_cost = (ctx.rank() + 1) as f64;
            if ctx.rank() == 0 {
                let mut total = my_cost;
                for peer in 1..ctx.size() {
                    total += ctx.recv(peer, 99)?[0];
                }
                Ok(total)
            } else {
                ctx.isend(0, 99, vec![my_cost]);
                Ok(0.0)
            }
        })
        .expect("no faults injected");
    assert_eq!(outcomes[0].result, 21.0);
}

#[test]
fn communication_charges_follow_topology() {
    // Sending the same bytes within a node must be cheaper than across nodes.
    let topology = ClusterTopology::summit();
    let cluster = Cluster::new(topology);
    let bytes = vec![0.0f64; 500_000];
    let outcomes = cluster
        .run::<Vec<f64>, (), _>(12, |ctx| {
            match ctx.rank() {
                0 => {
                    ctx.isend(1, 1, bytes.clone()); // same node
                    ctx.isend(7, 2, bytes.clone()); // different node
                }
                1 => {
                    let _ = ctx.recv(0, 1)?;
                }
                7 => {
                    let _ = ctx.recv(0, 2)?;
                }
                _ => {}
            }
            Ok(())
        })
        .expect("no faults injected");
    let sender = &outcomes[0].time;
    let intra = topology.transfer_time(0, 1, 500_000 * 8);
    let inter = topology.transfer_time(0, 7, 500_000 * 8);
    assert!((sender.communication - (intra + inter)).abs() < 1e-9);
    assert!(inter > intra);
}

#[test]
fn breakdown_totals_are_additive() {
    let a = TimeBreakdown {
        compute: 1.0,
        wait: 2.0,
        communication: 3.0,
    };
    let b = TimeBreakdown {
        compute: 0.5,
        wait: 0.5,
        communication: 0.5,
    };
    assert_eq!(a.merge(&b).total(), 7.5);
}

#[test]
fn scaling_model_is_consistent_with_memory_model() {
    // The scaling table's memory column must agree with the standalone memory
    // model for every GPU count and both methods.
    let mut scenario = ScalingScenario::new(DatasetSpec::lead_titanate_large());
    scenario.calibrate_to(6, 5543.0);
    for &gpus in &[6usize, 54, 198, 462] {
        let gd = scenario
            .point(Method::GradientDecomposition, gpus, true)
            .unwrap();
        let expected = gd_memory_per_gpu(&scenario.spec, gpus, GD_HALO_PM).gigabytes();
        assert!((gd.memory_gb - expected).abs() < 1e-9);

        if let Some(hve) = scenario.point(Method::HaloVoxelExchange, gpus, true) {
            let expected = hve_memory_per_gpu(&scenario.spec, gpus, HVE_HALO_PM, 2).gigabytes();
            assert!((hve.memory_gb - expected).abs() < 1e-9);
        }
    }
}

#[test]
fn decomposition_geometry_matches_summit_node_counts() {
    let spec = DatasetSpec::lead_titanate_large();
    let topology = ClusterTopology::summit();
    for &gpus in &[6usize, 462, 4158] {
        let geometry = decomposition_geometry(&spec, gpus, GD_HALO_PM, 0);
        assert_eq!(geometry.gpus, gpus);
        assert_eq!(geometry.grid.0 * geometry.grid.1, gpus);
        // The paper's node counts: 1, 77 and 693 nodes.
        let expected_nodes = match gpus {
            6 => 1,
            462 => 77,
            _ => 693,
        };
        assert_eq!(topology.nodes_for(gpus), expected_nodes);
    }
}

#[test]
fn cache_speedup_drives_superlinear_region() {
    // The per-GPU working set of the large dataset drops below the modelled
    // cache capacity somewhere between 54 and 4158 GPUs, which is where the
    // super-linear speedup comes from.
    let hw = HardwareModel::summit_v100();
    let spec = DatasetSpec::lead_titanate_large();
    let small_ws = {
        let g = decomposition_geometry(&spec, 4158, GD_HALO_PM, 0);
        3.0 * g.extended_area() * 8.0
    };
    let large_ws = {
        let g = decomposition_geometry(&spec, 6, GD_HALO_PM, 0);
        3.0 * g.extended_area() * 8.0
    };
    assert!(hw.cache_speedup(small_ws) > 2.0 * hw.cache_speedup(large_ws));
}
