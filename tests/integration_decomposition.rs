//! Integration tests for the decomposition machinery: tile grids, gradient
//! locality, accumulation passes and the memory accounting they imply.

use ptycho_array::Array3;
use ptycho_cluster::{
    Cluster, ClusterTopology, MemoryCategory, RankComm, SharedTile, TilePayloadPool,
};
use ptycho_core::gradient_decomp::passes::run_accumulation_passes;
use ptycho_core::tiling::TileGrid;
use ptycho_core::{GradientDecompositionSolver, HaloVoxelExchangeSolver, SolverConfig};
use ptycho_fft::{CArray3, Complex64};
use ptycho_sim::dataset::{extract_patch, scatter_patch, Dataset, SyntheticConfig};
use ptycho_sim::probe_gradient;

fn dataset() -> Dataset {
    Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (4, 4),
        window_px: 32,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 3,
    })
}

#[test]
fn tile_grid_partitions_probes_and_image() {
    let ds = dataset();
    let (_, rows, cols) = ds.object_shape();
    for dims in [(2usize, 2usize), (2, 3), (3, 3)] {
        let grid = TileGrid::new(rows, cols, dims.0, dims.1, 16, ds.scan());
        assert!(grid.ownership_partitions_scan(ds.scan()));
        let area: usize = grid.tiles().iter().map(|t| t.core.area()).sum();
        assert_eq!(area, rows * cols);
    }
}

#[test]
fn individual_gradient_is_local_to_the_probe_window() {
    // Eqn. (2)'s key property, end to end: scatter a probe's gradient into a
    // full volume and verify it vanishes outside the probe window.
    let ds = dataset();
    let loc = ds.scan().locations()[5];
    let guess = ds.initial_guess();
    let patch = extract_patch(&guess, &loc.window);
    let result = probe_gradient(ds.model(), &patch, ds.measurement(&loc));

    let (d, r, c) = ds.object_shape();
    let mut scattered = Array3::full(d, r, c, Complex64::ZERO);
    scatter_patch(&mut scattered, &loc.window, &result.gradient);

    let total: f64 = scattered.iter().map(|v| v.abs()).sum();
    let inside: f64 = loc
        .window
        .iter_cells()
        .filter(|&(row, col)| row >= 0 && col >= 0 && (row as usize) < r && (col as usize) < c)
        .map(|(row, col)| {
            (0..d)
                .map(|s| scattered[(s, row as usize, col as usize)].abs())
                .sum::<f64>()
        })
        .sum();
    assert!(total > 0.0);
    assert!(
        inside > 0.99 * total,
        "gradient must vanish outside the probe window ({inside} vs {total})"
    );
}

#[test]
fn accumulation_passes_reproduce_global_gradient_sum() {
    // Scatter per-tile deterministic buffers, run the directional passes on
    // the threaded runtime, and compare every tile against a globally
    // accumulated reference.
    let ds = dataset();
    let (_, rows, cols) = ds.object_shape();
    let slices = 2;
    let grid = TileGrid::new(rows, cols, 3, 3, 12, ds.scan());
    let ranks = grid.num_tiles();

    let buffers: Vec<CArray3> = (0..ranks)
        .map(|rank| {
            let ext = grid.tile(rank).extended;
            Array3::from_fn(slices, ext.rows(), ext.cols(), |s, r, c| {
                Complex64::new(((rank + 1) * (s + 1)) as f64 * 0.01, (r + c) as f64 * 1e-3)
            })
        })
        .collect();

    let mut global = Array3::full(slices, rows, cols, Complex64::ZERO);
    for (rank, buffer) in buffers.iter().enumerate() {
        global.add_region(grid.tile(rank).extended, buffer);
    }

    let cluster = Cluster::new(ClusterTopology::summit());
    let grid_ref = &grid;
    let buffers_ref = &buffers;
    let outcomes = cluster
        .run::<SharedTile, CArray3, _>(ranks, |ctx| {
            let mut buffer = buffers_ref[ctx.rank()].clone();
            let mut pool = TilePayloadPool::new();
            run_accumulation_passes(ctx, grid_ref, &mut buffer, &mut pool)?;
            Ok(buffer)
        })
        .expect("no faults injected");

    for outcome in outcomes {
        let expected =
            global.extract_region_with_fill(grid.tile(outcome.rank).extended, Complex64::ZERO);
        for (a, b) in outcome.result.iter().zip(expected.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}

#[test]
fn gd_memory_is_dominated_by_tile_not_full_volume() {
    let ds = dataset();
    let config = SolverConfig {
        iterations: 1,
        halo_px: 16,
        ..SolverConfig::default()
    };
    let result = GradientDecompositionSolver::new(&ds, config, (3, 3)).run(&Cluster::default());
    let (d, r, c) = ds.object_shape();
    let full_volume_bytes = d * r * c * 16;
    for memory in &result.memory {
        let voxels =
            memory.peak_of(MemoryCategory::TileVoxels) + memory.peak_of(MemoryCategory::HaloVoxels);
        assert!(
            voxels < full_volume_bytes / 2,
            "a 3x3 tile should hold well under half the volume ({voxels} bytes)"
        );
    }
}

#[test]
fn hve_redundant_assignment_grows_as_tiles_shrink() {
    // The mechanism behind the baseline's poor scalability: smaller tiles
    // mean proportionally more redundant probe locations per tile (or outright
    // infeasibility, which is the paper's "NA" case).
    let ds = dataset();
    let config = SolverConfig {
        iterations: 1,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    let coarse = HaloVoxelExchangeSolver::new(&ds, config, (2, 2)).expect("feasible");
    let redundancy_coarse = coarse.total_assigned() as f64 / ds.scan().len() as f64;
    match HaloVoxelExchangeSolver::new(&ds, config, (3, 3)) {
        Ok(fine) => {
            let redundancy_fine = fine.total_assigned() as f64 / ds.scan().len() as f64;
            assert!(
                redundancy_fine >= redundancy_coarse,
                "finer tiles must be at least as redundant ({redundancy_fine} vs {redundancy_coarse})"
            );
        }
        Err(_) => {
            // Infeasibility at a finer grid is exactly the paper's point.
        }
    }
    assert!(redundancy_coarse > 1.0);
}

#[test]
fn gd_halo_width_trades_memory_for_gradient_coverage() {
    // Ablation of the halo-width design choice called out in DESIGN.md.
    let ds = dataset();
    let mut peaks = Vec::new();
    for halo in [8usize, 28] {
        let config = SolverConfig {
            iterations: 1,
            halo_px: halo,
            ..SolverConfig::default()
        };
        let result = GradientDecompositionSolver::new(&ds, config, (2, 2)).run(&Cluster::default());
        peaks.push(result.average_peak_memory_bytes());
    }
    assert!(
        peaks[1] > peaks[0],
        "larger halos must cost memory ({} vs {})",
        peaks[1],
        peaks[0]
    );
}
