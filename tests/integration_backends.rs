//! Backend-parametrized integration tests for the `RankComm` subsystem.
//!
//! The contract under test: both solvers run unchanged on every communication
//! backend; the threaded and lockstep backends produce **bit-identical**
//! reconstructions; fault injection turns a lost pass message into a
//! detectable error (never a hang or a silently wrong volume); and a recorded
//! communication trace replays to an identical run.

use ptycho_cluster::{Cluster, ClusterTopology, CommError, FaultInjectionBackend, FaultPolicy};
use ptycho_core::gradient_decomp::passes::tags;
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use std::time::Duration;

mod common;
use common::{assert_bit_identical, gd_solver, hve_solver, lockstep, small_problem};

#[test]
fn gd_solver_is_bit_identical_across_backends() {
    let ds = small_problem();
    let threaded = gd_solver(&ds).run(&Cluster::new(ClusterTopology::summit()));
    let lockstep = gd_solver(&ds).run(&lockstep());
    assert_bit_identical(&threaded, &lockstep);
    // The analytic communication charges agree too (wire time does not
    // depend on the execution schedule).
    for (a, b) in threaded.time.iter().zip(&lockstep.time) {
        assert!((a.communication - b.communication).abs() < 1e-12);
    }
}

#[test]
fn hve_solver_is_bit_identical_across_backends() {
    let ds = small_problem();
    let solver = hve_solver(&ds);
    let threaded = solver.run(&Cluster::new(ClusterTopology::summit()));
    let lockstep = solver.run(&lockstep());
    assert_bit_identical(&threaded, &lockstep);
}

#[test]
fn lockstep_reruns_are_bit_identical() {
    let ds = small_problem();
    let backend = lockstep();
    let a = gd_solver(&ds).run(&backend);
    let b = gd_solver(&ds).run(&backend);
    assert_bit_identical(&a, &b);
}

#[test]
fn dropped_pass_message_is_a_detectable_error_on_lockstep() {
    // Drop the first vertical-forward pass message from rank 0 to rank 2 (the
    // tile below it on a 2x2 grid). The receiver can never complete its
    // forward pass, every rank eventually blocks, and the lockstep scheduler
    // must *prove* the deadlock — not hang, not return a wrong volume.
    let ds = small_problem();
    let policy = FaultPolicy::reliable(0).drop_message(0, 2, tags::VERTICAL_FORWARD, 0);
    let faulty = FaultInjectionBackend::new(lockstep(), policy);

    let failure = gd_solver(&ds)
        .try_run(&faulty)
        .expect_err("a dropped pass message must fail the run");
    assert!(
        matches!(failure.error, CommError::Deadlock { .. }),
        "expected a proven deadlock, got: {}",
        failure.error
    );
    let message = failure.to_string();
    assert!(
        message.contains("deadlock"),
        "failure must be self-describing: {message}"
    );
    assert_eq!(
        faulty.trace().fault_count(),
        1,
        "exactly one message was dropped"
    );
}

#[test]
fn dropped_pass_message_times_out_on_threaded() {
    // Same fault on the threaded backend: the bounded receive turns the lost
    // message into a timeout error instead of an infinite hang.
    let ds = small_problem();
    let policy = FaultPolicy::reliable(0).drop_message(0, 2, tags::VERTICAL_FORWARD, 0);
    let threaded =
        Cluster::new(ClusterTopology::summit()).with_recv_timeout(Duration::from_millis(250));
    let faulty = FaultInjectionBackend::new(threaded, policy);

    let failure = gd_solver(&ds)
        .try_run(&faulty)
        .expect_err("a dropped pass message must fail the run");
    assert!(
        matches!(
            failure.error,
            CommError::RecvTimeout { .. } | CommError::PeersGone { .. }
        ),
        "expected a timeout-class error, got: {}",
        failure.error
    );
}

#[test]
fn sends_to_an_already_failed_rank_do_not_panic_the_run() {
    // Drop rank 0's first horizontal-forward message to rank 1: rank 1 times
    // out and exits in round 1 while other ranks are still solving, so later
    // rounds post sends to a rank whose channel is gone. Those sends must be
    // buffered into the void and the run must still report the original
    // failure as a value — not panic in the sender's thread.
    let ds = small_problem();
    let config = SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let policy = FaultPolicy::reliable(0).drop_message(0, 1, tags::HORIZONTAL_FORWARD, 0);
    let threaded =
        Cluster::new(ClusterTopology::summit()).with_recv_timeout(Duration::from_millis(250));
    let faulty = FaultInjectionBackend::new(threaded, policy);

    let failure = GradientDecompositionSolver::new(&ds, config, (2, 2))
        .try_run(&faulty)
        .expect_err("the dropped message must fail the run");
    assert!(
        matches!(
            failure.error,
            CommError::RecvTimeout { .. } | CommError::PeersGone { .. }
        ),
        "expected a timeout-class error, got: {}",
        failure.error
    );
}

#[test]
fn delayed_messages_do_not_corrupt_the_solve() {
    // A delayed message is released before its sender next blocks, and the
    // pass structure always posts a blocking receive between two sends on the
    // same (from, to, tag) stream — so per-stream order survives and the
    // reconstruction must equal the fault-free one.
    let ds = small_problem();
    let clean = gd_solver(&ds).run(&lockstep());

    let policy = FaultPolicy::reliable(77).delay(0.5);
    let faulty = FaultInjectionBackend::new(lockstep(), policy);
    let noisy = gd_solver(&ds)
        .try_run(&faulty)
        .expect("delays must not break the solve");
    assert!(
        faulty.trace().fault_count() > 0,
        "delays must actually fire"
    );
    assert_bit_identical(&clean, &noisy);
}

#[test]
fn duplicated_messages_are_ignored_by_single_round_traffic() {
    // With one synchronisation round per stream, tag-matched receives consume
    // exactly one copy per posted receive and spare duplicates rot harmlessly
    // in the mailbox. (Across *multiple* rounds a duplicate is a real fault —
    // a stale copy would match a later round's receive first — which is
    // exactly the class of bug the fault layer exists to expose.)
    let ds = small_problem();
    let config = SolverConfig {
        iterations: 1,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let clean = GradientDecompositionSolver::new(&ds, config, (2, 2)).run(&lockstep());

    let policy = FaultPolicy::reliable(77).duplicate(0.5);
    let faulty = FaultInjectionBackend::new(lockstep(), policy);
    let noisy = GradientDecompositionSolver::new(&ds, config, (2, 2))
        .try_run(&faulty)
        .expect("spare duplicates must not break a single-round solve");
    assert!(
        faulty.trace().fault_count() > 0,
        "duplicates must actually fire"
    );
    assert_bit_identical(&clean, &noisy);
}

#[test]
fn recorded_trace_replays_to_an_identical_run() {
    let ds = small_problem();
    let policy = FaultPolicy::reliable(13).duplicate(0.2).delay(0.2);

    let recording = FaultInjectionBackend::new(lockstep(), policy);
    let original = gd_solver(&ds)
        .try_run(&recording)
        .expect("faults are non-fatal");
    let trace = recording.trace();
    assert!(trace.fault_count() > 0, "the recording must contain faults");

    // Replay the recorded envelope decisions verbatim on a fresh backend.
    let replaying = FaultInjectionBackend::replay(lockstep(), &trace);
    let replayed = gd_solver(&ds)
        .try_run(&replaying)
        .expect("replay reproduces the recorded run");

    assert_eq!(
        trace,
        replaying.trace(),
        "replay must re-execute the trace verbatim"
    );
    assert_bit_identical(&original, &replayed);
}
