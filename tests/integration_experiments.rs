//! Integration tests for the experiment harnesses: every table and figure of
//! the paper must regenerate with the qualitative shape the paper reports.

use ptycho_bench::experiments::{
    fig7a, fig7b, fig8, fig9, headline_claims, quality_dataset, scaling_tables, table1,
    PaperDataset,
};

#[test]
fn table1_matches_paper_dataset_geometry() {
    let rendered = table1().render();
    assert!(rendered.contains("Lead Titanate small"));
    assert!(rendered.contains("Lead Titanate large"));
    assert!(rendered.contains("1024x1024x16632"));
    assert!(rendered.contains("3072x3072x100"));
}

#[test]
fn table2_and_table3_shapes_match_paper() {
    for dataset in [PaperDataset::Small, PaperDataset::Large] {
        let (gd, hve) = scaling_tables(dataset);

        // GD is feasible everywhere and its runtime falls monotonically.
        let gd_runtimes: Vec<f64> = gd
            .points
            .iter()
            .map(|p| p.expect("GD always feasible").runtime_minutes)
            .collect();
        for pair in gd_runtimes.windows(2) {
            assert!(pair[1] < pair[0], "GD runtime must fall: {gd_runtimes:?}");
        }

        // GD memory falls monotonically too.
        let gd_memory: Vec<f64> = gd.points.iter().map(|p| p.unwrap().memory_gb).collect();
        for pair in gd_memory.windows(2) {
            assert!(pair[1] < pair[0], "GD memory must fall: {gd_memory:?}");
        }

        // HVE hits the paper's NA wall while GD keeps scaling.
        assert!(hve.points.iter().any(Option::is_none));
        assert!(hve.points.last().unwrap().is_none());

        // Wherever both run, GD is faster; beyond a node it also uses less
        // memory (at 6 GPUs the accumulation buffers offset the halo savings,
        // as the model documents).
        for (gd_point, hve_point) in gd.points.iter().zip(&hve.points) {
            if let (Some(g), Some(h)) = (gd_point, hve_point) {
                assert!(g.runtime_minutes <= h.runtime_minutes);
                if g.gpus > 6 {
                    assert!(g.memory_gb <= h.memory_gb * 1.05);
                }
            }
        }
    }
}

#[test]
fn headline_claims_reproduce_paper_shape() {
    // Abstract: 51x memory reduction, 2.7x more memory efficient, 9x more
    // scalable, 86x faster. The model must land in the same regime.
    let claims = headline_claims(PaperDataset::Large);
    assert!(claims.gd_memory_reduction > 25.0 && claims.gd_memory_reduction < 200.0);
    assert!(claims.memory_advantage > 1.5);
    assert!(claims.scalability_advantage >= 9.0);
    assert!(claims.speed_advantage > 10.0);
}

#[test]
fn fig7a_shows_super_linear_scaling_for_large_dataset() {
    let series = fig7a(PaperDataset::Large);
    // Super-linear: the measured runtime beats the ideal O(1/P) line at scale.
    let superlinear = series
        .iter()
        .skip(1)
        .filter(|(_, runtime, ideal)| runtime < ideal)
        .count();
    assert!(
        superlinear >= 4,
        "most scaled configurations should beat the ideal line"
    );
}

#[test]
fn fig7b_waiting_shrinks_and_appp_wins() {
    let rows = fig7b();
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    // Waiting time collapses as GPUs increase (263 min -> ~1 s in the paper).
    assert!(first.1.wait > 20.0 * last.1.wait);
    // APPP keeps communication at least an order of magnitude cheaper.
    for (_, with, without) in &rows {
        assert!(without.communication > 10.0 * with.communication);
    }
}

#[test]
fn fig8_baseline_has_at_least_as_many_seams() {
    // Short run (2 iterations) to keep the test fast; the direction of the
    // comparison is what matters.
    let result = fig8(2);
    assert!(result.gd_seam.is_finite() && result.hve_seam.is_finite());
    assert!(
        result.hve_seam >= result.gd_seam - 0.05,
        "the baseline should not have fewer border artifacts (HVE {}, GD {})",
        result.hve_seam,
        result.gd_seam
    );
    assert!(result.gd_rmse < 1.0 && result.hve_rmse < 1.0);
}

#[test]
fn fig9_all_frequencies_converge_together() {
    let curves = fig9(3);
    assert_eq!(curves.len(), 3);
    for curve in &curves {
        assert_eq!(curve.costs.len(), 3);
        assert!(
            curve.costs[2] < curve.costs[0],
            "{} should converge",
            curve.label
        );
    }
    // The three curves stay within a few percent of each other, as in Fig. 9.
    let finals: Vec<f64> = curves.iter().map(|c| *c.costs.last().unwrap()).collect();
    let max = finals.iter().cloned().fold(f64::MIN, f64::max);
    let min = finals.iter().cloned().fold(f64::MAX, f64::min);
    assert!((max - min) / max < 0.1);
}

#[test]
fn quality_dataset_is_in_the_high_overlap_regime() {
    let ds = quality_dataset(1);
    assert!(
        ds.scan().config().overlap_ratio() > 0.7,
        "the image-quality experiments must use the paper's >70% overlap regime, got {}",
        ds.scan().config().overlap_ratio()
    );
}
