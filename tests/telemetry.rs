//! Integration tests for the deterministic telemetry subsystem.
//!
//! The contracts under test:
//!
//! 1. **Non-interference** — attaching a flight recorder must not change the
//!    reconstruction: telemetry-on and telemetry-off runs are bit-identical.
//! 2. **Determinism** — two identical seeded runs emit **byte-identical**
//!    JSONL event logs, because every record is stamped with the simulated
//!    per-rank clock (analytic communication time + modeled compute time),
//!    never wall time. Pinned on the lockstep backend under seeded drop and
//!    kill faults, and on the free-running threaded backend under duplicate
//!    and delay faults (drops on the threaded backend heal via genuinely
//!    timing-dependent retransmission, so byte-identity is a lockstep-only
//!    claim there).
//! 3. **Content** — the event stream tells the story the run actually had:
//!    dense per-rank sequence numbers, a monotonic simulated clock, one
//!    `iteration_begin`/`iteration_end` pair per iteration, a `rank_dead` /
//!    `spare_promoted` pair when a node dies and a spare heals it, and job
//!    lifecycle events from the multi-tenant engine whose metrics snapshot
//!    agrees with the trace.

use ptycho_cluster::{FaultInjectionBackend, FaultPolicy, HardwareModel};
use ptycho_core::gradient_decomp::passes::tags;
use ptycho_core::{
    JobContext, JobEngine, JobSpec, JobState, ReconstructionResult, RecoveryPolicy, SolverConfig,
};
use ptycho_sim::dataset::{Dataset, SyntheticConfig, BYTES_PER_COMPLEX};
use ptycho_telemetry::{SchemaValidator, Telemetry, TelemetryConfig, TelemetryEvent, TraceSummary};
use std::io::Write;
use std::sync::{Arc, Mutex};

mod common;
use common::{
    assert_bit_identical, gd_solver, lockstep, restart_policy, small_problem, substitute_policy,
};

/// An in-memory JSONL sink shared between the telemetry handle (which owns a
/// boxed clone) and the test (which reads the bytes back afterwards).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("telemetry buffer poisoned").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("telemetry buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the standard 2×2 Gradient Decomposition problem with a durable
/// recorder attached, returning the emitted JSONL and the reconstruction.
fn traced_gd_run<B: ptycho_cluster::CommBackend>(
    backend: &B,
    policy: RecoveryPolicy,
) -> (Vec<u8>, ReconstructionResult) {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let buf = SharedBuf::default();
    let telemetry = Telemetry::with_writer(TelemetryConfig::default(), Box::new(buf.clone()));
    let job = JobContext {
        telemetry: Some(&telemetry),
        ..JobContext::default()
    };
    let result = solver
        .run_job(backend, policy, &job)
        .expect("traced run must complete");
    (buf.contents(), result)
}

/// Every line of `bytes` must pass streaming schema validation; returns the
/// per-kind counts for content assertions.
fn validate_jsonl(bytes: &[u8]) -> TraceSummary {
    let text = std::str::from_utf8(bytes).expect("trace is UTF-8");
    let mut validator = SchemaValidator::new();
    for (number, line) in text.lines().enumerate() {
        validator
            .check_line(line)
            .unwrap_or_else(|e| panic!("line {}: {e}", number + 1));
    }
    assert!(validator.accepted() > 0, "trace must not be empty");
    let summary = TraceSummary::from_lines(text.lines()).expect("trace parses");
    assert_eq!(summary.truncated_lines, 0);
    summary
}

// ---------------------------------------------------------------------------
// Non-interference: telemetry must not change the reconstruction.
// ---------------------------------------------------------------------------

#[test]
fn telemetry_leaves_reconstruction_bit_identical() {
    let ds = small_problem();
    common::run_both_solvers!(&ds, |solver, label| {
        let bare = solver
            .run_with_recovery(&lockstep(), RecoveryPolicy::FailFast)
            .expect("fault-free run completes");
        let telemetry = Telemetry::new();
        let job = JobContext {
            telemetry: Some(&telemetry),
            ..JobContext::default()
        };
        let traced = solver
            .run_job(&lockstep(), RecoveryPolicy::FailFast, &job)
            .expect("traced run completes");
        assert!(
            telemetry.total_recorded() > 0,
            "{label}: the recorder must observe the run"
        );
        assert_bit_identical(&bare, &traced);
    });
}

// ---------------------------------------------------------------------------
// Determinism: identical seeded runs emit byte-identical JSONL.
// ---------------------------------------------------------------------------

/// Drops the first frame of the (0 → 2) vertical-forward stream — the same
/// surgically healable drop the recovery suite uses.
fn gd_drop_policy() -> FaultPolicy {
    FaultPolicy::reliable(0).drop_message(0, 2, tags::VERTICAL_FORWARD, 0)
}

#[test]
fn lockstep_trace_is_deterministic_under_drop_faults() {
    let run = || {
        let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
        traced_gd_run(&backend, restart_policy())
    };
    let (trace_a, result_a) = run();
    let (trace_b, result_b) = run();
    assert!(!trace_a.is_empty());
    assert_eq!(
        trace_a, trace_b,
        "identical seeded runs must emit byte-identical telemetry"
    );
    assert_bit_identical(&result_a, &result_b);

    let summary = validate_jsonl(&trace_a);
    assert!(
        summary.kind_count("comm_drop") >= 1,
        "the injected drop must be visible in the trace"
    );
    assert!(
        summary.kind_count("comm_retransmit") >= 1,
        "the healing retransmission must be visible in the trace"
    );
    assert!(summary.kind_count("barrier_wait") >= 1);
    assert!(summary.kind_count("checkpoint") >= 1);
}

#[test]
fn lockstep_trace_is_deterministic_under_kill_and_substitution() {
    let run = || {
        let policy = FaultPolicy::reliable(5).kill_rank(1, 1);
        let backend = FaultInjectionBackend::new(lockstep(), policy);
        traced_gd_run(&backend, substitute_policy(1))
    };
    let (trace_a, result_a) = run();
    let (trace_b, _) = run();
    assert_eq!(trace_a, trace_b);

    // The healed run matches the fault-free one (the recovery contract), and
    // the trace shows the death and the promotion that healed it.
    let fault_free = gd_solver(&small_problem())
        .run_with_recovery(&lockstep(), RecoveryPolicy::FailFast)
        .expect("fault-free run completes");
    assert_bit_identical(&result_a, &fault_free);

    let summary = validate_jsonl(&trace_a);
    assert_eq!(summary.kind_count("rank_dead"), 1);
    assert_eq!(summary.kind_count("spare_promoted"), 1);
    // Ring-liveness heartbeats ride on control frames in membership mode.
    assert!(summary.kind_count("heartbeat_sent") >= 1);
    // The spare writes its own stream: node 4 (the first standby after the
    // four workers) adopts slot 1.
    let streams: Vec<u64> = summary.streams.keys().map(|&(_, rank)| rank).collect();
    assert!(
        streams.contains(&4),
        "the promoted spare (node 4) must own a telemetry stream, got {streams:?}"
    );
}

#[test]
fn threaded_trace_is_deterministic_under_duplicate_and_delay_faults() {
    // Duplicate + delay faults only: both are healed inline by the reliable
    // layer's sequence numbering without ever losing a frame, so no
    // wall-time-dependent retransmission fires and the threaded backend's
    // free-running schedule cannot leak into the per-rank event streams.
    // (A generous receive timeout keeps a descheduled thread from faking a
    // loss on a loaded machine.)
    let run = || {
        let policy = FaultPolicy::reliable(11).duplicate(0.15).delay(0.1);
        let backend = FaultInjectionBackend::new(common::threaded(5_000), policy);
        traced_gd_run(&backend, restart_policy())
    };
    let (trace_a, result_a) = run();
    let (trace_b, result_b) = run();
    assert!(!trace_a.is_empty());
    assert_eq!(
        trace_a, trace_b,
        "threaded runs under duplicate/delay faults must emit byte-identical telemetry"
    );
    assert_bit_identical(&result_a, &result_b);
    validate_jsonl(&trace_a);
}

// ---------------------------------------------------------------------------
// Content: the stream tells the run's story.
// ---------------------------------------------------------------------------

#[test]
fn iteration_events_are_dense_monotonic_and_complete() {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let telemetry = Telemetry::new();
    let job = JobContext {
        telemetry: Some(&telemetry),
        ..JobContext::default()
    };
    let result = solver
        .run_job(&lockstep(), RecoveryPolicy::FailFast, &job)
        .expect("run completes");
    let iterations = result.cost_history.costs().len() as u64;
    assert_eq!(telemetry.lost_records(), 0, "ring must not overflow");

    let mut total = 0u64;
    for rank in 0..4 {
        let records = telemetry.records(rank);
        assert!(!records.is_empty(), "rank {rank} must have a stream");
        total += records.len() as u64;

        let mut begins = 0u64;
        let mut ends = 0u64;
        let mut last_sim = 0u64;
        let mut last_compute = 0u64;
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.rank, rank as u64);
            assert_eq!(record.seq, i as u64, "sequence numbers must be dense");
            assert!(
                record.sim_ns >= last_sim,
                "rank {rank}: simulated clock must be monotonic"
            );
            last_sim = record.sim_ns;
            match record.event {
                TelemetryEvent::IterationBegin { .. } => begins += 1,
                TelemetryEvent::IterationEnd {
                    cost,
                    compute_ns,
                    comm_ns,
                    ..
                } => {
                    ends += 1;
                    assert!(cost.is_finite());
                    assert!(
                        compute_ns > last_compute,
                        "modeled compute time must advance each iteration"
                    );
                    last_compute = compute_ns;
                    assert!(comm_ns > 0, "halo traffic must charge communication time");
                }
                _ => {}
            }
        }
        assert_eq!(begins, iterations, "rank {rank}: one begin per iteration");
        assert_eq!(ends, iterations, "rank {rank}: one end per iteration");
    }
    assert_eq!(telemetry.total_recorded(), total);
}

#[test]
fn iteration_end_pins_compute_and_comm_to_the_modeled_clock() {
    // Recompute the kernel's per-rank modeled compute constant from the same
    // public inputs it uses: `compute_ns` must be exactly its cumulative sum
    // and `comm_ns` the remainder of the stamp. This pins the fields to
    // their meanings — both are positive and monotone, so weaker assertions
    // would pass even with the two swapped.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let telemetry = Telemetry::new();
    let job = JobContext {
        telemetry: Some(&telemetry),
        ..JobContext::default()
    };
    solver
        .run_job(&lockstep(), RecoveryPolicy::FailFast, &job)
        .expect("run completes");

    let (slices, _, _) = ds.object_shape();
    let window = ds.model().window_px();
    for rank in 0..4 {
        let tile = solver.grid().tile(rank);
        let working_set = (tile.extended_area() * slices * BYTES_PER_COMPLEX) as f64;
        let per_probe =
            HardwareModel::summit_v100().probe_gradient_time(window, slices, working_set);
        let per_iteration = (tile.owned_locations.len() as f64 * per_probe * 1e9) as u64;
        assert!(
            per_iteration > 0,
            "rank {rank}: the model must charge compute time"
        );
        let mut ends = 0u64;
        for record in telemetry.records(rank) {
            if let TelemetryEvent::IterationEnd {
                compute_ns,
                comm_ns,
                ..
            } = record.event
            {
                ends += 1;
                assert_eq!(
                    compute_ns,
                    ends * per_iteration,
                    "rank {rank} iteration {ends}: compute_ns must be the \
                     cumulative modeled compute (comm/compute swapped?)"
                );
                assert_eq!(
                    compute_ns + comm_ns,
                    record.sim_ns,
                    "rank {rank}: the split must sum to the record's simulated stamp"
                );
            }
        }
        assert!(ends > 0, "rank {rank} must end at least one iteration");
    }
}

#[test]
fn job_engine_trace_and_metrics_agree() {
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());
    let config = SolverConfig {
        iterations: 2,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let buf = SharedBuf::default();
    let engine = JobEngine::paused(4);
    let mut handles = Vec::new();
    for i in 0..3u64 {
        let mut spec = JobSpec::new(dataset.clone(), config, (2, 1));
        if i == 1 {
            // Job-local node 1 dies early and must be healed from the fleet.
            spec = spec.with_fault_policy(FaultPolicy::reliable(41).kill_rank(1, 1));
        }
        let telemetry = Telemetry::with_writer(
            TelemetryConfig {
                job_id: i,
                ..TelemetryConfig::default()
            },
            Box::new(buf.clone()),
        );
        spec = spec.with_telemetry(Arc::new(telemetry));
        handles.push(engine.submit(spec).expect("submission accepted"));
    }
    engine.start_admitting();
    engine.wait_idle();
    for handle in &handles {
        assert_eq!(handle.wait().state, JobState::Completed);
    }

    // The combined multi-job trace is schema-valid and carries the full job
    // lifecycle plus the death/heal pair from the kill job.
    let summary = validate_jsonl(&buf.contents());
    assert_eq!(summary.kind_count("job_submitted"), 3);
    assert_eq!(summary.kind_count("job_admitted"), 3);
    assert_eq!(summary.kind_count("job_completed"), 3);
    assert_eq!(summary.kind_count("rank_dead"), 1);
    assert_eq!(summary.kind_count("spare_promoted"), 1);
    let mut jobs = summary.jobs();
    jobs.sort_unstable();
    assert_eq!(jobs, vec![0, 1, 2]);

    // The metrics snapshot tells the same story as the trace.
    let registry = engine.metrics_snapshot();
    assert_eq!(registry.counter("jobs_submitted_total"), Some(3));
    assert_eq!(registry.counter("jobs_admitted_total"), Some(3));
    assert_eq!(registry.counter("jobs_completed_total"), Some(3));
    assert_eq!(registry.counter("jobs_cancelled_total"), Some(0));
    assert_eq!(registry.counter("engine_substitutions_total"), Some(1));
    assert!(
        registry
            .counter("engine_heartbeats_sent_total")
            .unwrap_or(0)
            > 0
    );
    let depth = registry.histogram("queue_depth").expect("depth histogram");
    assert_eq!(depth.count(), 6, "one sample at submit and one at admit");
    let text = registry.prometheus_text();
    assert!(text.contains("jobs_completed_total 3"));
    assert!(text.contains("fleet_nodes_total"));
}

#[test]
fn truncated_final_line_is_tolerated_as_prefix_consistency() {
    let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
    let (trace, _) = traced_gd_run(&backend, restart_policy());
    let text = String::from_utf8(trace).expect("trace is UTF-8");
    let whole = TraceSummary::from_lines(text.lines()).expect("trace parses");

    // A run killed mid-flush leaves a half-written final line; the analyzer
    // must keep the consistent prefix and report exactly one truncated line.
    let cut = text.len() - 20;
    let truncated = &text[..cut];
    let summary = TraceSummary::from_lines(truncated.lines()).expect("prefix parses");
    assert_eq!(summary.truncated_lines, 1);
    assert_eq!(summary.total_events(), whole.total_events() - 1);
}
