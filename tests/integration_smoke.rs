//! End-to-end smoke test: the `quickstart` example path on a tiny dataset.
//!
//! Exercises one full reconstruct-and-stitch cycle — synthesise an
//! acquisition, decompose it over a tile grid, run the Gradient Decomposition
//! solver on the threaded cluster, stitch the tiles and measure quality —
//! so that tier-1 (`cargo test -q`) covers the complete user-facing flow and
//! not just unit-level behaviour.

use ptycho_array::stats;
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::stitch::phase_image;
use ptycho_core::{GradientDecompositionSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};

#[test]
fn quickstart_example_geometry_has_high_probe_overlap() {
    // Regression test for the quickstart's "probe overlap ratio: 0%" report:
    // the example's original 5x5/32 px geometry produced probe circles
    // (~7 px radius) that genuinely never overlapped at its 24 px step. The
    // example now runs `SyntheticConfig::quickstart()` (shared with this
    // test, so the two cannot drift apart); its circles must overlap like
    // the paper's datasets do (above the 70% threshold of Sec. II-A), and
    // adjacent probe circles must physically intersect.
    let dataset = Dataset::synthesize(SyntheticConfig::quickstart());
    let ratio = dataset.scan().config().overlap_ratio();
    assert!(
        (0.70..0.80).contains(&ratio),
        "quickstart geometry should sit above the 70% overlap threshold, got {ratio}"
    );
    let locations = dataset.scan().locations();
    assert!(
        locations[0].overlaps(&locations[1]),
        "adjacent probe circles must intersect"
    );
}

#[test]
fn quickstart_path_end_to_end_on_tiny_dataset() {
    // 1. Simulate a tiny acquisition (96 px object, 3x3 scan, 2 slices).
    let dataset = Dataset::synthesize(SyntheticConfig::tiny());

    // 2. Reconstruct on 4 simulated GPU ranks over a few iterations.
    let config = SolverConfig {
        iterations: 3,
        halo_px: 16,
        ..SolverConfig::default()
    };
    let solver = GradientDecompositionSolver::for_workers(&dataset, config, 4);
    let (grid_rows, grid_cols) = solver.grid().grid_shape();
    assert_eq!(grid_rows * grid_cols, 4, "4 workers -> 4 tiles");

    let cluster = Cluster::new(ClusterTopology::summit());
    let result = solver.run(&cluster);

    // 3. The stitched volume has the full object shape.
    assert_eq!(result.volume.shape(), dataset.object_shape());

    // 4. The cost history is complete and decreasing overall.
    assert_eq!(result.cost_history.iterations(), 3);
    assert!(
        result.cost_history.final_cost() < result.cost_history.initial_cost(),
        "cost must decrease: {} -> {}",
        result.cost_history.initial_cost(),
        result.cost_history.final_cost()
    );
    assert!(result.cost_history.costs().iter().all(|c| c.is_finite()));

    // 5. The reconstruction correlates with the ground-truth phase better
    //    than an uninformative (flat) starting guess would.
    let truth = dataset.specimen().phase_slice(0);
    let reconstructed = phase_image(&result.volume, 0);
    let correlation = stats::normalized_cross_correlation(&truth, &reconstructed);
    assert!(
        correlation > 0.1,
        "reconstruction should correlate with ground truth, got {correlation}"
    );

    // 6. Runtime and memory accounting came back populated.
    let critical = result.critical_path();
    assert!(critical.compute > 0.0, "compute time must be charged");
    assert!(
        result.average_peak_memory_bytes() > 0.0,
        "memory tracking must observe allocations"
    );
}
