//! Integration tests for the fault-tolerant iteration engine.
//!
//! The contract under test: a seeded drop policy that makes a plain
//! (`FailFast`) run fail with a [`RankFailure`] is healed by
//! `RetransmitThenRestart` — transparently by acknowledge/retransmit where
//! possible, by checkpoint restart where retransmission is defeated — and
//! the recovered reconstruction is **bit-identical** to the fault-free one,
//! on both solvers and both backends.

use ptycho_cluster::backend::reliable::wire_data_tag;
use ptycho_cluster::{CommError, FaultInjectionBackend, FaultPolicy, RankFailure};
use ptycho_core::gradient_decomp::passes::tags;
use ptycho_core::RecoveryPolicy;

mod common;
use common::{
    assert_bit_identical, gd_solver, hve_solver, lockstep, restart_policy, small_problem,
};

/// The HVE voxel copy-paste tag (`halo_exchange::solver::TAG_VOXEL_PASTE`).
const TAG_VOXEL_PASTE: u64 = 0x20;

// A dropped frame should be detected (and recovered) quickly, not after the
// 30 s loss-detection default.
fn threaded() -> ptycho_cluster::Cluster {
    common::threaded(150)
}

/// Drops the first frame of the (0 → 2) vertical-forward stream. In both
/// fail-fast and recovery mode the first wire frame of that stream carries
/// the raw tag value (sequence number and epoch are zero), so one policy
/// covers both modes; the retransmission occupies the next harness slot and
/// is delivered.
fn gd_drop_policy() -> FaultPolicy {
    FaultPolicy::reliable(0).drop_message(0, 2, tags::VERTICAL_FORWARD, 0)
}

/// Same construction for the baseline: drop the first voxel-paste frame
/// rank 0 sends to rank 1.
fn hve_drop_policy() -> FaultPolicy {
    FaultPolicy::reliable(0).drop_message(0, 1, TAG_VOXEL_PASTE, 0)
}

#[test]
fn gd_fail_fast_still_surfaces_rank_failure() {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let faulty = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
    let failure = solver
        .try_run(&faulty)
        .expect_err("FailFast must not heal a dropped pass message");
    assert!(matches!(failure.error, CommError::Deadlock { .. }));
}

#[test]
fn hve_fail_fast_still_surfaces_rank_failure() {
    let ds = small_problem();
    let solver = hve_solver(&ds);
    let faulty = FaultInjectionBackend::new(lockstep(), hve_drop_policy());
    let failure = solver
        .try_run(&faulty)
        .expect_err("FailFast must not heal a dropped voxel paste");
    assert!(matches!(failure.error, CommError::Deadlock { .. }));
}

#[test]
fn gd_retransmit_heals_dropped_pass_message_on_both_backends() {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    for (label, recovered) in [
        (
            "lockstep",
            solver.run_with_recovery(
                &FaultInjectionBackend::new(lockstep(), gd_drop_policy()),
                restart_policy(),
            ),
        ),
        (
            "threaded",
            solver.run_with_recovery(
                &FaultInjectionBackend::new(threaded(), gd_drop_policy()),
                restart_policy(),
            ),
        ),
    ] {
        let recovered = recovered
            .unwrap_or_else(|failure| panic!("{label}: recovery must succeed, got {failure}"));
        assert_bit_identical(&clean, &recovered);
        assert_eq!(
            recovered.recovery.iteration_restarts, 0,
            "{label}: retransmission alone must heal a single drop"
        );
        assert!(
            recovered.recovery.reliable.retransmits > 0,
            "{label}: the dropped frame must have been retransmitted"
        );
    }
}

#[test]
fn hve_retransmit_heals_dropped_voxel_paste_on_both_backends() {
    let ds = small_problem();
    let solver = hve_solver(&ds);
    let clean = solver.run(&lockstep());

    for (label, recovered) in [
        (
            "lockstep",
            solver.run_with_recovery(
                &FaultInjectionBackend::new(lockstep(), hve_drop_policy()),
                restart_policy(),
            ),
        ),
        (
            "threaded",
            solver.run_with_recovery(
                &FaultInjectionBackend::new(threaded(), hve_drop_policy()),
                restart_policy(),
            ),
        ),
    ] {
        let recovered = recovered
            .unwrap_or_else(|failure| panic!("{label}: recovery must succeed, got {failure}"));
        assert_bit_identical(&clean, &recovered);
        assert_eq!(recovered.recovery.iteration_restarts, 0, "{label}");
        assert!(recovered.recovery.reliable.retransmits > 0, "{label}");
    }
}

#[test]
fn gd_random_drops_on_pass_traffic_are_healed() {
    // A seeded probabilistic policy across every message class (data frames
    // and acknowledgements alike): whatever it hits must be recovered and
    // the result must stay exact.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    let faulty = FaultInjectionBackend::new(lockstep(), FaultPolicy::reliable(99).drop(0.05));
    let recovered = solver
        .run_with_recovery(&faulty, restart_policy())
        .expect("a 5% drop rate must be recoverable");
    assert!(
        faulty.trace().fault_count() > 0,
        "the seeded policy must actually drop something"
    );
    assert_bit_identical(&clean, &recovered);
}

#[test]
fn gd_restart_recovers_when_retransmission_is_defeated() {
    // Drop *every* epoch-0 frame whose wire tag is the first
    // vertical-forward sequence slot — including retransmissions, which
    // reuse the same wire tag. The reliable layer must exhaust its budget,
    // the engine must restart from the last checkpoint (here: from scratch,
    // the failure is in iteration 0), and the epoch-1 attempt's distinct
    // wire tags escape the policy.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    let policy =
        FaultPolicy::reliable(0)
            .drop(1.0)
            .on_tag(wire_data_tag(tags::VERTICAL_FORWARD, 0, 0));
    let faulty = FaultInjectionBackend::new(lockstep(), policy);
    let recovered = solver
        .run_with_recovery(&faulty, restart_policy())
        .expect("the epoch-1 attempt must succeed");
    assert_eq!(
        recovered.recovery.iteration_restarts, 1,
        "exactly one checkpoint restart"
    );
    assert_bit_identical(&clean, &recovered);
}

#[test]
fn gd_restart_resumes_from_the_iteration_boundary_checkpoint() {
    // Same construction, but the doomed wire tag is the *second* sequence
    // slot of the vertical-forward stream — one round per iteration, so the
    // failure hits iteration 1 after iteration 0 checkpointed. The restart
    // must resume from the checkpoint (not recompute iteration 0) and still
    // reproduce the fault-free volume bit for bit.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let clean = solver.run(&lockstep());

    let policy =
        FaultPolicy::reliable(0)
            .drop(1.0)
            .on_tag(wire_data_tag(tags::VERTICAL_FORWARD, 1, 0));
    let faulty = FaultInjectionBackend::new(lockstep(), policy);
    let recovered = solver
        .run_with_recovery(&faulty, restart_policy())
        .expect("the epoch-1 attempt must succeed");
    assert_eq!(recovered.recovery.iteration_restarts, 1);
    assert_bit_identical(&clean, &recovered);
}

#[test]
fn restart_budget_zero_surfaces_the_escalated_failure() {
    // With retransmission defeated and no restart budget, the run must fail
    // with the reliable layer's escalation error — never hang, never return
    // a wrong volume.
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let policy =
        FaultPolicy::reliable(0)
            .drop(1.0)
            .on_tag(wire_data_tag(tags::VERTICAL_FORWARD, 0, 0));
    let faulty = FaultInjectionBackend::new(lockstep(), policy);
    let failure: RankFailure = solver
        .run_with_recovery(
            &faulty,
            RecoveryPolicy::RetransmitThenRestart {
                max_iteration_restarts: 0,
            },
        )
        .expect_err("no restart budget and a persistent drop must fail");
    assert!(
        matches!(failure.error, CommError::RecoveryExhausted { .. }),
        "expected the escalation error, got: {}",
        failure.error
    );
}

#[test]
fn hve_recovery_mode_is_bit_identical_across_backends_fault_free() {
    // The recovery machinery (reliable wrapping + per-iteration barriers +
    // checkpoints) must not perturb the numerics on either backend.
    let ds = small_problem();
    let solver = hve_solver(&ds);
    let clean = solver.run(&lockstep());
    let on_lockstep = solver
        .run_with_recovery(&lockstep(), restart_policy())
        .expect("fault-free");
    let on_threaded = solver
        .run_with_recovery(&threaded(), restart_policy())
        .expect("fault-free");
    assert_bit_identical(&clean, &on_lockstep);
    assert_bit_identical(&clean, &on_threaded);
    assert!(on_lockstep.recovery.reliable.retransmits == 0);
    assert!(on_lockstep.recovery.is_clean() || on_lockstep.recovery.reliable.acks_sent > 0);
}
