//! Scheduler-soak integration tests for the multi-tenant job engine.
//!
//! The contract under test: the service is **invisible in the numbers**.
//! Every job that runs through the engine — queued behind other tenants,
//! leased an arbitrary subset of the fleet, healed from the shared spare
//! pool mid-run — produces a reconstruction **bit-identical** to the same
//! spec run alone on a dedicated backend. On top of that the scheduler
//! itself is deterministic: admission order is always the priority-sorted
//! submission order, the fleet lease table is conserved through every
//! lease/release/retire, and cancellation never leaks nodes.

use ptycho_cluster::{CommBackend, FaultInjectionBackend, FaultPolicy};
use ptycho_core::gradient_decomp::passes::tags;
use ptycho_core::{
    GradientDecompositionSolver, HaloVoxelExchangeSolver, JobEngine, JobError, JobSpec, JobState,
    ReconstructionResult, RecoveryPolicy, ServiceBackend, SolverConfig, SolverMethod,
};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use std::time::Duration;

mod common;
use common::{assert_bit_identical, gd_config, hve_config, lockstep, small_problem};

/// The soak workload dataset: small enough that one 2-iteration solve takes
/// milliseconds, so a 100-job burst finishes in seconds.
fn tiny() -> Dataset {
    Dataset::synthesize(SyntheticConfig::tiny())
}

fn tiny_gd_config(iterations: usize) -> SolverConfig {
    SolverConfig {
        iterations,
        halo_px: 20,
        ..SolverConfig::default()
    }
}

fn tiny_hve_config(iterations: usize) -> SolverConfig {
    SolverConfig {
        iterations,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    }
}

/// Kills job-local node 1 early in iteration 0 (same shape as the
/// membership suite's `early_death`, but seeded per job so no two jobs
/// share a fault stream).
fn kill_policy(seed: u64) -> FaultPolicy {
    FaultPolicy::reliable(seed).kill_rank(1, 1)
}

/// Drops the first vertical-forward pass message on a 2×2 GD grid; the
/// reliable layer heals it by retransmission (no spare consumed).
fn drop_policy(seed: u64) -> FaultPolicy {
    FaultPolicy::reliable(seed).drop_message(0, 2, tags::VERTICAL_FORWARD, 0)
}

/// The service-equivalent recovery policy for a solo baseline run: same
/// restart budget, but with a private spare pool standing in for the
/// service's shared one (the service ignores the spec's own `spares`).
fn solo_policy(spec: &JobSpec) -> RecoveryPolicy {
    match spec.recovery {
        RecoveryPolicy::SubstituteSpare {
            max_iteration_restarts,
            ..
        } => RecoveryPolicy::SubstituteSpare {
            spares: 8,
            max_iteration_restarts,
        },
        other => other,
    }
}

/// Runs a job spec **alone** on its own deterministic backend — the
/// baseline every service run must match bit for bit.
fn solo_run(spec: &JobSpec) -> ReconstructionResult {
    match spec.fault_policy.clone() {
        None => solo_method(spec, &lockstep()),
        Some(policy) => solo_method(spec, &FaultInjectionBackend::new(lockstep(), policy)),
    }
}

fn solo_method<B: CommBackend>(spec: &JobSpec, backend: &B) -> ReconstructionResult {
    let policy = solo_policy(spec);
    match spec.method {
        SolverMethod::GradientDecomposition => {
            GradientDecompositionSolver::new(&spec.dataset, spec.config, spec.grid)
                .run_with_recovery(backend, policy)
                .expect("the solo baseline must heal")
        }
        SolverMethod::HaloVoxelExchange => {
            HaloVoxelExchangeSolver::new(&spec.dataset, spec.config, spec.grid)
                .expect("feasible decomposition")
                .run_with_recovery(backend, policy)
                .expect("the solo baseline must heal")
        }
    }
}

/// Memoizes solo baselines by spec shape: the soaks submit ~100 jobs drawn
/// from a dozen distinct specs, and the solo run of a spec is deterministic,
/// so one baseline per shape suffices (and keeps the suite fast).
struct SoloCache(std::collections::HashMap<String, ReconstructionResult>);

impl SoloCache {
    fn new() -> Self {
        Self(std::collections::HashMap::new())
    }

    fn baseline(&mut self, spec: &JobSpec) -> &ReconstructionResult {
        let key = format!(
            "{:?}|{:?}|{}|{:?}",
            spec.method, spec.grid, spec.config.iterations, spec.fault_policy
        );
        self.0.entry(key).or_insert_with(|| solo_run(spec))
    }
}

/// Submission order sorted by (priority desc, submission asc) — what the
/// strict head-of-line scheduler must admit.
fn expected_admissions(submitted: &[(u64, i32)]) -> Vec<u64> {
    let mut order: Vec<(u64, i32)> = submitted.to_vec();
    order.sort_by_key(|&(id, priority)| (std::cmp::Reverse(priority), id));
    order.into_iter().map(|(id, _)| id).collect()
}

/// The tentpole soak: a burst of 104 mixed-tenant jobs — both solvers,
/// three grid shapes, seven priority levels, four rank-death jobs healed
/// from the shared pool and four lost-message jobs healed by
/// retransmission — every single one bit-identical to its solo run.
#[test]
fn scheduler_soak_104_jobs_complete_bit_identical_to_solo_runs() {
    const JOBS: usize = 104;
    let dataset = tiny();
    let engine = JobEngine::paused(16);

    let mut specs = Vec::new();
    for i in 0..JOBS {
        // Fault jobs run GD on the full 2×2 grid (the fault policies pin
        // job-local rank 1 and the 0→2 vertical pass); the rest cycle
        // through grid shapes and alternate methods.
        let (grid, method, fault) = match i % 26 {
            7 => {
                let method = if i == 33 {
                    SolverMethod::HaloVoxelExchange
                } else {
                    SolverMethod::GradientDecomposition
                };
                ((2, 2), method, Some(kill_policy(i as u64)))
            }
            15 => (
                (2, 2),
                SolverMethod::GradientDecomposition,
                Some(drop_policy(i as u64)),
            ),
            k => {
                let grid = [(2, 2), (2, 1), (1, 2)][k % 3];
                let method = if i % 10 == 3 {
                    SolverMethod::HaloVoxelExchange
                } else {
                    SolverMethod::GradientDecomposition
                };
                (grid, method, None)
            }
        };
        // Fault jobs run two iterations so the healed re-run resumes from a
        // real checkpoint; the clean bulk runs one (bit-identity holds per
        // iteration, and 100 tenants of 1 iteration soak the scheduler just
        // as hard).
        let iterations = if fault.is_some() { 2 } else { 1 };
        let config = match method {
            SolverMethod::GradientDecomposition => tiny_gd_config(iterations),
            SolverMethod::HaloVoxelExchange => tiny_hve_config(iterations),
        };
        let priority = ((i * 2) % 5) as i32 - 2;
        let mut spec = JobSpec::new(dataset.clone(), config, grid)
            .with_method(method)
            .with_priority(priority);
        if let Some(policy) = fault {
            spec = spec.with_fault_policy(policy);
        }
        specs.push(spec);
    }

    let mut handles = Vec::new();
    let mut submitted = Vec::new();
    for spec in &specs {
        let handle = engine.submit(spec.clone()).expect("every spec fits");
        submitted.push((handle.id(), spec.priority));
        handles.push(handle);
    }
    engine.start_admitting();
    engine.wait_idle();

    let mut substitutions = 0;
    let mut solo = SoloCache::new();
    for (handle, spec) in handles.iter().zip(&specs) {
        let report = handle.wait();
        assert_eq!(
            report.state,
            JobState::Completed,
            "job {} must complete: {:?}",
            report.id,
            report.error
        );
        let result = report.result.expect("completed jobs carry a result");
        assert_bit_identical(solo.baseline(spec), &result);
        substitutions += result.recovery.substitutions;
        assert!(
            report.progress_events >= spec.slots() * spec.config.iterations,
            "job {} must stream at least one event per rank per iteration",
            report.id
        );
    }

    // Exactly the four rank-death jobs consumed a shared-pool spare.
    assert_eq!(substitutions, 4, "one substitution per killed rank");
    for i in [7usize, 33, 59, 85] {
        let report = handles[i].wait();
        let recovery = &report.result.as_ref().unwrap().recovery;
        assert_eq!(recovery.substitutions, 1, "job {i} healed once");
        assert_eq!(recovery.membership_epoch, 1, "job {i} bumped its epoch");
    }

    // The scheduler's fairness witness: strict head-of-line admission means
    // the log is exactly the priority-sorted submission order.
    assert_eq!(engine.admission_log(), expected_admissions(&submitted));

    // Fleet accounting: four nodes retired by failure-detector verdicts,
    // everything else back in the free pool, nothing lost or double-counted.
    assert_eq!(engine.total_nodes(), 16);
    assert_eq!(engine.dead_nodes(), 4);
    assert_eq!(engine.free_nodes(), 12);
    assert!(engine.fleet_is_conserved());
}

/// The 16-seed sweep: the soak invariants hold for every fault seed, not
/// just a lucky one. Each seed runs its own engine, its own 8-job burst
/// and its own mid-soak rank death, and every job must match its solo run.
#[test]
fn scheduler_soak_is_bit_identical_across_all_16_seeds() {
    let dataset = tiny();
    // Shared across seeds: the clean specs repeat, only the seeded kill
    // specs differ.
    let mut solo = SoloCache::new();
    for seed in 0..16u64 {
        let engine = JobEngine::paused(8);
        let killed = (seed % 8) as usize;

        let mut specs = Vec::new();
        for j in 0..8usize {
            let grid = if j % 2 == 0 { (2, 2) } else { (2, 1) };
            let priority = ((j as u64 + seed) % 4) as i32 - 1;
            let iterations = if j == killed { 2 } else { 1 };
            let mut spec = JobSpec::new(dataset.clone(), tiny_gd_config(iterations), grid)
                .with_priority(priority);
            if j == killed {
                // Vary the death site with the seed: rank 1's second or
                // third send decision, both inside iteration 0.
                let after_sends = 1 + seed % 2;
                spec =
                    spec.with_fault_policy(FaultPolicy::reliable(seed).kill_rank(1, after_sends));
            }
            specs.push(spec);
        }

        let mut handles = Vec::new();
        let mut submitted = Vec::new();
        for spec in &specs {
            let handle = engine.submit(spec.clone()).expect("every spec fits");
            submitted.push((handle.id(), spec.priority));
            handles.push(handle);
        }
        engine.start_admitting();
        engine.wait_idle();

        for (j, (handle, spec)) in handles.iter().zip(&specs).enumerate() {
            let report = handle.wait();
            assert_eq!(
                report.state,
                JobState::Completed,
                "seed {seed} job {j} must complete: {:?}",
                report.error
            );
            let result = report.result.expect("completed jobs carry a result");
            assert_bit_identical(solo.baseline(spec), &result);
            assert_eq!(
                result.recovery.substitutions,
                usize::from(j == killed),
                "seed {seed} job {j}: only the killed job is healed"
            );
        }
        assert_eq!(
            engine.admission_log(),
            expected_admissions(&submitted),
            "seed {seed}: admission order must be priority-then-FIFO"
        );
        assert_eq!(engine.dead_nodes(), 1, "seed {seed}: one retired node");
        assert!(engine.fleet_is_conserved(), "seed {seed}");
    }
}

#[test]
fn admissions_follow_priority_then_fifo_order() {
    let dataset = tiny();
    let engine = JobEngine::paused(4);
    let priorities = [0, 5, 5, -1, 3, 0];
    let mut submitted = Vec::new();
    for &priority in &priorities {
        let spec = JobSpec::new(dataset.clone(), tiny_gd_config(1), (2, 1)).with_priority(priority);
        let handle = engine.submit(spec).expect("fits the fleet");
        submitted.push((handle.id(), priority));
    }
    engine.start_admitting();
    engine.wait_idle();
    assert_eq!(engine.admission_log(), expected_admissions(&submitted));
}

#[test]
fn cancelling_a_queued_job_removes_it_before_admission() {
    let dataset = tiny();
    let engine = JobEngine::paused(4);
    let submit = |priority| {
        engine.submit(
            JobSpec::new(dataset.clone(), tiny_gd_config(1), (2, 2)).with_priority(priority),
        )
    };
    let a = submit(0).expect("fits");
    let b = submit(0).expect("fits");
    let c = submit(0).expect("fits");

    b.cancel();
    assert_eq!(b.state(), JobState::Cancelled, "queued cancel is immediate");
    engine.start_admitting();
    engine.wait_idle();

    for survivor in [&a, &c] {
        assert_eq!(survivor.wait().state, JobState::Completed);
    }
    let report = b.wait();
    assert_eq!(report.state, JobState::Cancelled);
    assert!(matches!(report.error, Some(JobError::Cancelled)));
    assert!(report.result.is_none());
    assert_eq!(report.run_seconds, 0.0, "never admitted, never ran");
    assert_eq!(report.progress_events, 0);
    assert_eq!(
        engine.admission_log(),
        vec![a.id(), c.id()],
        "a cancelled queued job is never admitted"
    );
    assert_eq!(engine.free_nodes(), 4, "no lease leaked");
    assert!(engine.fleet_is_conserved());
}

#[test]
fn cancelling_a_running_job_stops_it_at_an_iteration_boundary() {
    let dataset = tiny();
    let engine = JobEngine::new(4);
    // Enough iterations that the job is still running when cancel lands;
    // cooperative cancellation stops it at the next iteration boundary.
    let long_job = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(2000), (2, 2)))
        .expect("fits the fleet");

    // Wait until the job demonstrably runs (first progress event), then ask
    // it to stop.
    let mut waited = Duration::ZERO;
    while long_job.progress().is_empty() {
        assert!(
            waited < Duration::from_secs(10),
            "the job never made progress"
        );
        std::thread::sleep(Duration::from_millis(2));
        waited += Duration::from_millis(2);
    }
    long_job.cancel();

    let report = long_job.wait();
    assert_eq!(report.state, JobState::Cancelled);
    assert!(matches!(report.error, Some(JobError::Cancelled)));
    assert!(report.result.is_none());
    assert!(
        report.progress_events < 2000 * 4,
        "cancellation must stop the run well before its full iteration count"
    );

    // The lease is released: a follow-up job gets the nodes and completes.
    assert_eq!(engine.free_nodes(), 4, "cancelled lease returned to pool");
    assert!(engine.fleet_is_conserved());
    let next = engine
        .submit(JobSpec::new(dataset, tiny_gd_config(1), (2, 2)))
        .expect("fits the fleet");
    assert_eq!(next.wait().state, JobState::Completed);
}

#[test]
fn impossible_specs_are_rejected_at_submission() {
    let dataset = tiny();
    let engine = JobEngine::new(16);

    let empty = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(1), (0, 2)))
        .expect_err("an empty grid can never run");
    assert!(matches!(empty, JobError::Rejected { .. }), "{empty}");

    let oversized = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(1), (5, 4)))
        .expect_err("20 slots cannot fit a 16-node fleet");
    match &oversized {
        JobError::Rejected { reason } => {
            assert!(reason.contains("fleet"), "self-describing: {reason}")
        }
        other => panic!("expected rejection, got {other}"),
    }

    // The HVE feasibility constraint is knowable at submission: a 3×3 grid
    // on the tiny dataset makes 32 px tiles that cannot fill 48 px halos.
    let infeasible = engine
        .submit(
            JobSpec::new(dataset, tiny_hve_config(1), (3, 3))
                .with_method(SolverMethod::HaloVoxelExchange),
        )
        .expect_err("an infeasible decomposition must be refused");
    match &infeasible {
        JobError::Rejected { reason } => {
            assert!(reason.contains("halo"), "self-describing: {reason}")
        }
        other => panic!("expected rejection, got {other}"),
    }

    assert!(engine.admission_log().is_empty(), "nothing was admitted");
    assert_eq!(engine.free_nodes(), 16, "nothing was leased");
}

#[test]
fn progress_streams_one_event_per_rank_per_iteration() {
    let dataset = tiny();
    let engine = JobEngine::new(4);
    let job = engine
        .submit(JobSpec::new(dataset, tiny_gd_config(3), (2, 2)))
        .expect("fits the fleet");
    let report = job.wait();
    assert_eq!(report.state, JobState::Completed);
    let result = report.result.expect("completed");

    let mut events = job.progress();
    assert_eq!(events.len(), 4 * 3, "4 ranks x 3 iterations");
    for progress in &events {
        assert_eq!(progress.job, job.id());
        assert_eq!(progress.event.attempt, 0, "fault-free: single attempt");
        assert!(progress.event.peak_bytes > 0, "memory telemetry present");
    }

    // Per-rank event streams are ordered by iteration.
    for rank in 0..4 {
        let iterations: Vec<usize> = events
            .iter()
            .filter(|p| p.event.rank == rank)
            .map(|p| p.event.iteration)
            .collect();
        assert_eq!(iterations, vec![0, 1, 2], "rank {rank} event order");
    }

    // The streamed per-rank costs reassemble the final cost history bit for
    // bit (summed in rank order, exactly as the result assembly does).
    events.sort_by_key(|p| (p.event.iteration, p.event.rank));
    for (iteration, chunk) in events.chunks(4).enumerate() {
        let streamed: f64 = chunk.iter().map(|p| p.event.cost).sum();
        assert_eq!(
            streamed.to_bits(),
            result.cost_history.costs()[iteration].to_bits(),
            "iteration {iteration}: streamed costs must match the result"
        );
    }

    // The tailing cursor: progress_since(seen) returns exactly the rest.
    assert_eq!(job.progress_since(5).len(), 7);
    assert!(job.progress_since(12).is_empty());
}

#[test]
fn threaded_backend_jobs_match_the_lockstep_service_run() {
    let dataset = tiny();
    let spec = JobSpec::new(dataset, tiny_gd_config(2), (2, 2));

    let engine = JobEngine::new(4);
    let on_lockstep = engine.submit(spec.clone()).expect("fits the fleet").wait();
    let on_threaded = engine
        .submit(spec.with_backend(ServiceBackend::Threaded {
            recv_timeout: Duration::from_millis(500),
        }))
        .expect("fits the fleet")
        .wait();

    assert_eq!(on_lockstep.state, JobState::Completed);
    assert_eq!(on_threaded.state, JobState::Completed);
    assert_bit_identical(
        on_lockstep.result.as_ref().unwrap(),
        on_threaded.result.as_ref().unwrap(),
    );
}

/// Service runs equal direct solver runs for both methods on the shared
/// `small_problem` fixtures — the service adds scheduling, not numerics.
#[test]
fn service_results_match_direct_solver_runs_for_both_methods() {
    let ds = small_problem();
    common::run_both_solvers!(&ds, |solver, label| {
        let direct = solver.run(&lockstep());
        let (method, config) = if label == "gradient-decomposition" {
            (SolverMethod::GradientDecomposition, gd_config())
        } else {
            (SolverMethod::HaloVoxelExchange, hve_config())
        };
        let engine = JobEngine::new(4);
        let report = engine
            .submit(JobSpec::new(ds.clone(), config, (2, 2)).with_method(method))
            .expect("fits the fleet")
            .wait();
        assert_eq!(report.state, JobState::Completed, "{label}");
        assert_bit_identical(&direct, report.result.as_ref().unwrap());
    });
}

#[test]
fn one_tenants_rank_death_does_not_perturb_its_neighbours() {
    let dataset = tiny();
    let engine = JobEngine::paused(12);
    let clean = JobSpec::new(dataset.clone(), tiny_gd_config(2), (2, 2));
    let dying = clean.clone().with_fault_policy(kill_policy(3));

    // Three tenants run concurrently (4 + 4 + 4 = 12 nodes); the middle one
    // loses a rank and heals from the shared pool.
    let a = engine.submit(clean.clone()).expect("fits");
    let b = engine.submit(dying.clone()).expect("fits");
    let c = engine.submit(clean.clone()).expect("fits");
    engine.start_admitting();
    engine.wait_idle();

    let solo_clean = solo_run(&clean);
    for (label, neighbour) in [("first", &a), ("third", &c)] {
        let report = neighbour.wait();
        assert_eq!(report.state, JobState::Completed, "{label}");
        let result = report.result.expect("completed");
        assert_eq!(
            result.recovery.substitutions, 0,
            "{label} tenant must not observe the neighbour's death"
        );
        assert_bit_identical(&solo_clean, &result);
    }

    let healed = b.wait();
    assert_eq!(healed.state, JobState::Completed);
    let healed = healed.result.expect("completed");
    assert_eq!(healed.recovery.substitutions, 1);
    assert_bit_identical(&solo_run(&dying), &healed);

    // Fleet epoch arithmetic: 3 leases + 3 releases + 1 retire + 1 spare
    // draw, each exactly one bump.
    assert_eq!(engine.fleet_epoch(), 8);
    assert_eq!(engine.dead_nodes(), 1);
    assert_eq!(engine.free_nodes(), 11);
    assert!(engine.fleet_is_conserved());
}

/// Retirements permanently shrink the live fleet; a queued job bigger than
/// what remains can never be admitted and — with strict head-of-line
/// scheduling — would otherwise pin the queue (and `wait_idle`) forever.
#[test]
fn fleet_shrinkage_fails_queued_jobs_it_can_never_serve() {
    let dataset = tiny();
    let engine = JobEngine::new(2);
    // The dying job takes the whole 2-node fleet; the full-width follower
    // queues behind it. When the dead rank retires a node, one live node
    // remains: neither the heal nor the follower can ever be served.
    let a = engine
        .submit(
            JobSpec::new(dataset.clone(), tiny_gd_config(2), (2, 1))
                .with_fault_policy(kill_policy(9)),
        )
        .expect("fits the fleet");
    let b = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(2), (2, 1)))
        .expect("feasible against the live fleet at submission");
    engine.wait_idle();

    let a = a.wait();
    assert_eq!(a.state, JobState::Failed, "{:?}", a.error);
    assert!(
        matches!(a.error, Some(JobError::Failed(_))),
        "{:?}",
        a.error
    );

    let b = b.wait();
    assert_eq!(b.state, JobState::Failed);
    match b.error.expect("failed jobs carry an error") {
        JobError::Rejected { reason } => {
            assert!(reason.contains("live"), "self-describing: {reason}")
        }
        other => panic!("expected a shrunken-fleet rejection, got {other}"),
    }

    // A fresh full-width submission is refused outright: feasibility is
    // judged against live nodes, not the fleet's original size.
    let c = engine
        .submit(JobSpec::new(dataset, tiny_gd_config(1), (2, 1)))
        .expect_err("2 slots cannot fit 1 live node");
    match &c {
        JobError::Rejected { reason } => {
            assert!(reason.contains("live"), "self-describing: {reason}")
        }
        other => panic!("expected rejection, got {other}"),
    }

    assert_eq!(engine.dead_nodes(), 1);
    assert_eq!(engine.free_nodes(), 1);
    assert!(engine.fleet_is_conserved());
}

/// Cancelling a job that is blocked inside the spare-grant wait must wake
/// it immediately — not leave it parked until some unrelated scheduler
/// event (like a neighbour finishing) happens to signal the condvar.
#[test]
fn cancelling_a_job_blocked_on_a_spare_grant_wakes_it_promptly() {
    let dataset = tiny();
    let engine = JobEngine::paused(4);
    // The long neighbour keeps the pool fully leased, so the dying job's
    // spare grant blocks after it retires the dead node.
    let long = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(60), (2, 1)))
        .expect("fits the fleet");
    let dying = engine
        .submit(JobSpec::new(dataset, tiny_gd_config(2), (2, 1)).with_fault_policy(kill_policy(7)))
        .expect("fits the fleet");
    engine.start_admitting();

    // The retirement happens on the way into the blocking wait; once it is
    // visible the job is parked (or about to park) on the spare grant.
    while engine.dead_nodes() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    dying.cancel();
    let report = dying.wait();
    assert_eq!(report.state, JobState::Cancelled, "{:?}", report.error);
    assert_eq!(
        long.state(),
        JobState::Running,
        "the wakeup must come from the cancel itself, not from the neighbour finishing"
    );
    assert_eq!(long.wait().state, JobState::Completed);
    assert!(engine.fleet_is_conserved());
}

/// A healing job blocked on a spare grant gets first claim on freed nodes:
/// admissions are deferred while it waits, and the served waiter re-runs
/// admission for the remainder, so the queue still drains.
#[test]
fn a_blocked_heal_is_served_before_new_admissions_and_the_queue_still_drains() {
    let dataset = tiny();
    let engine = JobEngine::paused(4);
    let dying =
        JobSpec::new(dataset.clone(), tiny_gd_config(4), (2, 1)).with_fault_policy(kill_policy(5));
    // A and B fill the fleet; C waits in the queue. A's heal blocks on the
    // empty pool until B's release frees nodes, which must reach the heal
    // before C's admission can consume them.
    let a = engine.submit(dying.clone()).expect("fits the fleet");
    let b = engine
        .submit(JobSpec::new(dataset.clone(), tiny_gd_config(1), (2, 1)))
        .expect("fits the fleet");
    let c = engine
        .submit(JobSpec::new(dataset, tiny_gd_config(1), (2, 1)))
        .expect("queued behind the full fleet");
    engine.start_admitting();
    engine.wait_idle();

    let healed = a.wait();
    assert_eq!(healed.state, JobState::Completed, "{:?}", healed.error);
    let healed = healed.result.expect("completed jobs carry a result");
    assert_eq!(healed.recovery.substitutions, 1, "the heal must be served");
    assert_bit_identical(&solo_run(&dying), &healed);
    assert_eq!(b.wait().state, JobState::Completed);
    assert_eq!(c.wait().state, JobState::Completed);

    assert_eq!(engine.dead_nodes(), 1);
    assert!(engine.fleet_is_conserved());
}
