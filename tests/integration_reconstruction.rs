//! End-to-end integration tests: synthetic acquisition → parallel
//! reconstruction → stitched volume, across the full crate stack
//! (`ptycho-sim` physics, `ptycho-cluster` runtime, `ptycho-core` solvers).

use ptycho_array::stats;
use ptycho_cluster::{Cluster, ClusterTopology};
use ptycho_core::config::PassFrequency;
use ptycho_core::stitch::phase_image;
use ptycho_core::{GradientDecompositionSolver, HaloVoxelExchangeSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};

fn dataset() -> Dataset {
    Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (5, 5),
        window_px: 32,
        dose: None,
        defocus_pm: 40_000.0,
        seed: 77,
    })
}

fn cluster() -> Cluster {
    Cluster::new(ClusterTopology::summit())
}

#[test]
fn gradient_decomposition_reconstructs_the_specimen() {
    let ds = dataset();
    let config = SolverConfig {
        iterations: 15,
        halo_px: 20,
        step_relaxation: 0.25,
        ..SolverConfig::default()
    };
    let result = GradientDecompositionSolver::new(&ds, config, (2, 2)).run(&cluster());

    // The cost must fall substantially from the flat initial guess.
    assert!(result.cost_history.relative_reduction() > 0.5);
    assert!(result.cost_history.is_monotonically_decreasing());

    // The reconstructed phase must correlate with the ground-truth specimen
    // over the illuminated region (pixels never touched by a probe stay at
    // the initial guess and are excluded from the comparison).
    let illuminated = ds.scan().illuminated_bbox();
    let truth = ds.specimen().phase_slice(0).extract(illuminated);
    let reconstructed = phase_image(&result.volume, 0).extract(illuminated);
    let correlation = stats::normalized_cross_correlation(&truth, &reconstructed);
    assert!(
        correlation > 0.5,
        "reconstruction should resemble the specimen, correlation {correlation}"
    );
}

#[test]
fn halo_voxel_exchange_also_converges_but_needs_more_probe_evaluations() {
    let ds = dataset();
    let config = SolverConfig {
        iterations: 4,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    let solver = HaloVoxelExchangeSolver::new(&ds, config, (2, 2)).expect("feasible");
    assert!(solver.total_assigned() > ds.scan().len());
    let result = solver.run(&cluster());
    assert!(result.cost_history.relative_reduction() > 0.3);
}

#[test]
fn parallel_synchronous_gd_matches_serial_reference_across_grids() {
    // With local updates off and one pass per iteration, the decomposition is
    // exactly synchronous gradient descent: 1, 4 and 6 workers must agree.
    let ds = dataset();
    let config = SolverConfig {
        iterations: 2,
        halo_px: 20,
        local_updates: false,
        pass_frequency: PassFrequency::PerIteration(1),
        ..SolverConfig::default()
    };
    let serial = GradientDecompositionSolver::new(&ds, config, (1, 1)).run(&cluster());
    for dims in [(2, 2), (2, 3)] {
        let parallel = GradientDecompositionSolver::new(&ds, config, dims).run(&cluster());
        let max_diff = serial
            .volume
            .iter()
            .zip(parallel.volume.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-6,
            "{dims:?} decomposition must match the serial reference, max diff {max_diff}"
        );
    }
}

#[test]
fn both_methods_produce_similar_quality_on_well_posed_data() {
    let ds = dataset();
    let gd = GradientDecompositionSolver::new(
        &ds,
        SolverConfig {
            iterations: 4,
            halo_px: 20,
            ..SolverConfig::default()
        },
        (2, 2),
    )
    .run(&cluster());
    let hve = HaloVoxelExchangeSolver::new(
        &ds,
        SolverConfig {
            iterations: 4,
            hve_extra_probe_rows: 1,
            ..SolverConfig::default()
        },
        (2, 2),
    )
    .expect("feasible")
    .run(&cluster());

    let truth = ds.specimen().phase_slice(0);
    let gd_err = stats::rmse(&phase_image(&gd.volume, 0), &truth);
    let hve_err = stats::rmse(&phase_image(&hve.volume, 0), &truth);
    // Neither method should be wildly worse than the other on noiseless data.
    assert!(gd_err < 2.0 * hve_err + 1e-6);
    assert!(hve_err < 2.0 * gd_err + 1e-6);
}

#[test]
fn noisy_data_still_reconstructs() {
    let noisy = Dataset::synthesize(SyntheticConfig {
        dose: Some(500.0),
        seed: 78,
        ..SyntheticConfig::tiny()
    });
    let config = SolverConfig {
        iterations: 4,
        halo_px: 20,
        ..SolverConfig::default()
    };
    let result = GradientDecompositionSolver::new(&noisy, config, (2, 2)).run(&cluster());
    assert!(result.cost_history.relative_reduction() > 0.2);
    assert!(result.cost_history.final_cost().is_finite());
}

#[test]
fn pass_frequency_does_not_break_convergence() {
    let ds = dataset();
    for frequency in [
        PassFrequency::EveryProbe,
        PassFrequency::PerIteration(2),
        PassFrequency::PerIteration(1),
    ] {
        let config = SolverConfig {
            iterations: 3,
            halo_px: 20,
            pass_frequency: frequency,
            ..SolverConfig::default()
        };
        let result = GradientDecompositionSolver::new(&ds, config, (2, 3)).run(&cluster());
        assert!(
            result.cost_history.relative_reduction() > 0.3,
            "{frequency:?} should still converge"
        );
    }
}
