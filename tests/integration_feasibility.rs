//! Cross-check between the two notions of Halo Voxel Exchange feasibility:
//! the *threaded solver's* hard constraint (`HaloVoxelExchangeSolver::new`
//! returns an error when tiles cannot fill their neighbours' halos) and the
//! *analytic memory model's* NA marking used by Tables II/III.
//!
//! On small configurations, where both can be evaluated side by side, the
//! contract is:
//!
//! * the solver's verdict must agree exactly with the analytic *hard*
//!   constraint (`hve_hard_feasible`) evaluated on a matching geometry;
//! * the analytic table rule (`hve_feasible`, with its 1.5× practicality
//!   band) must never mark a cell runnable that the solver refuses — i.e.
//!   whenever the solver errors, the table marks NA, and whenever the table
//!   is feasible, the solver constructs.

use ptycho_core::memory_model::{hve_feasible, hve_hard_feasible};
use ptycho_core::tiling::TileGrid;
use ptycho_core::{HaloVoxelExchangeSolver, SolverConfig};
use ptycho_sim::dataset::{Dataset, DatasetSpec, SyntheticConfig};
use ptycho_sim::physics::ImagingGeometry;

const VOXEL_PM: f64 = 50.0;

fn synthetic() -> Dataset {
    Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (6, 6),
        window_px: 16,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 9,
    })
}

/// A `DatasetSpec` describing the same lateral geometry as [`synthetic`], so
/// the analytic model sees the tiling the solver actually builds.
fn matching_spec() -> DatasetSpec {
    DatasetSpec {
        name: "synthetic 128px cross-check".to_string(),
        probe_locations: 36,
        scan_grid: (6, 6),
        detector_px: 16,
        reconstruction: (2, 128, 128),
        voxel_size_pm: (VOXEL_PM, VOXEL_PM, 125.0),
        geometry: ImagingGeometry {
            pixel_size_pm: VOXEL_PM,
            defocus_pm: 12_000.0,
            ..ImagingGeometry::paper()
        },
    }
}

#[test]
fn solver_feasibility_agrees_with_the_memory_model() {
    let ds = synthetic();
    let spec = matching_spec();
    let config = SolverConfig {
        iterations: 1,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    // The halo the solver derives from the scan, expressed in picometres for
    // the analytic model (one object pixel is VOXEL_PM picometres).
    let halo_px = TileGrid::hve_required_halo_px(ds.scan(), config.hve_extra_probe_rows);
    let halo_pm = halo_px as f64 * VOXEL_PM;

    let mut solver_ok_count = 0;
    let mut solver_err_count = 0;
    let mut stricter_band_seen = false;

    for workers in 1..=36usize {
        let solver_ok = HaloVoxelExchangeSolver::for_workers(&ds, config, workers).is_ok();
        let analytic_hard = hve_hard_feasible(&spec, workers, halo_pm);
        let analytic_table = hve_feasible(&spec, workers, halo_pm);

        // Exact agreement with the hard constraint.
        assert_eq!(
            solver_ok, analytic_hard,
            "{workers} workers: solver says {solver_ok}, hard model says {analytic_hard} \
             (halo {halo_px} px)"
        );
        // The table rule is a strict subset: feasible cell => solver runs.
        if analytic_table {
            assert!(
                solver_ok,
                "{workers} workers: Table marks the cell runnable but the solver refuses"
            );
        }
        // ...and vice versa: a refusing solver must be an NA cell.
        if !solver_ok {
            assert!(
                !analytic_table,
                "{workers} workers: solver infeasible but Table does not mark NA"
            );
        }
        if solver_ok && !analytic_table {
            stricter_band_seen = true;
        }
        if solver_ok {
            solver_ok_count += 1;
        } else {
            solver_err_count += 1;
        }
    }

    // The sweep must actually exercise both outcomes, and the 1.5x
    // practicality band between the two rules must be visible.
    assert!(solver_ok_count >= 2, "sweep never found a feasible tiling");
    assert!(
        solver_err_count >= 2,
        "sweep never found an infeasible tiling"
    );
    assert!(
        stricter_band_seen,
        "expected at least one configuration where the solver runs but the table says NA"
    );
}

#[test]
fn infeasible_cells_match_the_solver_error_detail() {
    // When both agree a cell is infeasible, the solver's error must carry the
    // same geometry the analytic rule used: a smallest tile below the halo.
    let ds = synthetic();
    let config = SolverConfig {
        iterations: 1,
        hve_extra_probe_rows: 1,
        ..SolverConfig::default()
    };
    let halo_px = TileGrid::hve_required_halo_px(ds.scan(), config.hve_extra_probe_rows);
    let err = match HaloVoxelExchangeSolver::for_workers(&ds, config, 25) {
        Err(err) => err,
        Ok(_) => panic!("5x5 tiles of ~25 px cannot fill ~31 px halos"),
    };
    let ptycho_core::halo_exchange::solver::HaloExchangeError::TileSmallerThanHalo {
        required_halo_px,
        smallest_tile_px,
    } = err;
    assert_eq!(required_halo_px, halo_px);
    assert!(smallest_tile_px < halo_px);
}
