//! Integration tests for causal trace analysis: span graphs, critical-path
//! attribution, straggler detection, and trace diffing on **real traced
//! runs** (the unit tests in `ptycho-telemetry` pin the same algorithms on
//! hand-built records).
//!
//! The contracts under test:
//!
//! 1. **Deterministic span graphs** — two identical seeded runs produce
//!    byte-identical span graphs (the `Debug` rendering is compared as
//!    bytes), on the lockstep backend under seeded drop faults and on the
//!    free-running threaded backend under duplicate/delay faults.
//! 2. **Exact attribution** — for every rank, the five attribution segments
//!    (compute, comm, retransmit, heal, barrier wait) sum *exactly* to the
//!    job's end-to-end simulated time. No rounding, no residue.
//! 3. **Straggler detection** — a seeded delay-fault run skews one rank's
//!    barrier-wait share far enough above the mean that the z-threshold
//!    flags it, and the flagged set is pinned.
//! 4. **Empty diffs** — the structural trace diff of two identical seeded
//!    runs is empty, and a faulted run diffs non-empty against a clean one.

use ptycho_cluster::{FaultInjectionBackend, FaultPolicy};
use ptycho_core::gradient_decomp::passes::tags;
use ptycho_core::{GradientDecompositionSolver, JobContext, ReconstructionResult, RecoveryPolicy};
use ptycho_sim::dataset::{Dataset, SyntheticConfig};
use ptycho_telemetry::{
    analysis, Telemetry, TelemetryConfig, TelemetryEvent, TelemetryRecord, TraceSummary,
};
use std::io::Write;
use std::sync::{Arc, Mutex};

mod common;
use common::{gd_config, gd_solver, lockstep, restart_policy, small_problem, threaded};

/// An in-memory JSONL sink shared between the telemetry handle and the test.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("telemetry buffer poisoned").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("telemetry buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the standard 2×2 Gradient Decomposition problem with a recorder
/// attached and returns the parsed records (job 0).
fn traced_records<B: ptycho_cluster::CommBackend>(
    backend: &B,
    policy: RecoveryPolicy,
) -> (Vec<TelemetryRecord>, ReconstructionResult) {
    let ds = small_problem();
    let solver = gd_solver(&ds);
    let buf = SharedBuf::default();
    let telemetry = Telemetry::with_writer(TelemetryConfig::default(), Box::new(buf.clone()));
    let job = JobContext {
        telemetry: Some(&telemetry),
        ..JobContext::default()
    };
    let result = solver
        .run_job(backend, policy, &job)
        .expect("traced run must complete");
    let bytes = buf.contents();
    let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");
    let summary = TraceSummary::from_lines(text.lines()).expect("trace parses");
    assert_eq!(summary.truncated_lines, 0);
    (summary.records, result)
}

/// The surgically healable drop the recovery suite uses.
fn gd_drop_policy() -> FaultPolicy {
    FaultPolicy::reliable(0).drop_message(0, 2, tags::VERTICAL_FORWARD, 0)
}

// ---------------------------------------------------------------------------
// Determinism: identical seeded runs yield byte-identical span graphs.
// ---------------------------------------------------------------------------

#[test]
fn span_graph_is_byte_identical_across_seeded_lockstep_runs() {
    let run = || {
        let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
        traced_records(&backend, restart_policy())
    };
    let (records_a, _) = run();
    let (records_b, _) = run();
    let graph_a = format!("{:?}", analysis::span_graph(&records_a, 0));
    let graph_b = format!("{:?}", analysis::span_graph(&records_b, 0));
    assert!(!graph_a.is_empty());
    assert_eq!(
        graph_a.as_bytes(),
        graph_b.as_bytes(),
        "identical seeded lockstep runs must build byte-identical span graphs"
    );

    // The graph carries the run's structure: iteration spans for every
    // rank, mostly-paired message spans, and the injected drop surfacing as
    // an unpaired send (the frame left the sender and never arrived).
    let graph = analysis::span_graph(&records_a, 0);
    assert!(!graph.iteration_spans.is_empty());
    assert!(!graph.message_spans.is_empty());
    let unpaired = graph
        .message_spans
        .iter()
        .filter(|s| s.recv.is_none())
        .count();
    assert!(
        unpaired >= 1,
        "the dropped frame must leave an unpaired send span"
    );
    assert!(
        graph.message_spans.len() - unpaired > unpaired,
        "most sends in a healed run must pair with a receive"
    );
    assert_eq!(graph.unpaired_recvs, 0);
    assert!(!graph.happens_before.is_empty());
}

#[test]
fn span_graph_is_byte_identical_across_seeded_threaded_runs() {
    // Duplicate + delay faults only — both heal inline without wall-time
    // dependent retransmission, so the threaded backend's free-running
    // schedule cannot leak into the trace (same caveat as the telemetry
    // byte-identity suite).
    let run = || {
        let policy = FaultPolicy::reliable(11).duplicate(0.15).delay(0.1);
        let backend = FaultInjectionBackend::new(threaded(5_000), policy);
        traced_records(&backend, restart_policy())
    };
    let (records_a, _) = run();
    let (records_b, _) = run();
    let graph_a = format!("{:?}", analysis::span_graph(&records_a, 0));
    let graph_b = format!("{:?}", analysis::span_graph(&records_b, 0));
    assert_eq!(
        graph_a.as_bytes(),
        graph_b.as_bytes(),
        "identical seeded threaded runs must build byte-identical span graphs"
    );

    // Duplicates and delays heal inside the reliable layer before the
    // receive is recorded, so the graph of the *observed* run is fully
    // paired: every send span has its receive, nothing dangles.
    let graph = analysis::span_graph(&records_a, 0);
    assert!(!graph.message_spans.is_empty());
    assert!(
        graph.message_spans.iter().all(|s| s.recv.is_some()),
        "the healed run's observed sends must all pair"
    );
    assert_eq!(graph.unpaired_recvs, 0);
}

// ---------------------------------------------------------------------------
// Exact attribution: segments sum to end-to-end time, rank by rank.
// ---------------------------------------------------------------------------

#[test]
fn critical_path_attribution_sums_exactly_on_a_real_trace() {
    let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
    let (records, _) = traced_records(&backend, restart_policy());
    let path = analysis::critical_path(&records, 0);

    let max_stamp = records.iter().map(|r| r.sim_ns).max().unwrap_or(0);
    assert_eq!(
        path.end_to_end_ns, max_stamp,
        "end-to-end time is the latest simulated stamp in the job"
    );
    assert!(path.end_to_end_ns > 0);
    assert!(!path.ranks.is_empty());
    for row in &path.ranks {
        assert_eq!(
            row.total_ns(),
            path.end_to_end_ns,
            "rank {}: compute {} + comm {} + retransmit {} + heal {} + wait {} \
             must sum exactly to the end-to-end simulated time",
            row.rank,
            row.compute_ns,
            row.comm_ns,
            row.retransmit_ns,
            row.heal_ns,
            row.barrier_wait_ns
        );
        assert!(row.compute_ns > 0, "rank {} must do compute", row.rank);
    }
    // The injected drop heals by retransmission. The re-send's wire time is
    // charged when the frame goes out (its `comm_send` record), so the
    // attribution books it under comm; the retransmission itself is still
    // visible in the record stream.
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, TelemetryEvent::CommRetransmit { .. })),
        "the drop's retransmission must appear in the trace"
    );
    // The critical rank is the one with zero barrier wait.
    let critical = path
        .ranks
        .iter()
        .find(|r| r.rank == path.critical_rank)
        .expect("critical rank has a row");
    assert_eq!(critical.barrier_wait_ns, 0);
}

// ---------------------------------------------------------------------------
// Straggler detection: a seeded delay-fault run pins the flagged set.
// ---------------------------------------------------------------------------

#[test]
fn straggler_detection_pins_on_a_seeded_delay_fault_run() {
    // A 5-row scan over a 3×1 grid splits its rows unevenly: the middle
    // rank ends up with the lightest tile, finishes early, and sits in the
    // barrier while its peers grind — the exact wait-share signature the
    // detector flags.
    // Seeded delay faults reorder frames throughout the run; because the
    // simulated clock charges analytic wire time, not arrival order, they
    // must not move the attribution or the flagged set at all.
    let ds = Dataset::synthesize(SyntheticConfig {
        object_px: 128,
        slices: 2,
        scan_grid: (5, 4),
        window_px: 32,
        dose: None,
        defocus_pm: 12_000.0,
        seed: 21,
    });
    let run = |policy: FaultPolicy| {
        let solver = GradientDecompositionSolver::new(&ds, gd_config(), (3, 1));
        let buf = SharedBuf::default();
        let telemetry = Telemetry::with_writer(TelemetryConfig::default(), Box::new(buf.clone()));
        let job = JobContext {
            telemetry: Some(&telemetry),
            ..JobContext::default()
        };
        let backend = FaultInjectionBackend::new(lockstep(), policy);
        solver
            .run_job(&backend, restart_policy(), &job)
            .expect("delayed run completes");
        let bytes = buf.contents();
        let text = std::str::from_utf8(&bytes).expect("trace is UTF-8");
        TraceSummary::from_lines(text.lines())
            .expect("trace parses")
            .records
    };

    let records = run(FaultPolicy::reliable(7).delay(0.45));
    let path = analysis::critical_path(&records, 0);
    let report = analysis::straggler_report(&path, 1.0);
    assert_eq!(report.z_threshold, 1.0);
    assert!(
        report.std_wait_share > 0.0,
        "the uneven split must skew the wait shares"
    );
    let flagged: Vec<u64> = report.stragglers.iter().map(|s| s.rank).collect();
    assert_eq!(
        flagged,
        vec![1],
        "the under-loaded rank is the lone wait-share outlier: shares {:?}",
        path.ranks
            .iter()
            .map(|r| (r.rank, r.barrier_wait_ns))
            .collect::<Vec<_>>()
    );
    for straggler in &report.stragglers {
        assert!(straggler.z_score > 1.0);
        assert!(straggler.wait_share > report.mean_wait_share);
    }

    // Reordering is invisible to the simulated clock: the fault-free run
    // yields the same attribution, and a repeat of the seeded delay run
    // renders the identical report byte for byte.
    let clean_path = analysis::critical_path(&run(FaultPolicy::reliable(7)), 0);
    assert_eq!(format!("{path:?}"), format!("{clean_path:?}"));
    let repeat = analysis::straggler_report(
        &analysis::critical_path(&run(FaultPolicy::reliable(7).delay(0.45)), 0),
        1.0,
    );
    assert_eq!(format!("{report:?}"), format!("{repeat:?}"));
}

// ---------------------------------------------------------------------------
// Diff: identical runs diff empty; a faulted run diffs non-empty vs clean.
// ---------------------------------------------------------------------------

#[test]
fn diff_is_empty_for_identical_seeded_runs() {
    let run = || {
        let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
        traced_records(&backend, restart_policy())
    };
    let (records_a, _) = run();
    let (records_b, _) = run();
    let diff = analysis::diff_jobs(&records_a, 0, &records_b, 0);
    assert!(diff.identical, "identical seeded runs must diff empty");
    assert_eq!(diff.iterations_a, diff.iterations_b);
    assert_eq!(diff.common_prefix, diff.iterations_a);
    assert!(diff.first_divergence.is_none());
    assert_eq!(diff.messages_only_in_a, 0);
    assert_eq!(diff.messages_only_in_b, 0);
}

#[test]
fn diff_localises_a_faulted_run_against_a_clean_one() {
    let clean = traced_records(&lockstep(), RecoveryPolicy::FailFast).0;
    let faulted = {
        let backend = FaultInjectionBackend::new(lockstep(), gd_drop_policy());
        traced_records(&backend, restart_policy()).0
    };
    let diff = analysis::diff_jobs(&clean, 0, &faulted, 0);
    // The reconstruction is bit-identical (the recovery contract), so every
    // iteration span matches; the drop + retransmission shows up purely on
    // the message-span side.
    assert!(
        diff.messages_only_in_a > 0 || diff.messages_only_in_b > 0,
        "the injected drop must leave a structural message-span residue"
    );
    assert!(!diff.identical);
}
