//! Post-hoc trace analysis: reassembling per-rank timelines and the
//! Fig. 7b-style compute/wait/communication breakdown from a JSONL log.
//!
//! Used by the `trace_dump` binary and the test suite; lives here so the
//! logic is unit-testable without spawning a process.

use crate::event::{TelemetryEvent, TelemetryRecord};
use crate::json::{self, ParseError};
use std::collections::BTreeMap;

/// Per-`(job, rank)` stream digest.
#[derive(Clone, Debug, Default)]
pub struct StreamSummary {
    /// Events in the stream (that made it into the log).
    pub events: u64,
    /// Event counts by kind.
    pub kinds: BTreeMap<&'static str, u64>,
    /// Highest simulated time stamped in the stream, in nanoseconds.
    pub last_sim_ns: u64,
    /// Cumulative modeled compute nanoseconds from the last
    /// [`TelemetryEvent::IterationEnd`] seen.
    pub compute_ns: u64,
    /// Cumulative analytic communication nanoseconds from the last
    /// [`TelemetryEvent::IterationEnd`] seen.
    pub comm_ns: u64,
    /// Iterations finished (count of `IterationEnd` events).
    pub iterations: u64,
    /// The rank's share of the final iteration cost.
    pub last_cost: f64,
}

/// One rank's row of the Fig. 7b-style breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankBreakdown {
    /// Job the rank belongs to.
    pub job: u64,
    /// The rank.
    pub rank: u64,
    /// Modeled compute nanoseconds.
    pub compute_ns: u64,
    /// Analytic communication nanoseconds.
    pub comm_ns: u64,
    /// Critical-path residual: how long this rank idles waiting for the
    /// busiest rank of the job, in nanoseconds.
    pub wait_ns: u64,
}

/// A fully ingested trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Every parsed record, in file order.
    pub records: Vec<TelemetryRecord>,
    /// Per-`(job, rank)` digests.
    pub streams: BTreeMap<(u64, u64), StreamSummary>,
    /// Lines that failed to parse (only ever tolerated for the final,
    /// possibly truncated line).
    pub truncated_lines: u64,
}

impl TraceSummary {
    /// Ingests a JSONL trace. A parse failure on any line but the last is an
    /// error; a failure on the last line is counted as a truncated tail (the
    /// expected shape of a log cut off by a process kill).
    pub fn from_lines<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Self, ParseError> {
        let mut summary = TraceSummary::default();
        let mut pending_error: Option<ParseError> = None;
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            // An earlier line failed to parse and was not the last: real error.
            if let Some(error) = pending_error.take() {
                return Err(error);
            }
            match json::parse_record(line) {
                Ok(record) => summary.ingest(record),
                Err(error) => pending_error = Some(error),
            }
        }
        if pending_error.is_some() {
            summary.truncated_lines = 1;
        }
        Ok(summary)
    }

    fn ingest(&mut self, record: TelemetryRecord) {
        let stream = self.streams.entry((record.job, record.rank)).or_default();
        stream.events += 1;
        *stream.kinds.entry(record.event.kind()).or_insert(0) += 1;
        stream.last_sim_ns = stream.last_sim_ns.max(record.sim_ns);
        if let TelemetryEvent::IterationEnd {
            cost,
            compute_ns,
            comm_ns,
            ..
        } = record.event
        {
            stream.iterations += 1;
            stream.compute_ns = compute_ns;
            stream.comm_ns = comm_ns;
            stream.last_cost = cost;
        }
        self.records.push(record);
    }

    /// Total records ingested.
    pub fn total_events(&self) -> usize {
        self.records.len()
    }

    /// Event count for `kind` across every stream.
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.streams
            .values()
            .filter_map(|s| s.kinds.get(kind))
            .sum()
    }

    /// The Fig. 7b-style per-rank breakdown for `job`: each rank's modeled
    /// compute and analytic communication time, plus the critical-path
    /// residual (`wait = busiest rank's compute+comm − own compute+comm`) —
    /// the idle time a barrier-synchronised rank spends waiting for the
    /// job's straggler.
    pub fn breakdown(&self, job: u64) -> Vec<RankBreakdown> {
        let ranks: Vec<(u64, &StreamSummary)> = self
            .streams
            .iter()
            .filter(|((j, _), s)| *j == job && s.iterations > 0)
            .map(|((_, rank), s)| (*rank, s))
            .collect();
        let critical_path = ranks
            .iter()
            .map(|(_, s)| s.compute_ns + s.comm_ns)
            .max()
            .unwrap_or(0);
        ranks
            .into_iter()
            .map(|(rank, s)| {
                let busy = s.compute_ns + s.comm_ns;
                RankBreakdown {
                    job,
                    rank,
                    compute_ns: s.compute_ns,
                    comm_ns: s.comm_ns,
                    wait_ns: critical_path - busy,
                }
            })
            .collect()
    }

    /// Job ids present in the trace, ascending.
    pub fn jobs(&self) -> Vec<u64> {
        let mut jobs: Vec<u64> = self.streams.keys().map(|(job, _)| *job).collect();
        jobs.dedup();
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::record_to_line;

    fn end(rank: u64, seq: u64, compute_ns: u64, comm_ns: u64) -> String {
        record_to_line(&TelemetryRecord {
            rank,
            seq,
            sim_ns: compute_ns + comm_ns,
            job: 0,
            event: TelemetryEvent::IterationEnd {
                iteration: 0,
                attempt: 0,
                cost: 1.0,
                compute_ns,
                comm_ns,
            },
        })
    }

    #[test]
    fn breakdown_is_critical_path_residual() {
        let text = format!("{}{}", end(0, 0, 100, 20), end(1, 0, 60, 10));
        let summary = TraceSummary::from_lines(text.lines()).unwrap();
        let rows = summary.breakdown(0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].wait_ns, 0, "busiest rank never waits");
        assert_eq!(rows[1].wait_ns, 50, "120 - 70");
        assert_eq!(summary.kind_count("iteration_end"), 2);
    }

    #[test]
    fn truncated_tail_is_tolerated_mid_file_garbage_is_not() {
        let good = end(0, 0, 1, 1);
        let truncated = format!("{good}{{\"rank\":0,\"seq\":1,\"sim");
        let summary = TraceSummary::from_lines(truncated.lines()).unwrap();
        assert_eq!(summary.total_events(), 1);
        assert_eq!(summary.truncated_lines, 1);

        let garbage_mid = format!("{{\"rank\":0,\"seq\":1,\"sim\n{good}");
        assert!(TraceSummary::from_lines(garbage_mid.lines()).is_err());
    }
}
