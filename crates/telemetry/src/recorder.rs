//! The flight recorder: preallocated per-rank ring buffers, allocation-free
//! recording, and barrier-synchronised durable flushing.
//!
//! # Ownership and threading
//!
//! One [`Telemetry`] instance covers one run (or one job of the service). It
//! hands out one [`RankSink`] per rank; a sink is a pair of `Arc`s, so
//! cloning it and recording through it never allocates. Each rank's ring
//! lives behind its own mutex — ranks never contend with each other on the
//! steady-state path, only with the (rare) flusher.
//!
//! # Durability discipline
//!
//! When a writer is attached, events become durable at the per-iteration
//! consistency barrier: each rank publishes a *watermark* (its current
//! sequence count) before entering the barrier, and after the barrier one
//! rank calls [`Telemetry::flush_consistent`], which writes every rank's
//! events up to its published watermark, in rank order then sequence order.
//! The barrier gives the flusher a happens-before edge over every published
//! watermark, so a killed process leaves a prefix-consistent log: whatever
//! made it to the file is exactly "everything every rank saw up to barrier
//! N", possibly plus one partially-written trailing line that readers
//! tolerate.
//!
//! Watermarks are double-buffered by barrier-generation parity: a rank that
//! races ahead publishes generation `g+1` into the other parity slot, so the
//! flusher of generation `g` still reads the value published *before*
//! barrier `g`. (A rank cannot publish `g+2` before the generation-`g` flush
//! completes, because that would require passing barrier `g+1`, which the
//! flushing rank has not reached yet.)

use crate::event::{TelemetryEvent, TelemetryRecord};
use crate::json;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning for one [`Telemetry`] instance.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Capacity of each per-rank ring buffer, in records. When a ring wraps,
    /// the oldest record is evicted; evictions of not-yet-durable records
    /// are counted in [`Telemetry::lost_records`].
    pub ring_capacity: usize,
    /// Job id stamped into every record (0 when the run is not part of a
    /// multi-job service).
    pub job_id: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 4096,
            job_id: 0,
        }
    }
}

/// Per-rank recorder state: the ring, the simulated clock mirror, and the
/// durable cursor.
struct RankRecorder {
    rank: u64,
    job: u64,
    /// Ring storage; grows by `push` up to the preallocated capacity and
    /// then wraps (no reallocation ever happens after construction).
    ring: Vec<TelemetryRecord>,
    /// Index of the oldest record once the ring has wrapped.
    start: usize,
    /// Next sequence number to assign (== total records ever recorded).
    next_seq: u64,
    /// Cumulative analytic communication nanoseconds (monotonic).
    comm_ns: u64,
    /// Cumulative modeled compute nanoseconds (monotonic).
    compute_ns: u64,
    /// Double-buffered barrier watermarks, indexed by generation parity.
    watermark: [u64; 2],
    /// First sequence number not yet written to the durable sink.
    written_seq: u64,
    /// Records evicted from this ring before they became durable.
    lost: u64,
}

impl RankRecorder {
    fn new(rank: u64, job: u64, capacity: usize) -> Self {
        Self {
            rank,
            job,
            ring: Vec::with_capacity(capacity.max(1)),
            start: 0,
            next_seq: 0,
            comm_ns: 0,
            compute_ns: 0,
            watermark: [0, 0],
            written_seq: 0,
            lost: 0,
        }
    }

    /// Stamps and stores one event. Never allocates: the ring was sized at
    /// construction, and `push` below capacity reuses the reserved storage.
    fn record(&mut self, event: TelemetryEvent) {
        let record = TelemetryRecord {
            rank: self.rank,
            seq: self.next_seq,
            sim_ns: self.comm_ns + self.compute_ns,
            job: self.job,
            event,
        };
        self.next_seq += 1;
        let capacity = self.ring.capacity();
        if self.ring.len() < capacity {
            self.ring.push(record);
        } else {
            self.ring[self.start] = record;
            self.start = (self.start + 1) % capacity;
        }
    }

    /// Sequence number of the oldest record still held by the ring.
    fn oldest_seq(&self) -> u64 {
        self.next_seq - self.ring.len() as u64
    }

    /// The record with sequence number `seq` (must still be in the ring).
    fn at_seq(&self, seq: u64) -> &TelemetryRecord {
        let offset = (seq - self.oldest_seq()) as usize;
        let idx = (self.start + offset) % self.ring.len().max(1);
        &self.ring[idx]
    }

    /// Emits every record in `[written_seq, up_to)` still present in the
    /// ring as JSONL into `buf`, advances the durable cursor, and returns
    /// how many records had already been evicted (lost to the ring wrap).
    fn emit_pending(&mut self, up_to: u64, buf: &mut String) -> u64 {
        let up_to = up_to.min(self.next_seq);
        if up_to <= self.written_seq {
            return 0;
        }
        let from = self.written_seq.max(self.oldest_seq());
        let lost = from - self.written_seq;
        self.lost += lost;
        for seq in from..up_to {
            json::emit_record(self.at_seq(seq), buf);
        }
        self.written_seq = up_to;
        lost
    }
}

/// The durable half: a writer plus a reusable line buffer so flushing does
/// not allocate per event once warm.
struct DurableState {
    writer: Box<dyn Write + Send>,
    buf: String,
}

struct Inner {
    config: TelemetryConfig,
    /// Live ring-capacity knob: seeded from `config.ring_capacity`, but
    /// adjustable (see [`Telemetry::set_ring_capacity`]) up until a stream
    /// is created — existing rings are never resized.
    ring_capacity: AtomicUsize,
    recorders: RwLock<Vec<Arc<Mutex<RankRecorder>>>>,
    durable: Option<Mutex<DurableState>>,
    lost: AtomicU64,
}

/// The telemetry hub for one run: hands out per-rank [`RankSink`]s, owns the
/// optional durable writer, and exposes in-memory snapshots.
///
/// Cloning is cheap (`Arc`); every clone observes the same streams.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("ranks", &self.ranks())
            .field("job_id", &self.inner.config.job_id)
            .field(
                "ring_capacity",
                &self.inner.ring_capacity.load(Ordering::Relaxed),
            )
            .field("durable", &self.inner.durable.is_some())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An in-memory-only recorder with the default configuration.
    pub fn new() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// An in-memory-only recorder with explicit tuning.
    pub fn with_config(config: TelemetryConfig) -> Self {
        Self::build(config, None)
    }

    /// A recorder that also writes JSONL to `writer` at every consistency
    /// flush (see the module docs for the durability discipline).
    pub fn with_writer(config: TelemetryConfig, writer: Box<dyn Write + Send>) -> Self {
        Self::build(config, Some(writer))
    }

    fn build(config: TelemetryConfig, writer: Option<Box<dyn Write + Send>>) -> Self {
        Self {
            inner: Arc::new(Inner {
                config,
                ring_capacity: AtomicUsize::new(config.ring_capacity),
                recorders: RwLock::new(Vec::new()),
                durable: writer.map(|writer| {
                    Mutex::new(DurableState {
                        writer,
                        buf: String::with_capacity(16 * 1024),
                    })
                }),
                lost: AtomicU64::new(0),
            }),
        }
    }

    /// The sink for `rank`'s stream, creating (and preallocating) the
    /// stream on first use. Creation allocates; recording through the
    /// returned sink does not.
    pub fn sink(&self, rank: usize) -> RankSink {
        let mut recorders = self
            .inner
            .recorders
            .write()
            .expect("telemetry recorder table poisoned");
        while recorders.len() <= rank {
            let next_rank = recorders.len() as u64;
            recorders.push(Arc::new(Mutex::new(RankRecorder::new(
                next_rank,
                self.inner.config.job_id,
                self.inner.ring_capacity.load(Ordering::Relaxed),
            ))));
        }
        RankSink {
            recorder: Arc::clone(&recorders[rank]),
        }
    }

    /// Number of rank streams created so far.
    pub fn ranks(&self) -> usize {
        self.inner
            .recorders
            .read()
            .expect("telemetry recorder table poisoned")
            .len()
    }

    /// Records evicted from a ring before they became durable. Nonzero means
    /// the ring capacity was too small for the flush cadence and the JSONL
    /// log has per-rank sequence gaps (readers tolerate them).
    pub fn lost_records(&self) -> u64 {
        self.inner.lost.load(Ordering::Relaxed)
    }

    /// Per-rank lost-record counters, indexed by rank. The sum equals
    /// [`Telemetry::lost_records`]; a nonzero entry names the exact stream
    /// whose JSONL log has sequence gaps.
    pub fn lost_records_by_rank(&self) -> Vec<u64> {
        let recorders = self
            .inner
            .recorders
            .read()
            .expect("telemetry recorder table poisoned");
        recorders
            .iter()
            .map(|r| r.lock().expect("telemetry recorder poisoned").lost)
            .collect()
    }

    /// Resizes the per-rank ring capacity for streams created *after* this
    /// call (existing rings are never resized — recording must stay
    /// allocation-free). Values below 1 clamp to 1. This is the hook behind
    /// `JobSpec::with_telemetry_capacity`: the service applies the knob
    /// before the job's first stream exists, so every rank of the job gets
    /// the requested capacity.
    pub fn set_ring_capacity(&self, capacity: usize) {
        self.inner
            .ring_capacity
            .store(capacity.max(1), Ordering::Relaxed);
    }

    /// In-memory snapshot of `rank`'s stream: whatever the ring still holds,
    /// oldest first. Empty when the stream does not exist.
    pub fn records(&self, rank: usize) -> Vec<TelemetryRecord> {
        let recorders = self
            .inner
            .recorders
            .read()
            .expect("telemetry recorder table poisoned");
        let Some(recorder) = recorders.get(rank) else {
            return Vec::new();
        };
        let recorder = recorder.lock().expect("telemetry recorder poisoned");
        let mut out = Vec::with_capacity(recorder.ring.len());
        for seq in recorder.oldest_seq()..recorder.next_seq {
            out.push(*recorder.at_seq(seq));
        }
        out
    }

    /// Total events ever recorded across all streams.
    pub fn total_recorded(&self) -> u64 {
        let recorders = self
            .inner
            .recorders
            .read()
            .expect("telemetry recorder table poisoned");
        recorders
            .iter()
            .map(|r| r.lock().expect("telemetry recorder poisoned").next_seq)
            .sum()
    }

    /// Writes every rank's events up to its published generation-`generation`
    /// watermark to the durable sink (no-op without a writer). Call from
    /// exactly one rank, after the consistency barrier of that generation.
    pub fn flush_consistent(&self, generation: u64) {
        self.flush_up_to(|recorder| recorder.watermark[(generation % 2) as usize]);
    }

    /// Writes every event recorded so far to the durable sink (no-op
    /// without a writer). Call once per run from the driver, after every
    /// rank has finished.
    pub fn flush_all(&self) {
        self.flush_up_to(|recorder| recorder.next_seq);
    }

    fn flush_up_to(&self, up_to: impl Fn(&RankRecorder) -> u64) {
        let Some(durable) = &self.inner.durable else {
            return;
        };
        let mut durable = durable.lock().expect("telemetry durable sink poisoned");
        let recorders = self
            .inner
            .recorders
            .read()
            .expect("telemetry recorder table poisoned");
        let mut lost = 0;
        let DurableState { writer, buf } = &mut *durable;
        for recorder in recorders.iter() {
            let mut recorder = recorder.lock().expect("telemetry recorder poisoned");
            let limit = up_to(&recorder);
            lost += recorder.emit_pending(limit, buf);
        }
        drop(recorders);
        if lost > 0 {
            self.inner.lost.fetch_add(lost, Ordering::Relaxed);
        }
        if !buf.is_empty() {
            writer
                .write_all(buf.as_bytes())
                .expect("telemetry sink write failed");
            writer.flush().expect("telemetry sink flush failed");
            buf.clear();
        }
    }
}

/// One rank's recording handle. Cloning and recording never allocate;
/// see [`Telemetry::sink`].
#[derive(Clone)]
pub struct RankSink {
    recorder: Arc<Mutex<RankRecorder>>,
}

impl std::fmt::Debug for RankSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let recorder = self.recorder.lock().expect("telemetry recorder poisoned");
        f.debug_struct("RankSink")
            .field("rank", &recorder.rank)
            .field("recorded", &recorder.next_seq)
            .finish()
    }
}

impl RankSink {
    /// The rank this sink records for.
    pub fn rank(&self) -> usize {
        self.recorder
            .lock()
            .expect("telemetry recorder poisoned")
            .rank as usize
    }

    /// Stamps and stores one event at the rank's current simulated time.
    pub fn record(&self, event: TelemetryEvent) {
        self.recorder
            .lock()
            .expect("telemetry recorder poisoned")
            .record(event);
    }

    /// Updates the rank's analytic communication clock (monotonic: stale
    /// values are ignored), then stores the event.
    pub fn record_at_comm_ns(&self, comm_ns: u64, event: TelemetryEvent) {
        let mut recorder = self.recorder.lock().expect("telemetry recorder poisoned");
        recorder.comm_ns = recorder.comm_ns.max(comm_ns);
        recorder.record(event);
    }

    /// Updates the rank's analytic communication clock without recording.
    /// Monotonic: stale values are ignored.
    pub fn set_comm_ns(&self, comm_ns: u64) {
        let mut recorder = self.recorder.lock().expect("telemetry recorder poisoned");
        recorder.comm_ns = recorder.comm_ns.max(comm_ns);
    }

    /// Adds modeled compute time to the rank's simulated clock.
    pub fn add_compute_ns(&self, compute_ns: u64) {
        self.recorder
            .lock()
            .expect("telemetry recorder poisoned")
            .compute_ns += compute_ns;
    }

    /// The rank's simulated clock split: `(comm_ns, compute_ns)`.
    pub fn sim_parts(&self) -> (u64, u64) {
        let recorder = self.recorder.lock().expect("telemetry recorder poisoned");
        (recorder.comm_ns, recorder.compute_ns)
    }

    /// Publishes the rank's durable watermark for barrier `generation`.
    /// Call immediately before entering the consistency barrier; the
    /// post-barrier [`Telemetry::flush_consistent`] of the same generation
    /// writes everything recorded before this call.
    pub fn publish_watermark(&self, generation: u64) {
        let mut recorder = self.recorder.lock().expect("telemetry recorder poisoned");
        let slot = (generation % 2) as usize;
        recorder.watermark[slot] = recorder.watermark[slot].max(recorder.next_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    /// A writer handing the written bytes back to the test.
    #[derive(Clone, Default)]
    struct SharedBuf(StdArc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let telemetry = Telemetry::with_config(TelemetryConfig {
            ring_capacity: 4,
            job_id: 0,
        });
        let sink = telemetry.sink(0);
        for i in 0..10 {
            sink.record(TelemetryEvent::Checkpoint { iteration: i });
        }
        let records = telemetry.records(0);
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].seq, 6);
        assert_eq!(records[3].seq, 9);
        assert!(records
            .iter()
            .all(|r| matches!(r.event, TelemetryEvent::Checkpoint { .. })));
    }

    #[test]
    fn sim_clock_combines_comm_and_compute_monotonically() {
        let telemetry = Telemetry::new();
        let sink = telemetry.sink(1);
        sink.set_comm_ns(100);
        sink.add_compute_ns(50);
        sink.record(TelemetryEvent::BarrierWait { iteration: 0 });
        sink.set_comm_ns(40); // stale: ignored
        sink.record_at_comm_ns(300, TelemetryEvent::BarrierWait { iteration: 1 });
        let records = telemetry.records(1);
        assert_eq!(records[0].sim_ns, 150);
        assert_eq!(records[1].sim_ns, 350);
    }

    #[test]
    fn consistent_flush_honours_watermarks() {
        let buf = SharedBuf::default();
        let telemetry = Telemetry::with_writer(TelemetryConfig::default(), Box::new(buf.clone()));
        let sink = telemetry.sink(0);
        sink.record(TelemetryEvent::Checkpoint { iteration: 0 });
        sink.publish_watermark(0);
        sink.record(TelemetryEvent::Checkpoint { iteration: 1 });
        telemetry.flush_consistent(0);
        let after_first = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(after_first.lines().count(), 1, "only the watermarked event");
        telemetry.flush_all();
        let after_all = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(after_all.lines().count(), 2);
        assert_eq!(telemetry.lost_records(), 0);
    }

    #[test]
    fn eviction_before_flush_counts_lost_records() {
        let buf = SharedBuf::default();
        let telemetry = Telemetry::with_writer(
            TelemetryConfig {
                ring_capacity: 2,
                job_id: 0,
            },
            Box::new(buf.clone()),
        );
        let sink = telemetry.sink(0);
        for i in 0..5 {
            sink.record(TelemetryEvent::Checkpoint { iteration: i });
        }
        telemetry.flush_all();
        assert_eq!(telemetry.lost_records(), 3);
        assert_eq!(
            telemetry.lost_records_by_rank(),
            vec![3],
            "the loss must be attributed to the overflowing stream"
        );
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2, "the two surviving ring entries");
    }

    #[test]
    fn ring_capacity_knob_applies_to_streams_created_afterwards() {
        let buf = SharedBuf::default();
        let telemetry = Telemetry::with_writer(
            TelemetryConfig {
                ring_capacity: 2,
                job_id: 0,
            },
            Box::new(buf.clone()),
        );
        let small = telemetry.sink(0);
        telemetry.set_ring_capacity(64);
        let big = telemetry.sink(1);
        for i in 0..5 {
            small.record(TelemetryEvent::Checkpoint { iteration: i });
            big.record(TelemetryEvent::Checkpoint { iteration: i });
        }
        telemetry.flush_all();
        assert_eq!(
            telemetry.lost_records_by_rank(),
            vec![3, 0],
            "only the pre-resize stream may lose records"
        );
    }
}
