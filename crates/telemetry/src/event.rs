//! The structured event model: everything the cluster can report, as one
//! fixed-size `Copy` enum.
//!
//! Every variant carries only plain integers (plus one `f64` cost), so a
//! [`TelemetryRecord`] can be copied into a preallocated ring buffer without
//! touching the heap — the property the zero-allocation steady-state gate
//! pins. Rank-like fields use `u64` (casts from `usize` are lossless on every
//! supported target).
//!
//! Field-space conventions:
//!
//! * Comm events (`CommSend`/`CommRecv`/…) name peers in **slot space** — the
//!   job-local rank indices messages are addressed with.
//! * Membership events (`RankDead`/`RankSuspected`/`SparePromoted`) name
//!   **nodes** — physical identities that survive spare substitution.
//! * Job events carry the service-assigned job id.

/// One observable occurrence inside a run, stamped and stored as a
/// [`TelemetryRecord`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// A rank handed a message to the transport (recorded whether or not a
    /// fault later dropped it; a paired [`TelemetryEvent::CommDrop`] reports
    /// the loss).
    CommSend {
        /// Destination slot.
        to: u64,
        /// Message tag as passed to the transport (wire tag under
        /// `ReliableComm`).
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Span correlation id stamped by the sending backend: the sender's
        /// slot in the high 32 bits, a per-sender transport-send counter in
        /// the low 32. Every copy of one logical send (fault duplicates,
        /// delayed deliveries) shares the id, so the analysis layer can pair
        /// sends with receives even when `(peer, tag)` alone is ambiguous.
        corr: u64,
    },
    /// A rank's blocking or polling receive returned a message.
    CommRecv {
        /// Source slot.
        from: u64,
        /// Message tag as requested from the transport.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Correlation id of the send that produced this message (see the
        /// `corr` field of [`TelemetryEvent::CommSend`]).
        corr: u64,
    },
    /// The reliable layer re-sent an unacknowledged message.
    CommRetransmit {
        /// Destination slot.
        to: u64,
        /// Application-level (base) tag of the retransmitted message.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The reliable layer acknowledged a received message (including
    /// re-acknowledged duplicates).
    CommAck {
        /// The peer being acknowledged.
        peer: u64,
        /// Application-level (base) tag of the acknowledged message.
        tag: u64,
    },
    /// The fault harness dropped an outgoing message.
    CommDrop {
        /// Intended destination slot.
        to: u64,
        /// Message tag at the faulted layer.
        tag: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A ring heartbeat control frame was sent.
    HeartbeatSent {
        /// Destination slot of the heartbeat.
        to: u64,
        /// Iteration the heartbeat covers.
        iteration: u64,
    },
    /// A ring heartbeat control frame was observed after the barrier.
    HeartbeatObserved {
        /// Source slot of the heartbeat.
        from: u64,
        /// Iteration the heartbeat covers.
        iteration: u64,
    },
    /// A rank reached the per-iteration consistency barrier.
    BarrierWait {
        /// The iteration whose barrier is being entered.
        iteration: u64,
    },
    /// A rank started an iteration.
    IterationBegin {
        /// Zero-based iteration index.
        iteration: u64,
        /// Recovery attempt the iteration runs under (0 = first attempt).
        attempt: u64,
    },
    /// A rank finished an iteration.
    IterationEnd {
        /// Zero-based iteration index.
        iteration: u64,
        /// Recovery attempt the iteration ran under.
        attempt: u64,
        /// The rank's contribution to the iteration cost.
        cost: f64,
        /// Cumulative modeled compute nanoseconds on this rank so far.
        compute_ns: u64,
        /// Cumulative analytic communication nanoseconds charged to this
        /// rank so far.
        comm_ns: u64,
    },
    /// A rank saved its per-iteration checkpoint.
    Checkpoint {
        /// Iteration the checkpoint covers.
        iteration: u64,
    },
    /// The fault harness killed a node (it stops sending mid-run).
    RankDead {
        /// The node that died.
        node: u64,
    },
    /// A heartbeat expected after the barrier did not arrive.
    RankSuspected {
        /// The node whose heartbeat is missing.
        node: u64,
        /// Iteration at which suspicion was raised.
        iteration: u64,
    },
    /// The recovery driver promoted a standby spare into a dead slot.
    SparePromoted {
        /// The slot the spare adopts.
        slot: u64,
        /// The node promoted into the slot.
        node: u64,
    },
    /// The job service accepted a submission into the admission queue.
    JobSubmitted {
        /// Service-assigned job id.
        job: u64,
        /// Admission priority.
        priority: i64,
        /// Nodes the job needs.
        slots: u64,
    },
    /// The job service admitted a job (leased nodes, started the run).
    JobAdmitted {
        /// Service-assigned job id.
        job: u64,
        /// Jobs still waiting after this admission.
        queue_depth: u64,
    },
    /// The job reached a cancelled terminal state.
    JobCancelled {
        /// Service-assigned job id.
        job: u64,
    },
    /// The job completed successfully.
    JobCompleted {
        /// Service-assigned job id.
        job: u64,
        /// Iterations the reconstruction ran.
        iterations: u64,
    },
    /// A rank's consistency-barrier checkpoint was made durable on disk and
    /// the epoch's manifest committed (atomic rename).
    CheckpointPersisted {
        /// Iteration the durable checkpoint covers (first not-yet-run).
        iteration: u64,
        /// The checkpoint store's monotonic epoch sequence number.
        seq: u64,
        /// Size of this rank's checkpoint file in bytes.
        bytes: u64,
    },
    /// A rank restored its state from an on-disk checkpoint epoch at process
    /// resume.
    CheckpointRestored {
        /// Iteration the restored checkpoint covers.
        iteration: u64,
        /// The checkpoint store epoch the state came from.
        seq: u64,
    },
    /// The job service spliced newly ingested scan positions into the
    /// job's dataset at an iteration boundary.
    ScanIngested {
        /// Service-assigned job id.
        job: u64,
        /// Scan positions added by this splice.
        positions: u64,
        /// Total scan positions in the dataset after the splice.
        total: u64,
    },
}

impl TelemetryEvent {
    /// The event's stable schema name (the JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::CommSend { .. } => "comm_send",
            TelemetryEvent::CommRecv { .. } => "comm_recv",
            TelemetryEvent::CommRetransmit { .. } => "comm_retransmit",
            TelemetryEvent::CommAck { .. } => "comm_ack",
            TelemetryEvent::CommDrop { .. } => "comm_drop",
            TelemetryEvent::HeartbeatSent { .. } => "heartbeat_sent",
            TelemetryEvent::HeartbeatObserved { .. } => "heartbeat_observed",
            TelemetryEvent::BarrierWait { .. } => "barrier_wait",
            TelemetryEvent::IterationBegin { .. } => "iteration_begin",
            TelemetryEvent::IterationEnd { .. } => "iteration_end",
            TelemetryEvent::Checkpoint { .. } => "checkpoint",
            TelemetryEvent::RankDead { .. } => "rank_dead",
            TelemetryEvent::RankSuspected { .. } => "rank_suspected",
            TelemetryEvent::SparePromoted { .. } => "spare_promoted",
            TelemetryEvent::JobSubmitted { .. } => "job_submitted",
            TelemetryEvent::JobAdmitted { .. } => "job_admitted",
            TelemetryEvent::JobCancelled { .. } => "job_cancelled",
            TelemetryEvent::JobCompleted { .. } => "job_completed",
            TelemetryEvent::CheckpointPersisted { .. } => "checkpoint_persisted",
            TelemetryEvent::CheckpointRestored { .. } => "checkpoint_restored",
            TelemetryEvent::ScanIngested { .. } => "scan_ingested",
        }
    }
}

/// One stamped telemetry event: what happened, on which rank's stream, in
/// which order, at which simulated time.
///
/// `sim_ns` is the rank's **simulated** clock — analytic communication
/// nanoseconds plus modeled compute nanoseconds — never wall time, so two
/// identical seeded runs stamp identical times. `seq` is dense per rank and
/// orders events within a stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TelemetryRecord {
    /// The stream the event belongs to (slot for comm/iteration events; see
    /// the module docs for the field-space conventions).
    pub rank: u64,
    /// Dense per-rank sequence number (0, 1, 2, …).
    pub seq: u64,
    /// Simulated nanoseconds on the rank's clock when the event was
    /// recorded.
    pub sim_ns: u64,
    /// Job id stamp for multi-job trace files (0 when unset).
    pub job: u64,
    /// The event itself.
    pub event: TelemetryEvent,
}
