//! JSONL encoding, decoding, and schema validation for telemetry records.
//!
//! The build environment is offline, so this is a deliberately small
//! hand-rolled codec for the one shape we emit: a flat JSON object per line,
//! string values without escapes, integer and floating-point numbers. The
//! emitter writes fields in a fixed order (`rank`, `seq`, `sim_ns`, `job`,
//! `kind`, then the event's own fields in declaration order), which is what
//! makes two identical seeded runs produce byte-identical trace files.

use crate::event::{TelemetryEvent, TelemetryRecord};
use std::fmt::Write as _;

/// Appends one record as a JSON line (including the trailing newline).
///
/// Costs no allocation beyond growing `out`; flush paths reuse one buffer.
pub fn emit_record(record: &TelemetryRecord, out: &mut String) {
    let _ = write!(
        out,
        "{{\"rank\":{},\"seq\":{},\"sim_ns\":{},\"job\":{},\"kind\":\"{}\"",
        record.rank,
        record.seq,
        record.sim_ns,
        record.job,
        record.event.kind()
    );
    match record.event {
        TelemetryEvent::CommSend {
            to,
            tag,
            bytes,
            corr,
        } => {
            let _ = write!(
                out,
                ",\"to\":{to},\"tag\":{tag},\"bytes\":{bytes},\"corr\":{corr}"
            );
        }
        TelemetryEvent::CommDrop { to, tag, bytes }
        | TelemetryEvent::CommRetransmit { to, tag, bytes } => {
            let _ = write!(out, ",\"to\":{to},\"tag\":{tag},\"bytes\":{bytes}");
        }
        TelemetryEvent::CommRecv {
            from,
            tag,
            bytes,
            corr,
        } => {
            let _ = write!(
                out,
                ",\"from\":{from},\"tag\":{tag},\"bytes\":{bytes},\"corr\":{corr}"
            );
        }
        TelemetryEvent::CommAck { peer, tag } => {
            let _ = write!(out, ",\"peer\":{peer},\"tag\":{tag}");
        }
        TelemetryEvent::HeartbeatSent { to, iteration } => {
            let _ = write!(out, ",\"to\":{to},\"iteration\":{iteration}");
        }
        TelemetryEvent::HeartbeatObserved { from, iteration } => {
            let _ = write!(out, ",\"from\":{from},\"iteration\":{iteration}");
        }
        TelemetryEvent::BarrierWait { iteration } | TelemetryEvent::Checkpoint { iteration } => {
            let _ = write!(out, ",\"iteration\":{iteration}");
        }
        TelemetryEvent::IterationBegin { iteration, attempt } => {
            let _ = write!(out, ",\"iteration\":{iteration},\"attempt\":{attempt}");
        }
        TelemetryEvent::IterationEnd {
            iteration,
            attempt,
            cost,
            compute_ns,
            comm_ns,
        } => {
            let _ = write!(
                out,
                ",\"iteration\":{iteration},\"attempt\":{attempt},\"cost\":{cost},\
                 \"compute_ns\":{compute_ns},\"comm_ns\":{comm_ns}"
            );
        }
        TelemetryEvent::RankDead { node } => {
            let _ = write!(out, ",\"node\":{node}");
        }
        TelemetryEvent::RankSuspected { node, iteration } => {
            let _ = write!(out, ",\"node\":{node},\"iteration\":{iteration}");
        }
        TelemetryEvent::SparePromoted { slot, node } => {
            let _ = write!(out, ",\"slot\":{slot},\"node\":{node}");
        }
        TelemetryEvent::JobSubmitted {
            job,
            priority,
            slots,
        } => {
            let _ = write!(
                out,
                ",\"job_id\":{job},\"priority\":{priority},\"slots\":{slots}"
            );
        }
        TelemetryEvent::JobAdmitted { job, queue_depth } => {
            let _ = write!(out, ",\"job_id\":{job},\"queue_depth\":{queue_depth}");
        }
        TelemetryEvent::JobCancelled { job } => {
            let _ = write!(out, ",\"job_id\":{job}");
        }
        TelemetryEvent::JobCompleted { job, iterations } => {
            let _ = write!(out, ",\"job_id\":{job},\"iterations\":{iterations}");
        }
        TelemetryEvent::CheckpointPersisted {
            iteration,
            seq,
            bytes,
        } => {
            let _ = write!(
                out,
                ",\"iteration\":{iteration},\"epoch_seq\":{seq},\"bytes\":{bytes}"
            );
        }
        TelemetryEvent::CheckpointRestored { iteration, seq } => {
            let _ = write!(out, ",\"iteration\":{iteration},\"epoch_seq\":{seq}");
        }
        TelemetryEvent::ScanIngested {
            job,
            positions,
            total,
        } => {
            let _ = write!(
                out,
                ",\"job_id\":{job},\"positions\":{positions},\"total\":{total}"
            );
        }
    }
    out.push_str("}\n");
}

/// One record rendered as a standalone JSON line (convenience; flush paths
/// use [`emit_record`] with a reused buffer instead).
pub fn record_to_line(record: &TelemetryRecord) -> String {
    let mut out = String::with_capacity(160);
    emit_record(record, &mut out);
    out
}

/// Why a trace line failed to parse or validate.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// The line is not a flat JSON object of the supported shape.
    Malformed {
        /// Human-readable description of the first problem found.
        detail: String,
    },
    /// A required field is absent or has the wrong type.
    MissingField {
        /// The absent field.
        field: &'static str,
        /// The record kind that requires it (empty for envelope fields).
        kind: String,
    },
    /// The `kind` field names no known event.
    UnknownKind {
        /// The offending kind string.
        kind: String,
    },
    /// Per-rank stream ordering was violated (sequence not increasing, or
    /// simulated time moving backwards).
    StreamOrder {
        /// The rank whose stream is inconsistent.
        rank: u64,
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { detail } => write!(f, "malformed trace line: {detail}"),
            ParseError::MissingField { field, kind } if kind.is_empty() => {
                write!(f, "missing field `{field}`")
            }
            ParseError::MissingField { field, kind } => {
                write!(f, "missing field `{field}` for kind `{kind}`")
            }
            ParseError::UnknownKind { kind } => write!(f, "unknown event kind `{kind}`"),
            ParseError::StreamOrder { rank, detail } => {
                write!(f, "rank {rank} stream order violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A decoded scalar JSON value.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    /// Any JSON number. Integers up to 2^53 round-trip exactly through f64;
    /// our emitters stay far below that for every integer field.
    Num(f64),
    /// A string without escapes.
    Str(String),
}

fn malformed(detail: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        detail: detail.into(),
    }
}

/// Parses one flat JSON object line into `(key, value)` pairs.
fn parse_object(line: &str) -> Result<Vec<(String, JsonValue)>, ParseError> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| malformed("not a JSON object"))?;
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        // Key.
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| malformed("expected a quoted key"))?;
        let end = rest
            .find('"')
            .ok_or_else(|| malformed("unterminated key"))?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| malformed("expected `:` after key"))?
            .trim_start();
        // Value: string or number.
        let value = if let Some(after) = rest.strip_prefix('"') {
            let end = after
                .find('"')
                .ok_or_else(|| malformed("unterminated string value"))?;
            if after[..end].contains('\\') {
                return Err(malformed("escape sequences are not supported"));
            }
            let value = JsonValue::Str(after[..end].to_string());
            rest = after[end + 1..].trim_start();
            value
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len()).min(rest.len());
            let token = rest[..end].trim();
            let number: f64 = token
                .parse()
                .map_err(|_| malformed(format!("invalid number `{token}`")))?;
            rest = rest[end..].trim_start();
            JsonValue::Num(number)
        };
        fields.push((key, value));
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
            if rest.is_empty() {
                return Err(malformed("trailing comma"));
            }
        } else if !rest.is_empty() {
            return Err(malformed("expected `,` between fields"));
        }
    }
    Ok(fields)
}

fn get_num(
    fields: &[(String, JsonValue)],
    field: &'static str,
    kind: &str,
) -> Result<f64, ParseError> {
    fields
        .iter()
        .find(|(k, _)| k == field)
        .and_then(|(_, v)| match v {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Str(_) => None,
        })
        .ok_or(ParseError::MissingField {
            field,
            kind: kind.to_string(),
        })
}

fn get_u64(
    fields: &[(String, JsonValue)],
    field: &'static str,
    kind: &str,
) -> Result<u64, ParseError> {
    Ok(get_num(fields, field, kind)? as u64)
}

fn get_i64(
    fields: &[(String, JsonValue)],
    field: &'static str,
    kind: &str,
) -> Result<i64, ParseError> {
    Ok(get_num(fields, field, kind)? as i64)
}

/// Parses one JSONL line back into a [`TelemetryRecord`].
pub fn parse_record(line: &str) -> Result<TelemetryRecord, ParseError> {
    let fields = parse_object(line)?;
    let rank = get_u64(&fields, "rank", "")?;
    let seq = get_u64(&fields, "seq", "")?;
    let sim_ns = get_u64(&fields, "sim_ns", "")?;
    let job = get_u64(&fields, "job", "")?;
    let kind = fields
        .iter()
        .find(|(k, _)| k == "kind")
        .and_then(|(_, v)| match v {
            JsonValue::Str(s) => Some(s.clone()),
            JsonValue::Num(_) => None,
        })
        .ok_or(ParseError::MissingField {
            field: "kind",
            kind: String::new(),
        })?;
    let event = match kind.as_str() {
        "comm_send" => TelemetryEvent::CommSend {
            to: get_u64(&fields, "to", &kind)?,
            tag: get_u64(&fields, "tag", &kind)?,
            bytes: get_u64(&fields, "bytes", &kind)?,
            corr: get_u64(&fields, "corr", &kind)?,
        },
        "comm_recv" => TelemetryEvent::CommRecv {
            from: get_u64(&fields, "from", &kind)?,
            tag: get_u64(&fields, "tag", &kind)?,
            bytes: get_u64(&fields, "bytes", &kind)?,
            corr: get_u64(&fields, "corr", &kind)?,
        },
        "comm_retransmit" => TelemetryEvent::CommRetransmit {
            to: get_u64(&fields, "to", &kind)?,
            tag: get_u64(&fields, "tag", &kind)?,
            bytes: get_u64(&fields, "bytes", &kind)?,
        },
        "comm_ack" => TelemetryEvent::CommAck {
            peer: get_u64(&fields, "peer", &kind)?,
            tag: get_u64(&fields, "tag", &kind)?,
        },
        "comm_drop" => TelemetryEvent::CommDrop {
            to: get_u64(&fields, "to", &kind)?,
            tag: get_u64(&fields, "tag", &kind)?,
            bytes: get_u64(&fields, "bytes", &kind)?,
        },
        "heartbeat_sent" => TelemetryEvent::HeartbeatSent {
            to: get_u64(&fields, "to", &kind)?,
            iteration: get_u64(&fields, "iteration", &kind)?,
        },
        "heartbeat_observed" => TelemetryEvent::HeartbeatObserved {
            from: get_u64(&fields, "from", &kind)?,
            iteration: get_u64(&fields, "iteration", &kind)?,
        },
        "barrier_wait" => TelemetryEvent::BarrierWait {
            iteration: get_u64(&fields, "iteration", &kind)?,
        },
        "iteration_begin" => TelemetryEvent::IterationBegin {
            iteration: get_u64(&fields, "iteration", &kind)?,
            attempt: get_u64(&fields, "attempt", &kind)?,
        },
        "iteration_end" => TelemetryEvent::IterationEnd {
            iteration: get_u64(&fields, "iteration", &kind)?,
            attempt: get_u64(&fields, "attempt", &kind)?,
            cost: get_num(&fields, "cost", &kind)?,
            compute_ns: get_u64(&fields, "compute_ns", &kind)?,
            comm_ns: get_u64(&fields, "comm_ns", &kind)?,
        },
        "checkpoint" => TelemetryEvent::Checkpoint {
            iteration: get_u64(&fields, "iteration", &kind)?,
        },
        "rank_dead" => TelemetryEvent::RankDead {
            node: get_u64(&fields, "node", &kind)?,
        },
        "rank_suspected" => TelemetryEvent::RankSuspected {
            node: get_u64(&fields, "node", &kind)?,
            iteration: get_u64(&fields, "iteration", &kind)?,
        },
        "spare_promoted" => TelemetryEvent::SparePromoted {
            slot: get_u64(&fields, "slot", &kind)?,
            node: get_u64(&fields, "node", &kind)?,
        },
        "job_submitted" => TelemetryEvent::JobSubmitted {
            job: get_u64(&fields, "job_id", &kind)?,
            priority: get_i64(&fields, "priority", &kind)?,
            slots: get_u64(&fields, "slots", &kind)?,
        },
        "job_admitted" => TelemetryEvent::JobAdmitted {
            job: get_u64(&fields, "job_id", &kind)?,
            queue_depth: get_u64(&fields, "queue_depth", &kind)?,
        },
        "job_cancelled" => TelemetryEvent::JobCancelled {
            job: get_u64(&fields, "job_id", &kind)?,
        },
        "job_completed" => TelemetryEvent::JobCompleted {
            job: get_u64(&fields, "job_id", &kind)?,
            iterations: get_u64(&fields, "iterations", &kind)?,
        },
        "checkpoint_persisted" => TelemetryEvent::CheckpointPersisted {
            iteration: get_u64(&fields, "iteration", &kind)?,
            seq: get_u64(&fields, "epoch_seq", &kind)?,
            bytes: get_u64(&fields, "bytes", &kind)?,
        },
        "checkpoint_restored" => TelemetryEvent::CheckpointRestored {
            iteration: get_u64(&fields, "iteration", &kind)?,
            seq: get_u64(&fields, "epoch_seq", &kind)?,
        },
        "scan_ingested" => TelemetryEvent::ScanIngested {
            job: get_u64(&fields, "job_id", &kind)?,
            positions: get_u64(&fields, "positions", &kind)?,
            total: get_u64(&fields, "total", &kind)?,
        },
        other => {
            return Err(ParseError::UnknownKind {
                kind: other.to_string(),
            })
        }
    };
    Ok(TelemetryRecord {
        rank,
        seq,
        sim_ns,
        job,
        event,
    })
}

/// Streaming schema validator: checks every line parses into a known event
/// and that each `(job, rank)` stream has strictly increasing sequence
/// numbers and non-decreasing simulated time.
///
/// Sequence *gaps* are tolerated — they are how a flight-recorder ring
/// overflow shows up in a durable log — but they are counted per stream so
/// callers can surface them loudly (see [`SchemaValidator::lost_records`]).
#[derive(Debug, Default)]
pub struct SchemaValidator {
    /// Per-`(job, rank)` last-seen `(seq, sim_ns)`.
    streams: std::collections::BTreeMap<(u64, u64), (u64, u64)>,
    /// Per-`(job, rank)` count of skipped sequence numbers.
    gaps: std::collections::BTreeMap<(u64, u64), u64>,
    /// Lines accepted so far.
    accepted: u64,
}

impl SchemaValidator {
    /// A fresh validator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total sequence numbers skipped across all streams: records the
    /// flight recorder evicted before they became durable. Zero for a
    /// healthy trace.
    pub fn lost_records(&self) -> u64 {
        self.gaps.values().sum()
    }

    /// Per-stream `((job, rank), missing)` gap counts, for streams with at
    /// least one skipped sequence number, in key order.
    pub fn lost_records_by_stream(&self) -> Vec<((u64, u64), u64)> {
        self.gaps.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Validates one line, updating per-stream state.
    pub fn check_line(&mut self, line: &str) -> Result<TelemetryRecord, ParseError> {
        let record = parse_record(line)?;
        let key = (record.job, record.rank);
        let expected = match self.streams.get(&key) {
            Some(&(last_seq, last_sim)) => {
                if record.seq <= last_seq {
                    return Err(ParseError::StreamOrder {
                        rank: record.rank,
                        detail: format!("seq {} after seq {last_seq}", record.seq),
                    });
                }
                if record.sim_ns < last_sim {
                    return Err(ParseError::StreamOrder {
                        rank: record.rank,
                        detail: format!("sim_ns {} after sim_ns {last_sim}", record.sim_ns),
                    });
                }
                last_seq + 1
            }
            None => 0,
        };
        if record.seq > expected {
            *self.gaps.entry(key).or_insert(0) += record.seq - expected;
        }
        self.streams.insert(key, (record.seq, record.sim_ns));
        self.accepted += 1;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: TelemetryEvent) {
        let record = TelemetryRecord {
            rank: 3,
            seq: 17,
            sim_ns: 123_456,
            job: 9,
            event,
        };
        let line = record_to_line(&record);
        let parsed = parse_record(&line).expect("emitted line must parse");
        assert_eq!(parsed, record, "round-trip mismatch for {line}");
    }

    #[test]
    fn every_event_kind_round_trips() {
        roundtrip(TelemetryEvent::CommSend {
            to: 1,
            tag: 0x20,
            bytes: 4096,
            corr: (3 << 32) | 17,
        });
        roundtrip(TelemetryEvent::CommRecv {
            from: 2,
            tag: 7,
            bytes: 8,
            corr: (2 << 32) | 5,
        });
        roundtrip(TelemetryEvent::CommRetransmit {
            to: 0,
            tag: 7,
            bytes: 64,
        });
        roundtrip(TelemetryEvent::CommAck { peer: 1, tag: 7 });
        roundtrip(TelemetryEvent::CommDrop {
            to: 1,
            tag: 7,
            bytes: 64,
        });
        roundtrip(TelemetryEvent::HeartbeatSent {
            to: 1,
            iteration: 4,
        });
        roundtrip(TelemetryEvent::HeartbeatObserved {
            from: 0,
            iteration: 4,
        });
        roundtrip(TelemetryEvent::BarrierWait { iteration: 4 });
        roundtrip(TelemetryEvent::IterationBegin {
            iteration: 4,
            attempt: 1,
        });
        roundtrip(TelemetryEvent::IterationEnd {
            iteration: 4,
            attempt: 1,
            cost: 0.125,
            compute_ns: 10,
            comm_ns: 20,
        });
        roundtrip(TelemetryEvent::IterationEnd {
            iteration: 5,
            attempt: 0,
            cost: 1.0 / 3.0, // exercises shortest-round-trip float formatting
            compute_ns: 0,
            comm_ns: 0,
        });
        roundtrip(TelemetryEvent::Checkpoint { iteration: 4 });
        roundtrip(TelemetryEvent::RankDead { node: 5 });
        roundtrip(TelemetryEvent::RankSuspected {
            node: 5,
            iteration: 2,
        });
        roundtrip(TelemetryEvent::SparePromoted { slot: 1, node: 6 });
        roundtrip(TelemetryEvent::JobSubmitted {
            job: 42,
            priority: -2,
            slots: 4,
        });
        roundtrip(TelemetryEvent::JobAdmitted {
            job: 42,
            queue_depth: 3,
        });
        roundtrip(TelemetryEvent::JobCancelled { job: 42 });
        roundtrip(TelemetryEvent::JobCompleted {
            job: 42,
            iterations: 8,
        });
        roundtrip(TelemetryEvent::CheckpointPersisted {
            iteration: 4,
            seq: 9,
            bytes: 4096,
        });
        roundtrip(TelemetryEvent::CheckpointRestored {
            iteration: 4,
            seq: 9,
        });
        roundtrip(TelemetryEvent::ScanIngested {
            job: 42,
            positions: 8,
            total: 16,
        });
    }

    #[test]
    fn validator_rejects_unknown_kinds_and_bad_order() {
        let mut validator = SchemaValidator::new();
        let good = "{\"rank\":0,\"seq\":0,\"sim_ns\":5,\"job\":0,\"kind\":\"barrier_wait\",\"iteration\":0}";
        validator.check_line(good).expect("valid line");
        let unknown =
            "{\"rank\":0,\"seq\":1,\"sim_ns\":6,\"job\":0,\"kind\":\"mystery\",\"iteration\":0}";
        assert!(matches!(
            validator.check_line(unknown),
            Err(ParseError::UnknownKind { .. })
        ));
        let stale = "{\"rank\":0,\"seq\":0,\"sim_ns\":7,\"job\":0,\"kind\":\"barrier_wait\",\"iteration\":1}";
        assert!(matches!(
            validator.check_line(stale),
            Err(ParseError::StreamOrder { .. })
        ));
        let backwards_time =
            "{\"rank\":0,\"seq\":2,\"sim_ns\":1,\"job\":0,\"kind\":\"barrier_wait\",\"iteration\":2}";
        assert!(matches!(
            validator.check_line(backwards_time),
            Err(ParseError::StreamOrder { .. })
        ));
        assert_eq!(validator.accepted(), 1);
    }

    #[test]
    fn validator_counts_sequence_gaps_as_lost_records() {
        let mut validator = SchemaValidator::new();
        let line = |seq: u64, sim: u64| {
            format!(
                "{{\"rank\":0,\"seq\":{seq},\"sim_ns\":{sim},\"job\":0,\
                 \"kind\":\"barrier_wait\",\"iteration\":0}}"
            )
        };
        // Seqs 0, 3, 4, 9: gaps of 2 (1-2) and 4 (5-8).
        for (seq, sim) in [(0, 1), (3, 2), (4, 3), (9, 4)] {
            validator.check_line(&line(seq, sim)).expect("valid line");
        }
        // A second stream starting at seq 5: its whole head was evicted.
        let other = "{\"rank\":1,\"seq\":5,\"sim_ns\":0,\"job\":0,\"kind\":\"barrier_wait\",\"iteration\":0}";
        validator.check_line(other).expect("valid line");
        assert_eq!(validator.lost_records(), 6 + 5);
        assert_eq!(
            validator.lost_records_by_stream(),
            vec![((0, 0), 6), ((0, 1), 5)]
        );
    }

    #[test]
    fn missing_fields_are_reported() {
        let line = "{\"rank\":0,\"seq\":0,\"sim_ns\":0,\"job\":0,\"kind\":\"comm_send\",\"to\":1}";
        assert_eq!(
            parse_record(line),
            Err(ParseError::MissingField {
                field: "tag",
                kind: "comm_send".into()
            })
        );
    }

    #[test]
    fn truncated_lines_are_malformed_not_panics() {
        for line in [
            "",
            "{",
            "{\"rank\":0",
            "{\"rank\":0,\"seq\":",
            "{\"rank\":0,\"kind\":\"comm_se",
        ] {
            assert!(matches!(
                parse_record(line),
                Err(ParseError::Malformed { .. }) | Err(ParseError::MissingField { .. })
            ));
        }
    }
}
