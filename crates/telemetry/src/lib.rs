//! Deterministic telemetry for the simulated ptychography cluster.
//!
//! Observability in this workspace has one unusual hard requirement,
//! inherited from the reproduction's bit-identity pins: **two identical
//! seeded runs must emit bit-identical telemetry**. That rules wall clocks
//! out entirely. Every event is stamped with the rank's *simulated* clock —
//! the analytic communication time the performance model charges senders,
//! plus the modeled compute time of the solver kernel — and a dense per-rank
//! sequence number, so a trace is a pure function of the run's inputs.
//!
//! The crate provides four pieces, layered bottom-up:
//!
//! 1. [`TelemetryEvent`]/[`TelemetryRecord`] ([`event`]): the structured
//!    event model, a fixed-size `Copy` enum covering comms (send, recv,
//!    retransmit, ack, drop), heartbeats, barriers, iterations, checkpoints,
//!    membership (death, suspicion, spare promotion) and job lifecycle.
//! 2. [`Telemetry`]/[`RankSink`] ([`recorder`]): the flight recorder —
//!    preallocated per-rank ring buffers with allocation-free recording
//!    (the workspace's zero-allocation steady-state gate stays green with
//!    recording enabled) and a durable JSONL sink flushed at iteration
//!    consistency barriers, so a killed process leaves a prefix-consistent
//!    log.
//! 3. [`MetricsRegistry`] ([`metrics`]): counters, gauges, and log2
//!    histograms with Prometheus-style text and JSON snapshots, assembled on
//!    demand from producer-side counters.
//! 4. [`json`]/[`trace`]: the JSONL codec (fixed field order, hand-rolled
//!    offline-friendly parser, streaming schema validation) and post-hoc
//!    analysis (per-rank timelines, Fig. 7b-style compute/wait/communication
//!    breakdowns) behind the `trace_dump` binary.
//! 5. [`analysis`]: causal trace analysis — span graphs paired from
//!    send/recv correlation ids, exact critical-path attribution
//!    (compute / comm / barrier-wait / retransmit / heal per rank),
//!    straggler z-scoring, anomaly scanning, and structural trace diffing
//!    for resumed-vs-clean comparisons.
//!
//! # Quick start
//!
//! ```
//! use ptycho_telemetry::{Telemetry, TelemetryConfig, TelemetryEvent};
//!
//! let telemetry = Telemetry::new();
//! let sink = telemetry.sink(0);
//! sink.set_comm_ns(1_500);
//! sink.record(TelemetryEvent::IterationBegin { iteration: 0, attempt: 0 });
//! let records = telemetry.records(0);
//! assert_eq!(records[0].sim_ns, 1_500);
//! assert_eq!(records[0].seq, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use analysis::{
    anomaly_scan, critical_path, diff_jobs, span_graph, straggler_report, AnomalyConfig,
    AnomalyScan, CriticalPath, RankAttribution, SpanGraph, StragglerReport, TraceDiff,
};
pub use event::{TelemetryEvent, TelemetryRecord};
pub use json::{ParseError, SchemaValidator};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{RankSink, Telemetry, TelemetryConfig};
pub use trace::{RankBreakdown, StreamSummary, TraceSummary};
