//! Causal trace analysis: span graphs, critical-path attribution, straggler
//! detection, anomaly scanning, and trace diffing.
//!
//! Everything in this module is a pure function of the parsed
//! [`TelemetryRecord`] list, and every collection is built in canonical
//! `(rank, seq)` order — so two identical seeded runs produce span graphs
//! whose `Debug` renderings are byte-identical, on either backend.
//!
//! # Span pairing
//!
//! Message spans pair `comm_send` records with the `comm_recv` records they
//! caused. The pairing key is `(tag, corr)`: the wire tag (which, under the
//! reliable layer, already encodes the stream's epoch and sequence number)
//! plus the correlation id the sending backend stamped into the envelope.
//! The correlation id carries the sender's slot in its high 32 bits and a
//! per-sender transport-send counter in the low 32, so a key identifies one
//! logical transport send globally. Fault-injected duplicates deliver the
//! same envelope twice: both receives carry the same key and both pair to
//! the one send (FIFO ordinal matching, clamped to the last send of the
//! key).
//!
//! # Attribution
//!
//! [`critical_path`] attributes each rank's end-to-end simulated time by
//! classifying every inter-record `sim_ns` delta by the kind of the record
//! that *closes* it: an `iteration_end` delta is split into its modeled
//! compute jump (the cumulative `compute_ns` difference) plus an analytic
//! communication remainder; `comm_retransmit` deltas are recovery overhead;
//! membership/restore events (`spare_promoted`, `checkpoint_restored`,
//! `rank_dead`, `rank_suspected`) are healing; every other delta is
//! communication. The residual between a rank's last stamp and the job's
//! end-to-end time (the maximum over ranks) is barrier wait. Segments are
//! integer nanoseconds carved from the same clock, so they sum *exactly* to
//! the end-to-end time on every rank — an invariant the strict CLI mode
//! re-verifies on every trace.

use crate::event::{TelemetryEvent, TelemetryRecord};
use std::collections::BTreeMap;

/// One paired (or half-open) message span: a transport send and the
/// receive(s) it caused.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MessageSpan {
    /// Sending rank (stream id of the `comm_send` record).
    pub from: u64,
    /// Destination slot named by the send.
    pub to: u64,
    /// Wire tag.
    pub tag: u64,
    /// Correlation id (sender slot << 32 | per-sender counter).
    pub corr: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Sequence number of the send record on its stream.
    pub send_seq: u64,
    /// Simulated time of the send.
    pub send_sim_ns: u64,
    /// Stream and sequence number of the first paired receive, if any.
    pub recv: Option<(u64, u64)>,
    /// Simulated time of the first paired receive.
    pub recv_sim_ns: Option<u64>,
    /// How many receives paired to this send (>1 under duplicate faults).
    pub deliveries: u64,
}

/// One iteration span on one rank: `iteration_begin` paired with the
/// matching `iteration_end`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationSpan {
    /// The rank (stream id).
    pub rank: u64,
    /// Zero-based iteration index.
    pub iteration: u64,
    /// Recovery attempt the iteration ran under.
    pub attempt: u64,
    /// Simulated time at `iteration_begin`.
    pub begin_sim_ns: u64,
    /// Simulated time at `iteration_end` (`u64::MAX` sentinel never occurs;
    /// unmatched begins produce no span).
    pub end_sim_ns: u64,
    /// The rank's contribution to the iteration cost.
    pub cost: f64,
    /// Cumulative modeled compute nanoseconds at the end of the iteration.
    pub compute_ns: u64,
    /// Cumulative analytic communication nanoseconds at the end.
    pub comm_ns: u64,
}

/// A happens-before edge between two records, named `(rank, seq) →
/// (rank, seq)`: the send happens before the receive it caused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalEdge {
    /// The earlier record.
    pub from: (u64, u64),
    /// The later record.
    pub to: (u64, u64),
}

/// One consistency barrier: every `barrier_wait` record of one iteration.
/// Everything before any participant's barrier entry happens before
/// everything after every participant's barrier exit, which orders the
/// groups totally by iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierGroup {
    /// The iteration whose barrier this is.
    pub iteration: u64,
    /// `(rank, seq)` of each participant's `barrier_wait` record, in rank
    /// order.
    pub participants: Vec<(u64, u64)>,
}

/// The per-job causal graph: message spans, iteration spans, send→recv
/// happens-before edges, and barrier ordering.
///
/// Deterministic by construction: every collection is ordered by
/// `(rank, seq)` (or by iteration for barriers), so identical seeded runs
/// yield graphs whose `Debug` renderings are byte-identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanGraph {
    /// The job the graph describes.
    pub job: u64,
    /// Message spans in send `(rank, seq)` order.
    pub message_spans: Vec<MessageSpan>,
    /// Iteration spans in `(rank, seq-of-begin)` order.
    pub iteration_spans: Vec<IterationSpan>,
    /// Send→recv happens-before edges, one per paired receive (duplicates
    /// included), in receive `(rank, seq)` order.
    pub happens_before: Vec<CausalEdge>,
    /// Barrier groups in iteration order.
    pub barriers: Vec<BarrierGroup>,
    /// Receives whose `(tag, corr)` key matched no recorded send — nonzero
    /// only when the sender's ring evicted the send before it was flushed.
    pub unpaired_recvs: u64,
}

/// Builds the span graph for `job` from parsed records (any order; the
/// builder canonicalises to `(rank, seq)`).
pub fn span_graph(records: &[TelemetryRecord], job: u64) -> SpanGraph {
    let mut recs: Vec<&TelemetryRecord> = records.iter().filter(|r| r.job == job).collect();
    recs.sort_by_key(|r| (r.rank, r.seq));

    let mut graph = SpanGraph {
        job,
        ..SpanGraph::default()
    };
    // (tag, corr) → indices into message_spans, in send order.
    let mut send_index: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    for record in &recs {
        if let TelemetryEvent::CommSend {
            to,
            tag,
            bytes,
            corr,
        } = record.event
        {
            send_index
                .entry((tag, corr))
                .or_default()
                .push(graph.message_spans.len());
            graph.message_spans.push(MessageSpan {
                from: record.rank,
                to,
                tag,
                corr,
                bytes,
                send_seq: record.seq,
                send_sim_ns: record.sim_ns,
                recv: None,
                recv_sim_ns: None,
                deliveries: 0,
            });
        }
    }
    // Pair receives FIFO within each key; duplicates clamp to the last send.
    let mut recv_ordinal: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for record in &recs {
        if let TelemetryEvent::CommRecv { tag, corr, .. } = record.event {
            let Some(sends) = send_index.get(&(tag, corr)) else {
                graph.unpaired_recvs += 1;
                continue;
            };
            let ordinal = recv_ordinal.entry((tag, corr)).or_insert(0);
            let span_idx = sends[(*ordinal).min(sends.len() - 1)];
            *ordinal += 1;
            let span = &mut graph.message_spans[span_idx];
            span.deliveries += 1;
            if span.recv.is_none() {
                span.recv = Some((record.rank, record.seq));
                span.recv_sim_ns = Some(record.sim_ns);
            }
            graph.happens_before.push(CausalEdge {
                from: (span.from, span.send_seq),
                to: (record.rank, record.seq),
            });
        }
    }
    // Iteration spans: a begin is closed by the next matching end on the
    // same stream.
    let mut open: BTreeMap<(u64, u64, u64), (u64, usize)> = BTreeMap::new();
    for record in &recs {
        match record.event {
            TelemetryEvent::IterationBegin { iteration, attempt } => {
                open.insert(
                    (record.rank, iteration, attempt),
                    (record.sim_ns, graph.iteration_spans.len()),
                );
                graph.iteration_spans.push(IterationSpan {
                    rank: record.rank,
                    iteration,
                    attempt,
                    begin_sim_ns: record.sim_ns,
                    end_sim_ns: record.sim_ns,
                    cost: f64::NAN,
                    compute_ns: 0,
                    comm_ns: 0,
                });
            }
            TelemetryEvent::IterationEnd {
                iteration,
                attempt,
                cost,
                compute_ns,
                comm_ns,
            } => {
                if let Some((_, idx)) = open.remove(&(record.rank, iteration, attempt)) {
                    let span = &mut graph.iteration_spans[idx];
                    span.end_sim_ns = record.sim_ns;
                    span.cost = cost;
                    span.compute_ns = compute_ns;
                    span.comm_ns = comm_ns;
                }
            }
            _ => {}
        }
    }
    // Drop begins that never closed (a killed rank's partial iteration).
    graph.iteration_spans.retain(|s| !s.cost.is_nan());
    // Barrier groups by iteration.
    let mut barriers: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    for record in &recs {
        if let TelemetryEvent::BarrierWait { iteration } = record.event {
            barriers
                .entry(iteration)
                .or_default()
                .push((record.rank, record.seq));
        }
    }
    graph.barriers = barriers
        .into_iter()
        .map(|(iteration, participants)| BarrierGroup {
            iteration,
            participants,
        })
        .collect();
    graph
}

/// Where one rank's end-to-end simulated time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankAttribution {
    /// The rank (stream id).
    pub rank: u64,
    /// Modeled compute nanoseconds.
    pub compute_ns: u64,
    /// Analytic communication nanoseconds (sends, acks, halo traffic).
    pub comm_ns: u64,
    /// Time closed by retransmit records: recovery overhead.
    pub retransmit_ns: u64,
    /// Time closed by membership/restore records: healing overhead.
    pub heal_ns: u64,
    /// Residual idle time waiting for the job's busiest rank.
    pub barrier_wait_ns: u64,
}

impl RankAttribution {
    /// The segments' sum — always exactly the job's end-to-end time.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.comm_ns + self.retransmit_ns + self.heal_ns + self.barrier_wait_ns
    }
}

/// The critical-path attribution for one job.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// The job attributed.
    pub job: u64,
    /// End-to-end simulated time: the maximum final stamp over every rank.
    pub end_to_end_ns: u64,
    /// The rank whose stream reaches `end_to_end_ns` (lowest rank on ties)
    /// — the rank every barrier wait in the job is waiting for.
    pub critical_rank: u64,
    /// Per-rank attribution, in rank order. Each row's segments sum exactly
    /// to `end_to_end_ns`.
    pub ranks: Vec<RankAttribution>,
}

/// Attributes `job`'s end-to-end simulated time per rank (see the module
/// docs for the delta-classification algorithm).
pub fn critical_path(records: &[TelemetryRecord], job: u64) -> CriticalPath {
    let mut recs: Vec<&TelemetryRecord> = records.iter().filter(|r| r.job == job).collect();
    recs.sort_by_key(|r| (r.rank, r.seq));

    let mut rows: Vec<RankAttribution> = Vec::new();
    let mut ends: Vec<u64> = Vec::new();
    let mut i = 0;
    while i < recs.len() {
        let rank = recs[i].rank;
        let mut row = RankAttribution {
            rank,
            ..RankAttribution::default()
        };
        let mut prev_sim = 0u64;
        let mut prev_compute = 0u64;
        while i < recs.len() && recs[i].rank == rank {
            let record = recs[i];
            let delta = record.sim_ns.saturating_sub(prev_sim);
            match record.event {
                TelemetryEvent::IterationEnd { compute_ns, .. } => {
                    // The compute jump lands in one lump just before the
                    // end record; the remainder of the delta is the
                    // iteration's analytic communication.
                    let compute_delta = compute_ns.saturating_sub(prev_compute).min(delta);
                    prev_compute = prev_compute.max(compute_ns);
                    row.compute_ns += compute_delta;
                    row.comm_ns += delta - compute_delta;
                }
                TelemetryEvent::CommRetransmit { .. } => row.retransmit_ns += delta,
                TelemetryEvent::SparePromoted { .. }
                | TelemetryEvent::CheckpointRestored { .. }
                | TelemetryEvent::RankDead { .. }
                | TelemetryEvent::RankSuspected { .. } => row.heal_ns += delta,
                _ => row.comm_ns += delta,
            }
            prev_sim = prev_sim.max(record.sim_ns);
            i += 1;
        }
        ends.push(prev_sim);
        rows.push(row);
    }
    let end_to_end = ends.iter().copied().max().unwrap_or(0);
    let critical_rank = ends
        .iter()
        .position(|&e| e == end_to_end)
        .map(|idx| rows[idx].rank)
        .unwrap_or(0);
    for (row, end) in rows.iter_mut().zip(&ends) {
        row.barrier_wait_ns = end_to_end - end;
    }
    CriticalPath {
        job,
        end_to_end_ns: end_to_end,
        critical_rank,
        ranks: rows,
    }
}

/// One flagged rank in a [`StragglerReport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Straggler {
    /// The flagged rank.
    pub rank: u64,
    /// The rank's barrier-wait share of end-to-end time, in `[0, 1]`.
    pub wait_share: f64,
    /// How many standard deviations the share sits above the job mean.
    pub z_score: f64,
}

/// Ranks whose barrier-wait share is anomalously high: they idle waiting
/// for a straggling peer, so a cluster of flagged ranks points at the
/// (unflagged) critical rank as the job's straggler.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StragglerReport {
    /// The job examined.
    pub job: u64,
    /// The z threshold the report was built with.
    pub z_threshold: f64,
    /// Mean barrier-wait share over the job's ranks.
    pub mean_wait_share: f64,
    /// Population standard deviation of the shares.
    pub std_wait_share: f64,
    /// Ranks whose share's z-score exceeds the threshold, in rank order.
    pub stragglers: Vec<Straggler>,
}

/// Z-scores of `values` against their own mean/population-std. All zeros
/// when the spread is zero (no value can be anomalous then). Shared by the
/// post-hoc report and the live health snapshot.
pub fn z_scores(values: &[f64]) -> Vec<f64> {
    let n = values.len() as f64;
    if values.is_empty() {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std == 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - mean) / std).collect()
}

/// Builds the straggler report from a critical-path attribution: flags
/// every rank whose barrier-wait share exceeds `z_threshold` standard
/// deviations above the job mean.
pub fn straggler_report(path: &CriticalPath, z_threshold: f64) -> StragglerReport {
    let total = path.end_to_end_ns.max(1) as f64;
    let shares: Vec<f64> = path
        .ranks
        .iter()
        .map(|r| r.barrier_wait_ns as f64 / total)
        .collect();
    let scores = z_scores(&shares);
    let n = shares.len().max(1) as f64;
    let mean = shares.iter().sum::<f64>() / n;
    let var = shares.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    StragglerReport {
        job: path.job,
        z_threshold,
        mean_wait_share: mean,
        std_wait_share: var.sqrt(),
        stragglers: path
            .ranks
            .iter()
            .zip(shares.iter().zip(&scores))
            .filter(|&(_, (_, &z))| z > z_threshold)
            .map(|(rank, (&share, &z))| Straggler {
                rank: rank.rank,
                wait_share: share,
                z_score: z,
            })
            .collect(),
    }
}

/// Tuning for [`anomaly_scan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnomalyConfig {
    /// Minimum retransmit count on one rank to call it a burst.
    pub retransmit_burst_threshold: u64,
    /// Minimum suspicion count against one node to call it a cluster.
    pub suspicion_cluster_threshold: u64,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            retransmit_burst_threshold: 3,
            suspicion_cluster_threshold: 2,
        }
    }
}

/// What the anomaly scan found for one job.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnomalyScan {
    /// The job scanned.
    pub job: u64,
    /// `(rank, retransmit_count)` for ranks at or above the burst
    /// threshold, in rank order.
    pub retransmit_bursts: Vec<(u64, u64)>,
    /// `(node, suspicion_count)` for nodes at or above the cluster
    /// threshold, in node order.
    pub suspicion_clusters: Vec<(u64, u64)>,
    /// `(rank, missing_records)` for streams with sequence gaps — records
    /// evicted from the flight recorder's ring before they became durable.
    pub lost_ring_records: Vec<(u64, u64)>,
}

impl AnomalyScan {
    /// True when nothing crossed a threshold.
    pub fn is_clean(&self) -> bool {
        self.retransmit_bursts.is_empty()
            && self.suspicion_clusters.is_empty()
            && self.lost_ring_records.is_empty()
    }
}

/// Scans `job` for retransmit bursts, heartbeat-suspicion clusters, and
/// lost-ring-record gaps.
pub fn anomaly_scan(records: &[TelemetryRecord], job: u64, config: &AnomalyConfig) -> AnomalyScan {
    let mut retransmits: BTreeMap<u64, u64> = BTreeMap::new();
    let mut suspicions: BTreeMap<u64, u64> = BTreeMap::new();
    // Per stream: (records seen, max seq).
    let mut streams: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for record in records.iter().filter(|r| r.job == job) {
        match record.event {
            TelemetryEvent::CommRetransmit { .. } => {
                *retransmits.entry(record.rank).or_insert(0) += 1;
            }
            TelemetryEvent::RankSuspected { node, .. } => {
                *suspicions.entry(node).or_insert(0) += 1;
            }
            _ => {}
        }
        let stream = streams.entry(record.rank).or_insert((0, 0));
        stream.0 += 1;
        stream.1 = stream.1.max(record.seq);
    }
    AnomalyScan {
        job,
        retransmit_bursts: retransmits
            .into_iter()
            .filter(|&(_, n)| n >= config.retransmit_burst_threshold)
            .collect(),
        suspicion_clusters: suspicions
            .into_iter()
            .filter(|&(_, n)| n >= config.suspicion_cluster_threshold)
            .collect(),
        lost_ring_records: streams
            .into_iter()
            .filter_map(|(rank, (seen, max_seq))| {
                let expected = max_seq + 1;
                (expected > seen).then(|| (rank, expected - seen))
            })
            .collect(),
    }
}

/// Where two runs' traces diverge, span by span.
///
/// Iteration spans are compared structurally — `(iteration, attempt, rank,
/// cost)` with the cost compared bit-exactly — deliberately excluding
/// simulated times and cumulative clocks, which legitimately differ between
/// a resumed run (whose clocks restart at the resume seam) and its
/// uninterrupted twin even though the numerics are bit-identical. Message
/// spans are compared as structural multisets. Two identical seeded runs
/// diff empty; a resumed run against its clean twin diverges exactly at the
/// resume seam, with the whole post-resume suffix matching.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceDiff {
    /// True when both span sets match completely.
    pub identical: bool,
    /// Iteration spans in run A / run B.
    pub iterations_a: usize,
    /// Iteration spans in run B.
    pub iterations_b: usize,
    /// Leading iteration spans (canonical order) identical in both runs.
    pub common_prefix: usize,
    /// Trailing iteration spans identical in both runs.
    pub common_suffix: usize,
    /// Human-readable description of the first diverging span, if any.
    pub first_divergence: Option<String>,
    /// Message spans present only in run A (structural multiset).
    pub messages_only_in_a: usize,
    /// Message spans present only in run B.
    pub messages_only_in_b: usize,
}

/// Structural identity of one iteration span (cost bit-exact, clocks
/// excluded — see [`TraceDiff`]).
fn iteration_key(span: &IterationSpan) -> (u64, u64, u64, u64) {
    (span.iteration, span.attempt, span.rank, span.cost.to_bits())
}

fn describe_key(key: &(u64, u64, u64, u64), side: &str) -> String {
    format!(
        "iteration {} attempt {} rank {} (cost bits {:#x}) present only in {side}",
        key.0, key.1, key.2, key.3
    )
}

/// Diffs `job_a` of run A against `job_b` of run B span-by-span.
pub fn diff_jobs(
    a: &[TelemetryRecord],
    job_a: u64,
    b: &[TelemetryRecord],
    job_b: u64,
) -> TraceDiff {
    let graph_a = span_graph(a, job_a);
    let graph_b = span_graph(b, job_b);

    let mut keys_a: Vec<(u64, u64, u64, u64)> =
        graph_a.iteration_spans.iter().map(iteration_key).collect();
    let mut keys_b: Vec<(u64, u64, u64, u64)> =
        graph_b.iteration_spans.iter().map(iteration_key).collect();
    keys_a.sort_unstable();
    keys_b.sort_unstable();

    let mut prefix = 0;
    while prefix < keys_a.len() && prefix < keys_b.len() && keys_a[prefix] == keys_b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < keys_a.len() - prefix
        && suffix < keys_b.len() - prefix
        && keys_a[keys_a.len() - 1 - suffix] == keys_b[keys_b.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let first_divergence = if keys_a.len() == keys_b.len() && prefix == keys_a.len() {
        None
    } else if prefix < keys_a.len() && prefix < keys_b.len() {
        Some(format!(
            "iteration span #{prefix}: A has iteration {} attempt {} rank {}, \
             B has iteration {} attempt {} rank {}",
            keys_a[prefix].0,
            keys_a[prefix].1,
            keys_a[prefix].2,
            keys_b[prefix].0,
            keys_b[prefix].1,
            keys_b[prefix].2,
        ))
    } else if prefix < keys_a.len() {
        Some(describe_key(&keys_a[prefix], "A"))
    } else {
        Some(describe_key(&keys_b[prefix], "B"))
    };

    // Message spans as a structural multiset.
    let message_key = |s: &MessageSpan| (s.from, s.to, s.tag, s.corr, s.bytes, s.recv.is_some());
    let mut counts: BTreeMap<(u64, u64, u64, u64, u64, bool), i64> = BTreeMap::new();
    for span in &graph_a.message_spans {
        *counts.entry(message_key(span)).or_insert(0) += 1;
    }
    for span in &graph_b.message_spans {
        *counts.entry(message_key(span)).or_insert(0) -= 1;
    }
    let messages_only_in_a: i64 = counts.values().filter(|&&n| n > 0).sum();
    let messages_only_in_b: i64 = -counts.values().filter(|&&n| n < 0).sum::<i64>();

    TraceDiff {
        identical: first_divergence.is_none() && messages_only_in_a == 0 && messages_only_in_b == 0,
        iterations_a: keys_a.len(),
        iterations_b: keys_b.len(),
        common_prefix: prefix,
        common_suffix: suffix,
        first_divergence,
        messages_only_in_a: messages_only_in_a as usize,
        messages_only_in_b: messages_only_in_b as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rank: u64, seq: u64, sim_ns: u64, event: TelemetryEvent) -> TelemetryRecord {
        TelemetryRecord {
            rank,
            seq,
            sim_ns,
            job: 0,
            event,
        }
    }

    fn send(rank: u64, seq: u64, sim_ns: u64, to: u64, tag: u64, corr: u64) -> TelemetryRecord {
        record(
            rank,
            seq,
            sim_ns,
            TelemetryEvent::CommSend {
                to,
                tag,
                bytes: 64,
                corr,
            },
        )
    }

    fn recv(rank: u64, seq: u64, sim_ns: u64, from: u64, tag: u64, corr: u64) -> TelemetryRecord {
        record(
            rank,
            seq,
            sim_ns,
            TelemetryEvent::CommRecv {
                from,
                tag,
                bytes: 64,
                corr,
            },
        )
    }

    fn iter_end(
        rank: u64,
        seq: u64,
        sim_ns: u64,
        iteration: u64,
        compute_ns: u64,
        comm_ns: u64,
    ) -> TelemetryRecord {
        record(
            rank,
            seq,
            sim_ns,
            TelemetryEvent::IterationEnd {
                iteration,
                attempt: 0,
                cost: 1.0,
                compute_ns,
                comm_ns,
            },
        )
    }

    #[test]
    fn sends_pair_with_receives_by_tag_and_corr() {
        let corr = 0u64; // rank 0's first send
        let records = vec![
            send(0, 0, 10, 1, 0x7, corr),
            recv(1, 0, 0, 0, 0x7, corr),
            // A second logical message on the same tag: distinct corr.
            send(0, 1, 20, 1, 0x7, 1),
            recv(1, 1, 0, 0, 0x7, 1),
        ];
        let graph = span_graph(&records, 0);
        assert_eq!(graph.message_spans.len(), 2);
        assert_eq!(graph.message_spans[0].recv, Some((1, 0)));
        assert_eq!(graph.message_spans[1].recv, Some((1, 1)));
        assert_eq!(graph.happens_before.len(), 2);
        assert_eq!(graph.unpaired_recvs, 0);
    }

    #[test]
    fn duplicate_deliveries_clamp_to_the_one_send() {
        let records = vec![
            send(0, 0, 10, 1, 0x7, 0),
            recv(1, 0, 0, 0, 0x7, 0),
            recv(1, 1, 0, 0, 0x7, 0), // fault-injected duplicate
        ];
        let graph = span_graph(&records, 0);
        assert_eq!(graph.message_spans.len(), 1);
        assert_eq!(graph.message_spans[0].deliveries, 2);
        assert_eq!(
            graph.message_spans[0].recv,
            Some((1, 0)),
            "the first delivery is the span's receive"
        );
        assert_eq!(graph.happens_before.len(), 2);
    }

    #[test]
    fn recv_without_a_send_is_counted_not_paired() {
        let records = vec![recv(1, 0, 0, 0, 0x7, 99)];
        let graph = span_graph(&records, 0);
        assert_eq!(graph.message_spans.len(), 0);
        assert_eq!(graph.unpaired_recvs, 1);
    }

    #[test]
    fn attribution_sums_exactly_to_end_to_end_time() {
        let records = vec![
            // Rank 0: send at 100 (comm), retransmit closing at 150,
            // iteration end at 400 with 200 compute.
            send(0, 0, 100, 1, 0x7, 0),
            record(
                0,
                1,
                150,
                TelemetryEvent::CommRetransmit {
                    to: 1,
                    tag: 0x7,
                    bytes: 64,
                },
            ),
            iter_end(0, 2, 400, 0, 200, 200),
            // Rank 1: spare promotion closing at 50, end at 90.
            record(1, 0, 50, TelemetryEvent::SparePromoted { slot: 1, node: 4 }),
            iter_end(1, 1, 90, 0, 30, 60),
        ];
        let path = critical_path(&records, 0);
        assert_eq!(path.end_to_end_ns, 400);
        assert_eq!(path.critical_rank, 0);
        for row in &path.ranks {
            assert_eq!(
                row.total_ns(),
                path.end_to_end_ns,
                "rank {} segments must sum exactly",
                row.rank
            );
        }
        let r0 = &path.ranks[0];
        assert_eq!(r0.comm_ns, 100 + 50);
        assert_eq!(r0.retransmit_ns, 50);
        assert_eq!(r0.compute_ns, 200);
        assert_eq!(r0.barrier_wait_ns, 0);
        let r1 = &path.ranks[1];
        assert_eq!(r1.heal_ns, 50);
        assert_eq!(r1.compute_ns, 30);
        assert_eq!(r1.comm_ns, 10);
        assert_eq!(r1.barrier_wait_ns, 310);
    }

    #[test]
    fn straggler_report_flags_high_wait_shares() {
        let path = CriticalPath {
            job: 0,
            end_to_end_ns: 1000,
            critical_rank: 0,
            ranks: vec![
                RankAttribution {
                    rank: 0,
                    compute_ns: 1000,
                    ..RankAttribution::default()
                },
                RankAttribution {
                    rank: 1,
                    compute_ns: 950,
                    barrier_wait_ns: 50,
                    ..RankAttribution::default()
                },
                RankAttribution {
                    rank: 2,
                    compute_ns: 950,
                    barrier_wait_ns: 50,
                    ..RankAttribution::default()
                },
                RankAttribution {
                    rank: 3,
                    compute_ns: 200,
                    barrier_wait_ns: 800,
                    ..RankAttribution::default()
                },
            ],
        };
        let report = straggler_report(&path, 1.0);
        assert_eq!(report.stragglers.len(), 1);
        assert_eq!(report.stragglers[0].rank, 3);
        assert!(report.stragglers[0].z_score > 1.0);

        // Uniform waits: no spread, nobody flagged.
        let uniform = CriticalPath {
            ranks: path
                .ranks
                .iter()
                .map(|r| RankAttribution {
                    barrier_wait_ns: 100,
                    ..*r
                })
                .collect(),
            ..path
        };
        assert!(straggler_report(&uniform, 1.0).stragglers.is_empty());
    }

    #[test]
    fn anomaly_scan_finds_bursts_clusters_and_gaps() {
        let mut records = Vec::new();
        for seq in 0..3 {
            records.push(record(
                0,
                seq,
                10 * (seq + 1),
                TelemetryEvent::CommRetransmit {
                    to: 1,
                    tag: 0x7,
                    bytes: 64,
                },
            ));
        }
        for (seq, iteration) in [(0, 1), (1, 2)] {
            records.push(record(
                1,
                seq,
                100,
                TelemetryEvent::RankSuspected { node: 3, iteration },
            ));
        }
        // Rank 2's stream has seqs {0, 5}: four records lost to the ring.
        records.push(record(
            2,
            0,
            1,
            TelemetryEvent::BarrierWait { iteration: 0 },
        ));
        records.push(record(
            2,
            5,
            9,
            TelemetryEvent::BarrierWait { iteration: 1 },
        ));
        let scan = anomaly_scan(&records, 0, &AnomalyConfig::default());
        assert_eq!(scan.retransmit_bursts, vec![(0, 3)]);
        assert_eq!(scan.suspicion_clusters, vec![(3, 2)]);
        assert_eq!(scan.lost_ring_records, vec![(2, 4)]);
        assert!(!scan.is_clean());
        assert!(anomaly_scan(&[], 0, &AnomalyConfig::default()).is_clean());
    }

    #[test]
    fn diff_is_empty_for_identical_records_and_localises_a_seam() {
        // `skip` leading iterations removed and seqs/clocks restarted: the
        // resumed-run shape.
        let run = |skip: u64| -> Vec<TelemetryRecord> {
            let mut records = Vec::new();
            for iteration in skip..4u64 {
                for rank in 0..2u64 {
                    let seq_base = (iteration - skip) * 2;
                    records.push(record(
                        rank,
                        seq_base,
                        100 * (iteration - skip + 1),
                        TelemetryEvent::IterationBegin {
                            iteration,
                            attempt: 0,
                        },
                    ));
                    records.push(iter_end(
                        rank,
                        seq_base + 1,
                        100 * (iteration - skip + 1) + 50,
                        iteration,
                        10,
                        10,
                    ));
                }
            }
            records
        };
        let clean = run(0);
        let same = run(0);
        let diff = diff_jobs(&clean, 0, &same, 0);
        assert!(diff.identical, "identical runs must diff empty: {diff:?}");
        assert_eq!(diff.common_prefix, 8);

        let resumed = run(2);
        let diff = diff_jobs(&clean, 0, &resumed, 0);
        assert!(!diff.identical);
        assert_eq!(diff.iterations_a, 8);
        assert_eq!(diff.iterations_b, 4);
        assert_eq!(
            diff.common_suffix, 4,
            "the whole post-seam suffix must match"
        );
        assert!(diff.first_divergence.is_some());
    }

    #[test]
    fn span_graph_debug_is_deterministic_for_shuffled_input() {
        let ordered = vec![
            send(0, 0, 10, 1, 0x7, 0),
            recv(1, 0, 0, 0, 0x7, 0),
            record(0, 1, 10, TelemetryEvent::BarrierWait { iteration: 0 }),
            record(1, 1, 0, TelemetryEvent::BarrierWait { iteration: 0 }),
        ];
        let mut shuffled = ordered.clone();
        shuffled.reverse();
        assert_eq!(
            format!("{:?}", span_graph(&ordered, 0)),
            format!("{:?}", span_graph(&shuffled, 0)),
            "graph construction must canonicalise record order"
        );
    }
}
