//! A small metrics registry: counters, gauges, and log2-bucketed
//! histograms, with Prometheus-style text and JSON snapshots.
//!
//! The registry is deliberately not on any steady-state path: producers keep
//! their own plain counters (e.g. `ReliableStats`, the job service's
//! bookkeeping) and a snapshot call assembles a registry on demand. `BTreeMap`
//! storage makes every snapshot deterministically ordered.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log2-bucketed histogram over non-negative integer observations.
///
/// Bucket `i` covers values whose bit length is `i` (bucket 0 holds the
/// value 0), i.e. upper bounds 0, 1, 3, 7, 15, … — coarse, allocation-free,
/// and good enough for queue depths and latency-style distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(63);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in 0..=1).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(idx);
            }
        }
        Self::bucket_upper(63)
    }

    /// Inclusive upper bound of bucket `idx`: 0 for bucket 0, else
    /// `2^idx - 1` (all values of bit length `idx`).
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Iterates `(inclusive_upper_bound, count)` over non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (Self::bucket_upper(idx), n))
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn inc_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Installs a pre-populated histogram under `name` (used when a producer
    /// maintained the histogram itself).
    pub fn set_histogram(&mut self, name: &str, histogram: Histogram) {
        self.histograms.insert(name.to_string(), histogram);
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Prometheus-style text exposition: `# TYPE` headers, counters and
    /// gauges as plain samples, histograms as cumulative `_bucket{le=…}`
    /// samples plus `_sum`/`_count`. Deterministically ordered.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, histogram) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0;
            for (upper, count) in histogram.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count());
            let _ = writeln!(out, "{name}_sum {}", histogram.sum());
            let _ = writeln!(out, "{name}_count {}", histogram.count());
        }
        out
    }

    /// One-line JSON snapshot:
    /// `{"counters":{…},"gauges":{…},"histograms":{"name":{"count":…,"sum":…,"mean":…,"p50":…,"p99":…}}}`.
    pub fn json_snapshot(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 5, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 121);
        assert_eq!(h.quantile(0.0), 0);
        // p50 of 8 observations is the 4th smallest (2) -> bucket upper 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the last populated bucket (100 -> upper bound 127).
        assert_eq!(h.quantile(0.99), 127);
    }

    #[test]
    fn registry_snapshots_are_deterministic_and_complete() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("b_total", 2);
        reg.inc_counter("a_total", 1);
        reg.set_gauge("depth", 3.5);
        reg.observe("queue", 1);
        reg.observe("queue", 7);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(
            text.find("a_total").unwrap() < text.find("b_total").unwrap(),
            "counters must be sorted"
        );
        assert!(text.contains("queue_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("queue_sum 8"));
        let json = reg.json_snapshot();
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"depth\":3.5"));
        assert!(json.contains("\"count\":2"));
        assert_eq!(reg.counter("b_total"), Some(2));
        assert_eq!(reg.histogram("queue").unwrap().count(), 2);
    }
}
