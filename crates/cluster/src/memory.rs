//! Per-rank memory accounting.
//!
//! The headline claim of the paper is memory-footprint reduction: Table III
//! reports average peak GPU memory per rank falling from 9.14 GB on 6 GPUs to
//! 0.18 GB on 4158 GPUs for Gradient Decomposition, versus a floor of 0.48 GB
//! for Halo Voxel Exchange. The solvers register every allocation they would
//! make on a GPU (tile voxels, halo voxels, measurements, gradient and
//! accumulation buffers) with this tracker so that the same statistic can be
//! reported for the reproduction.

use std::collections::BTreeMap;

/// The categories of GPU memory the reconstruction allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemoryCategory {
    /// The tile's own voxels (all slices).
    TileVoxels,
    /// The halo extension voxels.
    HaloVoxels,
    /// Diffraction measurements assigned to the tile.
    Measurements,
    /// The per-probe image gradient workspace.
    GradientBuffer,
    /// The accumulated-gradient buffer (`AccBuf` in Algorithm 1).
    AccumulationBuffer,
    /// Probe, propagator and FFT workspace.
    ModelWorkspace,
    /// Anything else.
    Other,
}

impl MemoryCategory {
    /// All categories, for reporting.
    pub const ALL: [MemoryCategory; 7] = [
        MemoryCategory::TileVoxels,
        MemoryCategory::HaloVoxels,
        MemoryCategory::Measurements,
        MemoryCategory::GradientBuffer,
        MemoryCategory::AccumulationBuffer,
        MemoryCategory::ModelWorkspace,
        MemoryCategory::Other,
    ];
}

/// Tracks current and peak memory usage by category for one rank.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    current: BTreeMap<MemoryCategory, usize>,
    peak_total: usize,
    peak_by_category: BTreeMap<MemoryCategory, usize>,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation of `bytes` in `category`.
    pub fn allocate(&mut self, category: MemoryCategory, bytes: usize) {
        let entry = self.current.entry(category).or_insert(0);
        *entry += bytes;
        let cat_peak = self.peak_by_category.entry(category).or_insert(0);
        *cat_peak = (*cat_peak).max(*entry);
        let total = self.current_total();
        self.peak_total = self.peak_total.max(total);
    }

    /// Registers a release of `bytes` from `category` (saturating at zero).
    pub fn release(&mut self, category: MemoryCategory, bytes: usize) {
        if let Some(entry) = self.current.get_mut(&category) {
            *entry = entry.saturating_sub(bytes);
        }
    }

    /// Current total bytes across categories.
    pub fn current_total(&self) -> usize {
        self.current.values().sum()
    }

    /// Peak total bytes observed.
    pub fn peak_total(&self) -> usize {
        self.peak_total
    }

    /// Peak bytes observed for one category.
    pub fn peak_of(&self, category: MemoryCategory) -> usize {
        self.peak_by_category.get(&category).copied().unwrap_or(0)
    }

    /// Current bytes held in one category.
    pub fn current_of(&self, category: MemoryCategory) -> usize {
        self.current.get(&category).copied().unwrap_or(0)
    }

    /// Peak total in gigabytes (the unit of Tables II/III).
    pub fn peak_gigabytes(&self) -> f64 {
        self.peak_total as f64 / 1e9
    }

    /// Merges another tracker's peaks into this one by taking maxima — used to
    /// report the worst-case rank.
    pub fn max_merge(&mut self, other: &MemoryTracker) {
        self.peak_total = self.peak_total.max(other.peak_total);
        for (cat, &peak) in &other.peak_by_category {
            let entry = self.peak_by_category.entry(*cat).or_insert(0);
            *entry = (*entry).max(peak);
        }
    }
}

/// Averages the peak memory across a set of per-rank trackers, in bytes —
/// the "average peak memory footprint per GPU" statistic of Tables II/III.
pub fn average_peak_bytes(trackers: &[MemoryTracker]) -> f64 {
    if trackers.is_empty() {
        return 0.0;
    }
    trackers.iter().map(|t| t.peak_total() as f64).sum::<f64>() / trackers.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut t = MemoryTracker::new();
        t.allocate(MemoryCategory::TileVoxels, 1000);
        t.allocate(MemoryCategory::Measurements, 500);
        assert_eq!(t.current_total(), 1500);
        t.release(MemoryCategory::Measurements, 500);
        assert_eq!(t.current_total(), 1000);
        assert_eq!(t.peak_total(), 1500);
    }

    #[test]
    fn peak_tracks_maximum_not_current() {
        let mut t = MemoryTracker::new();
        t.allocate(MemoryCategory::GradientBuffer, 100);
        t.release(MemoryCategory::GradientBuffer, 100);
        t.allocate(MemoryCategory::GradientBuffer, 60);
        assert_eq!(t.current_of(MemoryCategory::GradientBuffer), 60);
        assert_eq!(t.peak_of(MemoryCategory::GradientBuffer), 100);
        assert_eq!(t.peak_total(), 100);
    }

    #[test]
    fn release_saturates() {
        let mut t = MemoryTracker::new();
        t.allocate(MemoryCategory::Other, 10);
        t.release(MemoryCategory::Other, 100);
        assert_eq!(t.current_of(MemoryCategory::Other), 0);
    }

    #[test]
    fn gigabyte_conversion() {
        let mut t = MemoryTracker::new();
        t.allocate(MemoryCategory::TileVoxels, 2_500_000_000);
        assert!((t.peak_gigabytes() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn average_and_max_merge() {
        let mut a = MemoryTracker::new();
        a.allocate(MemoryCategory::TileVoxels, 100);
        let mut b = MemoryTracker::new();
        b.allocate(MemoryCategory::HaloVoxels, 300);
        assert_eq!(average_peak_bytes(&[a.clone(), b.clone()]), 200.0);

        a.max_merge(&b);
        assert_eq!(a.peak_total(), 300);
        assert_eq!(a.peak_of(MemoryCategory::HaloVoxels), 300);
        assert_eq!(a.peak_of(MemoryCategory::TileVoxels), 100);
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(average_peak_bytes(&[]), 0.0);
    }
}
