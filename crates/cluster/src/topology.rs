//! Cluster topology: how simulated GPUs map onto nodes and links.
//!
//! Models the Summit layout described in Sec. VI-A of the paper: 6 V100 GPUs
//! per node, NVLink (50 GB/s one-way) within a node, EDR InfiniBand
//! (100 Gbit/s ≈ 12.5 GB/s) between nodes.

/// The kind of link connecting two ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Both ranks are the same GPU (no transfer needed).
    Local,
    /// Ranks share a node: NVLink-class bandwidth.
    IntraNode,
    /// Ranks are on different nodes: InfiniBand-class bandwidth.
    InterNode,
}

/// Static description of the cluster the simulated ranks "run on".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterTopology {
    /// GPUs per node (Summit: 6).
    pub gpus_per_node: usize,
    /// Intra-node (NVLink) bandwidth in bytes per second, one direction.
    pub intra_node_bw: f64,
    /// Inter-node (InfiniBand) bandwidth in bytes per second, one direction.
    pub inter_node_bw: f64,
    /// Intra-node message latency in seconds.
    pub intra_node_latency: f64,
    /// Inter-node message latency in seconds.
    pub inter_node_latency: f64,
    /// GPU memory capacity in bytes (V100: 16 GB).
    pub gpu_memory_bytes: usize,
}

impl Default for ClusterTopology {
    fn default() -> Self {
        Self::summit()
    }
}

impl ClusterTopology {
    /// The Summit-like topology used throughout the paper's evaluation.
    pub fn summit() -> Self {
        Self {
            gpus_per_node: 6,
            intra_node_bw: 50.0e9,
            inter_node_bw: 12.5e9,
            intra_node_latency: 3.0e-6,
            inter_node_latency: 12.0e-6,
            gpu_memory_bytes: 16 * 1024 * 1024 * 1024,
        }
    }

    /// Number of nodes needed to host `gpus` ranks.
    pub fn nodes_for(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.gpus_per_node)
    }

    /// Node index hosting a given rank.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// True when two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The link kind between two ranks.
    pub fn link_kind(&self, a: usize, b: usize) -> LinkKind {
        if a == b {
            LinkKind::Local
        } else if self.same_node(a, b) {
            LinkKind::IntraNode
        } else {
            LinkKind::InterNode
        }
    }

    /// Bandwidth of the link between two ranks, bytes per second.
    pub fn bandwidth(&self, a: usize, b: usize) -> f64 {
        match self.link_kind(a, b) {
            LinkKind::Local => f64::INFINITY,
            LinkKind::IntraNode => self.intra_node_bw,
            LinkKind::InterNode => self.inter_node_bw,
        }
    }

    /// Latency of the link between two ranks, seconds.
    pub fn latency(&self, a: usize, b: usize) -> f64 {
        match self.link_kind(a, b) {
            LinkKind::Local => 0.0,
            LinkKind::IntraNode => self.intra_node_latency,
            LinkKind::InterNode => self.inter_node_latency,
        }
    }

    /// Time to move `bytes` between two ranks (latency + bytes / bandwidth).
    pub fn transfer_time(&self, a: usize, b: usize, bytes: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        self.latency(a, b) + bytes as f64 / self.bandwidth(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_layout() {
        let t = ClusterTopology::summit();
        assert_eq!(t.gpus_per_node, 6);
        assert_eq!(t.nodes_for(6), 1);
        assert_eq!(t.nodes_for(7), 2);
        assert_eq!(t.nodes_for(4158), 693);
        assert_eq!(t.nodes_for(462), 77);
    }

    #[test]
    fn node_assignment() {
        let t = ClusterTopology::summit();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert!(t.same_node(0, 5));
        assert!(!t.same_node(5, 6));
    }

    #[test]
    fn link_kinds() {
        let t = ClusterTopology::summit();
        assert_eq!(t.link_kind(3, 3), LinkKind::Local);
        assert_eq!(t.link_kind(0, 1), LinkKind::IntraNode);
        assert_eq!(t.link_kind(0, 11), LinkKind::InterNode);
    }

    #[test]
    fn transfer_times_ordering() {
        let t = ClusterTopology::summit();
        let bytes = 64 * 1024 * 1024;
        let local = t.transfer_time(2, 2, bytes);
        let intra = t.transfer_time(0, 1, bytes);
        let inter = t.transfer_time(0, 6, bytes);
        assert_eq!(local, 0.0);
        assert!(intra < inter, "NVLink should beat InfiniBand");
        assert!(intra > 0.0);
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let t = ClusterTopology::summit();
        let tiny = t.transfer_time(0, 6, 8);
        assert!((tiny - t.inter_node_latency) / tiny < 0.01);
    }
}
