//! Multi-job fleet bookkeeping: leasing a shared pool of nodes to many
//! concurrent reconstructions.
//!
//! [`crate::membership::MembershipView`] answers "which node runs which tile
//! of *one* reconstruction, and which spares stand by for it". This module
//! generalizes that table one level up, to a *service* running many
//! reconstructions at once:
//!
//! * [`FleetView`] tracks every physical node of the machine — **free**
//!   (standing by, leasable), **leased** (assigned to exactly one job), or
//!   **dead** (retired by a failure-detector verdict, never reused). The
//!   free pool doubles as the **shared spare pool**: when a rank dies inside
//!   a job, the replacement is drawn from here rather than from spares
//!   reserved per job, so one standby fleet amortises over every tenant.
//! * [`JobQueue`] is the admission queue: jobs wait in strict
//!   priority-then-FIFO order, and only the head of the queue may be
//!   admitted (no backfill). That head-of-line rule keeps admission
//!   *deterministic and fair by construction* — the sequence of admitted
//!   jobs is exactly the priority-sorted submission order — at the price of
//!   a large job briefly idling nodes it cannot yet use.
//!
//! The division of labour with the membership layer: inside a job, ranks are
//! numbered in *job-local* node space (`0..slots`, spares `slots..`), so a
//! job's numerics, wire tags and seeded fault decisions are identical
//! whether it runs alone or packed beside neighbours. The service maps each
//! local node id to the fleet [`NodeId`] it leased; this module never leaks
//! fleet ids into a job's communication.
//!
//! Invariants (pinned by the property suite in `tests/proptest_jobs.rs`):
//!
//! 1. **Exclusivity** — a node is leased to at most one job at a time.
//! 2. **No resurrection** — a retired (dead) node is never leased again.
//! 3. **Monotonic epoch** — every successful mutation bumps
//!    [`FleetView::epoch`] by exactly one; failed operations leave it
//!    untouched.
//! 4. **Conservation** — `free + leased + dead == total` after every
//!    operation; nodes are never created or destroyed.

use crate::membership::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one submitted reconstruction job for the lifetime of the
/// service.
pub type JobId = u64;

/// Errors from fleet-lease bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// A lease asked for more nodes than the free pool holds.
    NotEnoughFree {
        /// The job requesting the lease.
        job: JobId,
        /// How many nodes the lease asked for.
        requested: usize,
        /// How many nodes were free.
        available: usize,
    },
    /// The node is not currently leased to any job, so it cannot be retired.
    NotLeased {
        /// The offending node.
        node: NodeId,
    },
    /// The node was already retired by an earlier verdict; dead nodes never
    /// come back.
    AlreadyDead {
        /// The offending node.
        node: NodeId,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NotEnoughFree {
                job,
                requested,
                available,
            } => write!(
                f,
                "job {job} requested {requested} node(s) but only {available} are free"
            ),
            FleetError::NotLeased { node } => {
                write!(f, "node {node} is not leased to any job")
            }
            FleetError::AlreadyDead { node } => {
                write!(f, "node {node} was already retired and cannot be reused")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// The fleet-wide node table: which nodes are free, which are leased to
/// which job, and which are dead. The multi-tenant generalization of
/// [`crate::membership::MembershipView`]'s spare pool.
///
/// One instance lives behind the service's state lock; every mutation bumps
/// the fleet epoch, so observers can cheaply detect change.
#[derive(Clone, Debug)]
pub struct FleetView {
    epoch: u64,
    total: usize,
    free: BTreeSet<NodeId>,
    leased: BTreeMap<NodeId, JobId>,
    dead: BTreeSet<NodeId>,
}

impl FleetView {
    /// A fresh fleet: nodes `0..total` all free, epoch 0.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a fleet needs at least one node");
        Self {
            epoch: 0,
            total,
            free: (0..total).collect(),
            leased: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// The fleet epoch: bumped once per successful mutation (lease, release,
    /// retirement), never otherwise.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total number of nodes the fleet was created with.
    pub fn total_nodes(&self) -> usize {
        self.total
    }

    /// Number of nodes currently free (the shared spare pool).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes currently leased to jobs.
    pub fn leased_count(&self) -> usize {
        self.leased.len()
    }

    /// Number of nodes retired by failure-detector verdicts.
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// The job currently holding `node`, if any.
    pub fn lessee(&self, node: NodeId) -> Option<JobId> {
        self.leased.get(&node).copied()
    }

    /// Every node currently leased to `job`, in ascending node order.
    pub fn leased_to(&self, job: JobId) -> Vec<NodeId> {
        self.leased
            .iter()
            .filter(|&(_, &j)| j == job)
            .map(|(&node, _)| node)
            .collect()
    }

    /// True when `node` has been retired.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Leases `count` free nodes to `job`, lowest id first, and bumps the
    /// epoch. Fails (without leasing anything or moving the epoch) when the
    /// free pool is too small.
    pub fn lease(&mut self, job: JobId, count: usize) -> Result<Vec<NodeId>, FleetError> {
        assert!(count > 0, "a lease must cover at least one node");
        if self.free.len() < count {
            return Err(FleetError::NotEnoughFree {
                job,
                requested: count,
                available: self.free.len(),
            });
        }
        let nodes: Vec<NodeId> = self.free.iter().take(count).copied().collect();
        for &node in &nodes {
            self.free.remove(&node);
            self.leased.insert(node, job);
        }
        self.epoch += 1;
        Ok(nodes)
    }

    /// Draws one node from the shared spare pool for `job` (the substitution
    /// path: a rank died and the job needs a replacement). Returns `None`
    /// when the pool is empty, leaving the epoch untouched.
    pub fn draw_spare(&mut self, job: JobId) -> Option<NodeId> {
        self.lease(job, 1).ok().map(|nodes| nodes[0])
    }

    /// Returns every node still leased to `job` to the free pool and bumps
    /// the epoch (once, regardless of node count). Nodes of the job that
    /// were retired stay dead. Returns the released nodes; releasing a job
    /// with no leases is a no-op that leaves the epoch untouched.
    pub fn release(&mut self, job: JobId) -> Vec<NodeId> {
        let nodes = self.leased_to(job);
        if nodes.is_empty() {
            return nodes;
        }
        for &node in &nodes {
            self.leased.remove(&node);
            self.free.insert(node);
        }
        self.epoch += 1;
        nodes
    }

    /// Acts on a failure-detector verdict: moves a leased node to the dead
    /// set and bumps the epoch. Returns the job that held the lease. A dead
    /// node never returns to the free pool.
    pub fn retire(&mut self, node: NodeId) -> Result<JobId, FleetError> {
        if self.dead.contains(&node) {
            return Err(FleetError::AlreadyDead { node });
        }
        let Some(job) = self.leased.remove(&node) else {
            return Err(FleetError::NotLeased { node });
        };
        self.dead.insert(node);
        self.epoch += 1;
        Ok(job)
    }

    /// The conservation invariant: every node is in exactly one of the
    /// free/leased/dead sets. The sets are disjoint by construction; this
    /// checks the counts still cover the whole fleet.
    pub fn is_conserved(&self) -> bool {
        self.free.len() + self.leased.len() + self.dead.len() == self.total
    }
}

/// One waiting entry of the admission queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    /// The waiting job.
    pub job: JobId,
    /// Admission priority: higher runs earlier; ties break FIFO.
    pub priority: i32,
    /// How many nodes the job needs to start.
    pub slots: usize,
    seq: u64,
}

/// The admission queue: waiting jobs ordered by priority (descending), then
/// submission order. Only the head may be admitted ([`JobQueue::pop_admissible`]
/// — strict head-of-line, no backfill), which makes the admission sequence
/// deterministic and starvation-free for high-priority work.
#[derive(Clone, Debug, Default)]
pub struct JobQueue {
    entries: Vec<QueuedJob>,
    next_seq: u64,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no job is waiting.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `job` is still waiting.
    pub fn contains(&self, job: JobId) -> bool {
        self.entries.iter().any(|e| e.job == job)
    }

    /// Enqueues a job needing `slots` nodes at the given priority.
    pub fn push(&mut self, job: JobId, priority: i32, slots: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(QueuedJob {
            job,
            priority,
            slots,
            seq,
        });
    }

    /// Every waiting job, in submission order (use [`JobQueue::head`] for
    /// admission order). Lets the service audit the queue, e.g. to fail
    /// jobs the shrunken fleet can no longer ever serve.
    pub fn entries(&self) -> &[QueuedJob] {
        &self.entries
    }

    /// The next job in admission order (highest priority, then FIFO), if any.
    pub fn head(&self) -> Option<&QueuedJob> {
        self.entries
            .iter()
            .min_by_key(|e| (std::cmp::Reverse(e.priority), e.seq))
    }

    /// Admits the head of the queue if `free_nodes` suffices for it,
    /// removing and returning it. A head that does not fit blocks the whole
    /// queue (no backfill): admission order stays exactly the
    /// priority-sorted submission order.
    pub fn pop_admissible(&mut self, free_nodes: usize) -> Option<QueuedJob> {
        let head = *self.head()?;
        if head.slots > free_nodes {
            return None;
        }
        self.entries.retain(|e| e.job != head.job);
        Some(head)
    }

    /// Removes a waiting job (cancellation before admission). Returns
    /// whether it was present.
    pub fn remove(&mut self, job: JobId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.job != job);
        self.entries.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_takes_lowest_free_nodes_and_bumps_epoch() {
        let mut fleet = FleetView::new(6);
        assert_eq!(fleet.epoch(), 0);
        let a = fleet.lease(10, 3).expect("6 free");
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(fleet.epoch(), 1);
        let b = fleet.lease(11, 2).expect("3 free");
        assert_eq!(b, vec![3, 4]);
        assert_eq!(fleet.lessee(0), Some(10));
        assert_eq!(fleet.lessee(4), Some(11));
        assert_eq!(fleet.lessee(5), None);
        assert_eq!(fleet.free_count(), 1);
        assert!(fleet.is_conserved());
    }

    #[test]
    fn oversized_lease_fails_without_side_effects() {
        let mut fleet = FleetView::new(3);
        fleet.lease(1, 2).expect("fits");
        let err = fleet.lease(2, 2).expect_err("only one free");
        assert_eq!(
            err,
            FleetError::NotEnoughFree {
                job: 2,
                requested: 2,
                available: 1
            }
        );
        assert_eq!(fleet.epoch(), 1, "failed lease must not move the epoch");
        assert_eq!(fleet.free_count(), 1);
        assert!(fleet.is_conserved());
    }

    #[test]
    fn release_returns_live_nodes_and_keeps_dead_ones_dead() {
        let mut fleet = FleetView::new(4);
        fleet.lease(7, 3).expect("fits");
        assert_eq!(fleet.retire(1), Ok(7));
        assert!(fleet.is_dead(1));
        let released = fleet.release(7);
        assert_eq!(released, vec![0, 2]);
        assert_eq!(fleet.free_count(), 3);
        assert_eq!(fleet.dead_count(), 1);
        assert!(fleet.is_conserved());
        // The dead node can be neither retired again nor re-leased.
        assert_eq!(fleet.retire(1), Err(FleetError::AlreadyDead { node: 1 }));
        let next = fleet.lease(8, 3).expect("three live nodes free");
        assert!(!next.contains(&1), "a dead node must never be re-leased");
    }

    #[test]
    fn retire_requires_a_lease() {
        let mut fleet = FleetView::new(2);
        assert_eq!(fleet.retire(0), Err(FleetError::NotLeased { node: 0 }));
        assert_eq!(fleet.epoch(), 0);
    }

    #[test]
    fn draw_spare_comes_from_the_shared_pool() {
        let mut fleet = FleetView::new(3);
        fleet.lease(1, 2).expect("fits");
        assert_eq!(fleet.draw_spare(1), Some(2));
        assert_eq!(fleet.lessee(2), Some(1));
        assert_eq!(fleet.draw_spare(1), None, "pool exhausted");
        assert!(fleet.is_conserved());
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut queue = JobQueue::new();
        queue.push(1, 0, 2);
        queue.push(2, 5, 2);
        queue.push(3, 5, 2);
        queue.push(4, -1, 2);
        assert_eq!(queue.head().map(|e| e.job), Some(2));
        assert_eq!(queue.pop_admissible(4).map(|e| e.job), Some(2));
        assert_eq!(queue.pop_admissible(4).map(|e| e.job), Some(3));
        assert_eq!(queue.pop_admissible(4).map(|e| e.job), Some(1));
        assert_eq!(queue.pop_admissible(4).map(|e| e.job), Some(4));
        assert!(queue.pop_admissible(4).is_none());
    }

    #[test]
    fn head_of_line_blocks_smaller_jobs_behind_it() {
        let mut queue = JobQueue::new();
        queue.push(1, 9, 8);
        queue.push(2, 0, 1);
        // Only 4 nodes free: the big high-priority head does not fit, and the
        // small job behind it must NOT be admitted around it.
        assert_eq!(queue.pop_admissible(4), None);
        assert_eq!(queue.len(), 2);
        // Once capacity allows, order is restored.
        assert_eq!(queue.pop_admissible(8).map(|e| e.job), Some(1));
        assert_eq!(queue.pop_admissible(8).map(|e| e.job), Some(2));
    }

    #[test]
    fn cancellation_removes_a_waiting_job() {
        let mut queue = JobQueue::new();
        queue.push(1, 0, 2);
        queue.push(2, 1, 2);
        assert!(queue.remove(2));
        assert!(!queue.remove(2), "already gone");
        assert!(queue.contains(1));
        assert_eq!(queue.pop_admissible(4).map(|e| e.job), Some(1));
    }
}
