//! Per-rank simulated clocks and runtime breakdowns.
//!
//! Fig. 7b of the paper breaks reconstruction runtime into *computation*,
//! *GPU waiting* and *communication* time. The threaded runtime measures the
//! first two with real wall-clock timers and charges the third from the
//! topology's analytic transfer times (a thread channel is far faster than
//! InfiniBand, so measuring it directly would be meaningless).

use std::time::Instant;

/// A breakdown of where a rank's time went, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Time spent in gradient / update computation.
    pub compute: f64,
    /// Time spent blocked waiting for peers (load imbalance).
    pub wait: f64,
    /// Time charged for moving bytes between ranks.
    pub communication: f64,
}

impl TimeBreakdown {
    /// Total of all categories.
    pub fn total(&self) -> f64 {
        self.compute + self.wait + self.communication
    }

    /// Elementwise sum of two breakdowns.
    pub fn merge(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute: self.compute + other.compute,
            wait: self.wait + other.wait,
            communication: self.communication + other.communication,
        }
    }

    /// The elementwise maximum — the critical-path view across ranks.
    pub fn max_per_component(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute: self.compute.max(other.compute),
            wait: self.wait.max(other.wait),
            communication: self.communication.max(other.communication),
        }
    }
}

/// A per-rank clock accumulating a [`TimeBreakdown`].
#[derive(Debug)]
pub struct RankClock {
    breakdown: TimeBreakdown,
    /// Deterministic integer mirror of the analytic communication charges,
    /// in nanoseconds. Unlike the wall-clock compute/wait measurements this
    /// is a pure function of the message sequence, so telemetry stamps taken
    /// from it are bit-identical across identical seeded runs.
    comm_ns: u64,
}

impl Default for RankClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RankClock {
    /// Creates a clock with all categories at zero.
    pub fn new() -> Self {
        Self {
            breakdown: TimeBreakdown::default(),
            comm_ns: 0,
        }
    }

    /// Runs `f`, charging its wall-clock duration to *compute* time.
    pub fn compute<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.breakdown.compute += start.elapsed().as_secs_f64();
        out
    }

    /// Runs `f` (typically a blocking receive), charging its wall-clock
    /// duration to *wait* time.
    pub fn wait<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.breakdown.wait += start.elapsed().as_secs_f64();
        out
    }

    /// Charges `seconds` of analytic communication time.
    pub fn charge_communication(&mut self, seconds: f64) {
        self.breakdown.communication += seconds;
        self.comm_ns += (seconds * 1e9) as u64;
    }

    /// Cumulative analytic communication time in integer nanoseconds — the
    /// deterministic clock telemetry events are stamped with.
    pub fn comm_ns(&self) -> u64 {
        self.comm_ns
    }

    /// Charges `seconds` of analytic compute time (used by the performance
    /// model, where nothing is actually executed).
    pub fn charge_compute(&mut self, seconds: f64) {
        self.breakdown.compute += seconds;
    }

    /// Charges `seconds` of analytic wait time.
    pub fn charge_wait(&mut self, seconds: f64) {
        self.breakdown.wait += seconds;
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Resets all categories to zero.
    pub fn reset(&mut self) {
        self.breakdown = TimeBreakdown::default();
        self.comm_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_and_wait_are_measured() {
        let mut clock = RankClock::new();
        let value = clock.compute(|| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        clock.wait(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        let b = clock.breakdown();
        assert!(b.compute >= 0.004, "compute={}", b.compute);
        assert!(b.wait >= 0.004, "wait={}", b.wait);
        assert_eq!(b.communication, 0.0);
    }

    #[test]
    fn charges_accumulate() {
        let mut clock = RankClock::new();
        clock.charge_communication(1.5);
        clock.charge_communication(0.5);
        clock.charge_compute(2.0);
        clock.charge_wait(0.25);
        let b = clock.breakdown();
        assert_eq!(b.communication, 2.0);
        assert_eq!(b.compute, 2.0);
        assert_eq!(b.wait, 0.25);
        assert_eq!(b.total(), 4.25);
    }

    #[test]
    fn reset_clears() {
        let mut clock = RankClock::new();
        clock.charge_compute(1.0);
        clock.reset();
        assert_eq!(clock.breakdown(), TimeBreakdown::default());
    }

    #[test]
    fn merge_and_max() {
        let a = TimeBreakdown {
            compute: 1.0,
            wait: 2.0,
            communication: 3.0,
        };
        let b = TimeBreakdown {
            compute: 4.0,
            wait: 1.0,
            communication: 0.5,
        };
        let sum = a.merge(&b);
        assert_eq!(sum.compute, 5.0);
        assert_eq!(sum.total(), 11.5);
        let max = a.max_per_component(&b);
        assert_eq!(max.compute, 4.0);
        assert_eq!(max.wait, 2.0);
        assert_eq!(max.communication, 3.0);
    }
}
