//! Fault injection and communication record/replay.
//!
//! [`FaultInjectionBackend`] wraps any [`CommBackend`] and filters every
//! message a rank sends through a seeded [`FaultPolicy`]: a message can be
//! delivered normally, dropped, duplicated, or delayed (held back until its
//! sender next blocks, which reorders it past later traffic). Decisions are a
//! pure function of `(seed, from, to, tag, seq)` — `seq` being the sender's
//! per-`(to, tag)` message counter — so the same policy produces the same
//! faults on every run and on every backend, including the free-running
//! threaded one.
//!
//! Every wrapped run also records a [`CommTrace`]: one [`TraceEvent`] per
//! send decision. A trace can be fed back through
//! [`FaultInjectionBackend::replay`], which re-executes the recorded
//! decisions verbatim instead of consulting the policy — the foundation of
//! reproduce-from-trace debugging.

use super::{CommBackend, CommError, Payload, RankComm, RankFailure, RankOutcome};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Message identity within one run: `(from, to, tag, seq)`.
type MessageKey = (usize, usize, u64, u64);
/// Recorded decisions keyed by message identity, for replay.
type DecisionMap = HashMap<MessageKey, FaultAction>;

/// What the fault layer decided to do with one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the message normally.
    Deliver,
    /// Silently discard the message (the receiver is *not* told).
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Hold the message back until the sender next blocks (in a receive, at a
    /// barrier, or at rank completion), letting later traffic overtake it.
    Delay,
    /// The sending node dies permanently at this send: the message (and any
    /// delayed messages it was holding) is lost, every later send from the
    /// node is suppressed, and every later blocking operation on its
    /// communicator reports [`CommError::RankDead`]. Unlike the message
    /// faults above this one is keyed by *node* identity
    /// ([`FaultPolicy::kill_rank`]), so a spare that adopts the dead node's
    /// tile slot does not inherit the death.
    Kill,
}

/// Where, relative to the checkpoint manifest's atomic rename, a simulated
/// whole-process kill strikes (see [`FaultPolicy::kill_process_at_barrier`]).
///
/// The durability layer's commit protocol is write-temp → fsync → rename;
/// each phase leaves a different on-disk state for recovery to handle:
///
/// * `BeforeRename` — the per-rank checkpoint files are durable but the
///   manifest never appears, so the epoch is invisible and resume falls back
///   to the previous barrier.
/// * `DuringRename` — the manifest appears torn (a partial write at the
///   final path, as a non-atomic filesystem would leave it); recovery must
///   reject it via its checksum and fall back, never trust it.
/// * `AfterRename` — the commit completed before the death, so resume
///   continues from exactly this barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPhase {
    /// Die after the checkpoint files are durable but before the manifest
    /// rename: the epoch never becomes visible.
    BeforeRename,
    /// Die mid-manifest-write, leaving a torn manifest at the final path.
    DuringRename,
    /// Die immediately after the atomic rename: the epoch is committed.
    AfterRename,
}

/// A seeded, deterministic fault model.
///
/// Probabilities are evaluated in the order drop → duplicate → delay against
/// a single uniform draw per message, so their sum must stay ≤ 1. An optional
/// tag filter restricts faults to one message class (e.g. a single
/// directional pass), and [`FaultPolicy::drop_message`] pins a single exact
/// message for surgical tests.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPolicy {
    /// Seed for the per-message decision hash.
    pub seed: u64,
    /// Probability that a message is dropped.
    pub drop_probability: f64,
    /// Probability that a message is duplicated.
    pub duplicate_probability: f64,
    /// Probability that a message is delayed (reordered).
    pub delay_probability: f64,
    /// When set, messages with any *other* tag are always delivered.
    pub only_tag: Option<u64>,
    /// When set, deterministically drops exactly the message identified by
    /// `(from, to, tag, seq)` in addition to the probabilistic rules.
    pub drop_exact: Option<(usize, usize, u64, u64)>,
    /// When set, permanently kills one node: `(node, after_sends)` makes the
    /// node's `after_sends`-th send decision (0-based, counted across every
    /// stream the node sends on) come out as [`FaultAction::Kill`]. Keyed by
    /// node identity, not rank slot — see [`FaultHarness::set_node`].
    pub kill: Option<(usize, u64)>,
    /// When set, kills the *whole process* at the `barrier`-th durable
    /// checkpoint commit (the store's monotonic epoch sequence number), in
    /// the given [`CrashPhase`] relative to the manifest's atomic rename.
    /// Unlike [`FaultPolicy::kill`] this is not a per-node message fault:
    /// every rank of the job dies at once, exactly as a `kill -9` on the
    /// hosting process would. The fault layer only carries the knob; the
    /// durability layer in `ptycho-core` enacts it at commit time.
    pub process_kill: Option<(u64, CrashPhase)>,
}

impl FaultPolicy {
    /// A policy that never injects faults (but still records a trace).
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            delay_probability: 0.0,
            only_tag: None,
            drop_exact: None,
            kill: None,
            process_kill: None,
        }
    }

    /// Sets the drop probability.
    pub fn drop(mut self, probability: f64) -> Self {
        self.drop_probability = probability;
        self
    }

    /// Sets the duplicate probability.
    pub fn duplicate(mut self, probability: f64) -> Self {
        self.duplicate_probability = probability;
        self
    }

    /// Sets the delay probability.
    pub fn delay(mut self, probability: f64) -> Self {
        self.delay_probability = probability;
        self
    }

    /// Restricts faults to messages with the given tag.
    pub fn on_tag(mut self, tag: u64) -> Self {
        self.only_tag = Some(tag);
        self
    }

    /// Deterministically drops exactly one message: the `seq`-th message
    /// (0-based, counted per `(from, to, tag)` stream) from rank `from` to
    /// rank `to` with tag `tag`.
    pub fn drop_message(mut self, from: usize, to: usize, tag: u64, seq: u64) -> Self {
        self.drop_exact = Some((from, to, tag, seq));
        self
    }

    /// Permanently kills `node` at its `after_sends`-th send decision
    /// (0-based, counted across all of the node's outgoing streams). The
    /// node's communicator goes dead from that point on — see
    /// [`FaultAction::Kill`].
    pub fn kill_rank(mut self, node: usize, after_sends: u64) -> Self {
        self.kill = Some((node, after_sends));
        self
    }

    /// Kills the whole process at the `barrier`-th durable checkpoint commit
    /// (the checkpoint store's epoch sequence number), in the given
    /// [`CrashPhase`] relative to the manifest's atomic rename. Used by the
    /// resume tests and the `load_gen --kill-at-barrier` CI smoke; a run
    /// without a checkpoint store never reaches a commit, so the knob is
    /// inert there.
    pub fn kill_process_at_barrier(mut self, barrier: u64, phase: CrashPhase) -> Self {
        self.process_kill = Some((barrier, phase));
        self
    }

    fn decide(&self, from: usize, to: usize, tag: u64, seq: u64) -> FaultAction {
        if self.drop_exact == Some((from, to, tag, seq)) {
            return FaultAction::Drop;
        }
        if let Some(only) = self.only_tag {
            if tag != only {
                return FaultAction::Deliver;
            }
        }
        let draw = unit_draw(self.seed, from, to, tag, seq);
        if draw < self.drop_probability {
            FaultAction::Drop
        } else if draw < self.drop_probability + self.duplicate_probability {
            FaultAction::Duplicate
        } else if draw < self.drop_probability + self.duplicate_probability + self.delay_probability
        {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

/// SplitMix64-style finaliser over the message identity — deterministic,
/// backend-independent, and independent of the `rand` stand-in so recorded
/// traces stay valid if the vendored crates are swapped for real ones.
fn unit_draw(seed: u64, from: usize, to: usize, tag: u64, seq: u64) -> f64 {
    let mut x = seed
        ^ (from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (to as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ tag.wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ seq.wrapping_mul(0xd6e8_feb8_6659_fd93);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One recorded send decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sending rank.
    pub from: usize,
    /// Destination rank.
    pub to: usize,
    /// Message tag.
    pub tag: u64,
    /// 0-based position of this message in the sender's `(to, tag)` stream.
    pub seq: u64,
    /// Payload size in wire bytes.
    pub bytes: usize,
    /// What the fault layer did with the message.
    pub action: FaultAction,
}

/// A recorded communication trace: every send decision of one run, in the
/// canonical order `(from, to, tag, seq)`.
///
/// Within one sender a stream's `seq` order is the program order of the
/// sends, so the canonical order is deterministic even when the run itself
/// interleaved ranks nondeterministically (the threaded backend).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommTrace {
    events: Vec<TraceEvent>,
}

impl CommTrace {
    fn from_events(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| (e.from, e.to, e.tag, e.seq));
        Self { events }
    }

    /// The recorded events in canonical order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded send decisions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of messages affected by a fault (anything but `Deliver`).
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action != FaultAction::Deliver)
            .count()
    }

    fn decision_map(&self) -> DecisionMap {
        self.events
            .iter()
            .map(|e| ((e.from, e.to, e.tag, e.seq), e.action))
            .collect()
    }
}

enum HarnessMode {
    /// Decide from the policy.
    Policy(FaultPolicy),
    /// Re-execute recorded decisions; unknown messages are delivered.
    Replay(Arc<DecisionMap>),
}

/// A snapshot of one rank's fault-decision counters: the total-send clock
/// the rank-death fault fires on plus every per-`(to, tag)` stream sequence
/// number. The durability layer persists this at each consistency barrier and
/// restores it on process resume, so a resumed process's fault decisions
/// continue from where the killed process left off instead of replaying the
/// decision stream from zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCursor {
    /// Total send decisions made, across every stream.
    pub total_sends: u64,
    /// Per-stream counters as `(to, tag, next_seq)`, in canonical
    /// `(to, tag)` order so two snapshots of the same state compare equal.
    pub streams: Vec<(usize, u64, u64)>,
}

/// The per-rank fault filter a backend routes its sends through.
///
/// Created by [`FaultInjectionBackend`] and installed into each rank's comm
/// via [`RankComm::install_fault_harness`]; backends without a harness skip
/// the filter entirely.
pub struct FaultHarness {
    rank: usize,
    /// The physical node occupying this rank's slot — equal to `rank` until
    /// the membership layer re-keys it ([`FaultHarness::set_node`]). The
    /// rank-death fault is keyed by this identity.
    node: usize,
    /// Total send decisions this rank has made, across every stream — the
    /// clock the rank-death fault fires on.
    total_sends: u64,
    mode: HarnessMode,
    trace: Arc<Mutex<Vec<TraceEvent>>>,
    seq: HashMap<(usize, u64), u64>,
}

impl FaultHarness {
    /// Re-keys the harness to the physical node occupying this rank's slot
    /// (see [`RankComm::set_fault_node`]). Message faults stay keyed by the
    /// rank slot (the wire identity); only the rank-death fault follows the
    /// node.
    pub fn set_node(&mut self, node: usize) {
        self.node = node;
    }

    /// Snapshots the harness's decision counters (see [`FaultCursor`]).
    pub fn cursor(&self) -> FaultCursor {
        let mut streams: Vec<(usize, u64, u64)> = self
            .seq
            .iter()
            .map(|(&(to, tag), &next)| (to, tag, next))
            .collect();
        streams.sort_unstable();
        FaultCursor {
            total_sends: self.total_sends,
            streams,
        }
    }

    /// Restores the harness's decision counters from a persisted snapshot.
    pub fn set_cursor(&mut self, cursor: &FaultCursor) {
        self.total_sends = cursor.total_sends;
        self.seq = cursor
            .streams
            .iter()
            .map(|&(to, tag, next)| ((to, tag), next))
            .collect();
    }

    /// Decides the fate of one outgoing message and records it in the trace.
    pub fn decide(&mut self, to: usize, tag: u64, bytes: usize) -> FaultAction {
        let counter = self.seq.entry((to, tag)).or_insert(0);
        let seq = *counter;
        *counter += 1;
        let sends_so_far = self.total_sends;
        self.total_sends += 1;
        let action = match &self.mode {
            HarnessMode::Policy(policy) => {
                if policy.kill == Some((self.node, sends_so_far)) {
                    FaultAction::Kill
                } else {
                    policy.decide(self.rank, to, tag, seq)
                }
            }
            HarnessMode::Replay(map) => map
                .get(&(self.rank, to, tag, seq))
                .copied()
                .unwrap_or(FaultAction::Deliver),
        };
        self.trace
            .lock()
            .expect("fault trace poisoned")
            .push(TraceEvent {
                from: self.rank,
                to,
                tag,
                seq,
                bytes,
                action,
            });
        action
    }
}

/// The one fault-dispatch protocol shared by every backend's `isend`: consult
/// the harness (if any), then deliver / drop / duplicate via `deliver`, or
/// park the payload in `delayed` (released by the backend when the sender
/// next blocks or finishes), or kill the sending rank outright (`dead` is
/// set, this payload and every delayed one is lost, and all later sends are
/// suppressed). Keeping this in one place guarantees the backends cannot
/// drift apart in fault semantics.
// Each argument is one piece of the sending rank's comm state, borrowed
// separately so the caller can keep using the rest of `self` inside
// `deliver`; bundling them into a struct would just move the argument list.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_send<M: super::Payload>(
    harness: &mut Option<FaultHarness>,
    delayed: &mut Vec<(usize, u64, u64, M)>,
    dead: &mut bool,
    telemetry: &Option<ptycho_telemetry::RankSink>,
    to: usize,
    tag: u64,
    corr: u64,
    payload: M,
    mut deliver: impl FnMut(usize, u64, u64, M),
) {
    if *dead {
        return;
    }
    let action = match harness {
        Some(harness) => harness.decide(to, tag, payload.payload_bytes()),
        None => FaultAction::Deliver,
    };
    match action {
        FaultAction::Deliver => deliver(to, tag, corr, payload),
        FaultAction::Drop => {
            if let Some(sink) = telemetry {
                sink.record(ptycho_telemetry::TelemetryEvent::CommDrop {
                    to: to as u64,
                    tag,
                    bytes: payload.payload_bytes() as u64,
                });
            }
        }
        FaultAction::Duplicate => {
            deliver(to, tag, corr, payload.clone());
            deliver(to, tag, corr, payload);
        }
        FaultAction::Delay => delayed.push((to, tag, corr, payload)),
        FaultAction::Kill => {
            *dead = true;
            // A dying node takes its held-back messages with it.
            delayed.clear();
            if let Some(sink) = telemetry {
                let node = harness
                    .as_ref()
                    .expect("only a harness can kill a node")
                    .node;
                sink.record(ptycho_telemetry::TelemetryEvent::RankDead { node: node as u64 });
            }
        }
    }
}

/// A backend decorator injecting message faults and recording traces.
///
/// Wraps any [`CommBackend`]; the wrapped backend's [`RankComm`] is reused
/// unchanged, with a per-rank [`FaultHarness`] installed before the rank body
/// starts. Each call to [`CommBackend::run`] starts a fresh trace, readable
/// afterwards via [`FaultInjectionBackend::trace`].
pub struct FaultInjectionBackend<B> {
    inner: B,
    policy: FaultPolicy,
    replay: Option<Arc<DecisionMap>>,
    trace: Arc<Mutex<Vec<TraceEvent>>>,
    accumulate: bool,
}

impl<B: CommBackend> FaultInjectionBackend<B> {
    /// Wraps `inner`, injecting faults according to `policy`.
    ///
    /// Loss detection is enforced on the wrapped backend
    /// ([`CommBackend::with_loss_detection`]): a policy that drops messages
    /// can surface errors, never hang the run.
    pub fn new(inner: B, policy: FaultPolicy) -> Self {
        Self {
            inner: inner.with_loss_detection(),
            policy,
            replay: None,
            trace: Arc::new(Mutex::new(Vec::new())),
            accumulate: false,
        }
    }

    /// Wraps `inner` in replay mode: the recorded decisions of `trace` are
    /// re-executed verbatim (messages not present in the trace are
    /// delivered normally). Loss detection is enforced, as in
    /// [`FaultInjectionBackend::new`].
    pub fn replay(inner: B, trace: &CommTrace) -> Self {
        Self {
            inner: inner.with_loss_detection(),
            policy: FaultPolicy::reliable(0),
            replay: Some(Arc::new(trace.decision_map())),
            trace: Arc::new(Mutex::new(Vec::new())),
            accumulate: false,
        }
    }

    /// Keeps accumulating trace events across `run` calls instead of
    /// starting a fresh trace per call. The recovery drivers in
    /// `ptycho-core` execute one `run` per attempt (checkpoint restart,
    /// spare substitution), and the reliable layer's per-attempt wire
    /// epochs keep the `(from, to, tag, seq)` keys of different attempts
    /// disjoint — so an accumulated trace replays a whole multi-attempt
    /// recovery, rank death included, decision for decision.
    pub fn accumulate_traces(mut self) -> Self {
        self.accumulate = true;
        self
    }

    /// The trace recorded by the most recent `run` (or by every `run` since
    /// construction, under [`FaultInjectionBackend::accumulate_traces`]),
    /// in canonical order.
    pub fn trace(&self) -> CommTrace {
        CommTrace::from_events(self.trace.lock().expect("fault trace poisoned").clone())
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn harness_for(&self, rank: usize) -> FaultHarness {
        let mode = match &self.replay {
            Some(map) => HarnessMode::Replay(Arc::clone(map)),
            None => HarnessMode::Policy(self.policy.clone()),
        };
        FaultHarness {
            rank,
            node: rank,
            total_sends: 0,
            mode,
            trace: Arc::clone(&self.trace),
            seq: HashMap::new(),
        }
    }
}

impl<B: CommBackend + Sync> CommBackend for FaultInjectionBackend<B> {
    type Comm<M: Payload + 'static> = B::Comm<M>;

    fn run<M, R, F>(&self, num_ranks: usize, body: F) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut Self::Comm<M>) -> Result<R, CommError> + Sync,
    {
        if !self.accumulate {
            self.trace.lock().expect("fault trace poisoned").clear();
        }
        self.inner.run(num_ranks, |ctx: &mut B::Comm<M>| {
            ctx.install_fault_harness(self.harness_for(ctx.rank()));
            body(ctx)
        })
    }

    fn loss_detection_enabled(&self) -> bool {
        self.inner.loss_detection_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_decisions_are_deterministic() {
        let policy = FaultPolicy::reliable(7).drop(0.3).duplicate(0.2).delay(0.1);
        for from in 0..4 {
            for seq in 0..20 {
                let a = policy.decide(from, 1, 0x10, seq);
                let b = policy.decide(from, 1, 0x10, seq);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn probabilities_shape_the_action_mix() {
        let policy = FaultPolicy::reliable(99).drop(0.5);
        let drops = (0..1000)
            .filter(|&seq| policy.decide(0, 1, 2, seq) == FaultAction::Drop)
            .count();
        assert!(
            (350..650).contains(&drops),
            "~half the messages should drop, got {drops}/1000"
        );

        let reliable = FaultPolicy::reliable(99);
        assert!((0..1000).all(|seq| reliable.decide(0, 1, 2, seq) == FaultAction::Deliver));
    }

    #[test]
    fn tag_filter_limits_faults() {
        let policy = FaultPolicy::reliable(3).drop(1.0).on_tag(0x11);
        assert_eq!(policy.decide(0, 1, 0x10, 0), FaultAction::Deliver);
        assert_eq!(policy.decide(0, 1, 0x11, 0), FaultAction::Drop);
    }

    #[test]
    fn kill_fires_on_the_nodes_nth_send_decision() {
        use super::super::LockstepBackend;
        // Node 1 dies on its second send decision: the first send lands, the
        // second is lost, and the node's next blocking op reports RankDead.
        let policy = FaultPolicy::reliable(0).kill_rank(1, 1);
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let failure = backend
            .run::<Vec<f64>, f64, _>(2, |ctx| {
                if ctx.rank() == 1 {
                    ctx.isend(0, 0x1, vec![1.0]); // delivered
                    ctx.isend(0, 0x2, vec![2.0]); // the moment of death
                    ctx.isend(0, 0x3, vec![3.0]); // suppressed: already dead
                    ctx.barrier()?; // reports the death
                    Ok(0.0)
                } else {
                    Ok(ctx.recv(1, 0x1)?[0])
                }
            })
            .unwrap_err();
        assert_eq!(failure.rank, 1);
        assert!(matches!(failure.error, CommError::RankDead { rank: 1 }));
        let trace = backend.trace();
        // Only two decisions reach the harness: the delivered send and the
        // killing one. The post-death send is suppressed before the harness.
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[1].action, FaultAction::Kill);
        assert_eq!(trace.fault_count(), 1);
    }

    #[test]
    fn kill_is_keyed_by_node_not_slot() {
        // Re-keying the harness to a different node id must disarm a kill
        // aimed at the original occupant of the slot.
        let policy = FaultPolicy::reliable(0).kill_rank(0, 0);
        let backend = FaultInjectionBackend::new(super::super::LockstepBackend::default(), policy);
        let outcomes = backend
            .run::<Vec<f64>, f64, _>(2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.set_fault_node(7); // a spare adopted this slot
                    ctx.isend(1, 0x1, vec![4.5]);
                    Ok(0.0)
                } else {
                    Ok(ctx.recv(0, 0x1)?[0])
                }
            })
            .expect("the kill is aimed at node 0, which no longer runs slot 0");
        assert_eq!(outcomes[1].result, 4.5);
    }

    #[test]
    fn exact_drop_hits_one_message() {
        let policy = FaultPolicy::reliable(3).drop_message(2, 0, 0x11, 1);
        assert_eq!(policy.decide(2, 0, 0x11, 0), FaultAction::Deliver);
        assert_eq!(policy.decide(2, 0, 0x11, 1), FaultAction::Drop);
        assert_eq!(policy.decide(2, 0, 0x11, 2), FaultAction::Deliver);
        assert_eq!(policy.decide(1, 0, 0x11, 1), FaultAction::Deliver);
    }

    #[test]
    fn trace_sorts_canonically_and_counts_faults() {
        let trace = CommTrace::from_events(vec![
            TraceEvent {
                from: 1,
                to: 0,
                tag: 5,
                seq: 1,
                bytes: 8,
                action: FaultAction::Drop,
            },
            TraceEvent {
                from: 0,
                to: 1,
                tag: 5,
                seq: 0,
                bytes: 8,
                action: FaultAction::Deliver,
            },
            TraceEvent {
                from: 1,
                to: 0,
                tag: 5,
                seq: 0,
                bytes: 8,
                action: FaultAction::Duplicate,
            },
        ]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.fault_count(), 2);
        assert_eq!(trace.events()[0].from, 0);
        assert_eq!(
            trace.events()[1],
            TraceEvent {
                from: 1,
                to: 0,
                tag: 5,
                seq: 0,
                bytes: 8,
                action: FaultAction::Duplicate,
            }
        );
    }
}
