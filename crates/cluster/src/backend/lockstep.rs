//! A deterministic, cooperatively scheduled backend.
//!
//! The threaded backend lets the OS interleave ranks freely, which is
//! realistic but unrepeatable: two runs of the same test can block, stash and
//! wake in different orders. The lockstep backend removes every source of
//! scheduling nondeterminism by running the ranks as coroutine-style steps:
//! **exactly one rank executes at any moment**, and the baton is handed over
//! only at well-defined yield points (an unsatisfiable receive, a barrier,
//! rank completion) to the next runnable rank in fixed round-robin order.
//!
//! Two properties fall out of that design:
//!
//! * **Reproducibility** — message arrival order, mailbox contents and rank
//!   interleaving are identical on every run, which makes multi-rank failures
//!   single-step debuggable.
//! * **Deadlock detection** — the scheduler sees the global state, so the
//!   moment every unfinished rank is blocked it can *prove* a deadlock and
//!   fail every blocked receive with [`CommError::Deadlock`] (listing what
//!   each rank was waiting for) instead of hanging the test suite. A dropped
//!   message therefore surfaces as an error value, not a timeout.
//!
//! Ranks still run on scoped OS threads (stable Rust has no suspendable
//! closures), but the baton guarantees the single-runnable invariant, so the
//! execution is sequential and deterministic regardless of core count.

use super::fault::{self, FaultHarness};
use super::{
    collect_outcomes, CommBackend, CommError, Envelope, Payload, RankComm, RankFailure, RankOutcome,
};
use crate::clock::RankClock;
use crate::memory::MemoryTracker;
use crate::topology::ClusterTopology;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Clone, Debug, PartialEq, Eq)]
enum RankStatus {
    /// Eligible to run when the baton reaches it.
    Runnable,
    /// Blocked in `recv(from, tag)` with no matching message in its mailbox.
    BlockedRecv { from: usize, tag: u64 },
    /// Arrived at the barrier, waiting for the others.
    BlockedBarrier,
    /// The rank body returned.
    Finished,
}

struct SchedState<M> {
    /// The rank currently holding the baton.
    current: usize,
    status: Vec<RankStatus>,
    /// Per-rank mailboxes in arrival order (the stash and the queue are one
    /// structure here; receives scan for the first match).
    mailboxes: Vec<Vec<Envelope<M>>>,
    /// Set once the scheduler has proven a global deadlock; blocked calls
    /// observe it and return an error. Cleared again the moment any rank
    /// makes progress (takes a message, completes a barrier), because a
    /// recovery layer may retransmit and resolve a previously proven
    /// deadlock — the stale proof must not poison later blocking calls.
    deadlock: Option<String>,
    /// Bumped each time a barrier completes, so a rank woken from a barrier
    /// can tell a genuine release apart from a deadlock wake-up even after
    /// earlier deadlocks were proven and recovered.
    barrier_epoch: u64,
}

struct Shared<M> {
    state: Mutex<SchedState<M>>,
    baton: Condvar,
}

impl<M> Shared<M> {
    /// Blocks the calling rank until it holds the baton and is runnable.
    fn wait_for_turn(&self, rank: usize) -> std::sync::MutexGuard<'_, SchedState<M>> {
        let mut state = self.state.lock().expect("lockstep state poisoned");
        while !(state.current == rank && state.status[rank] == RankStatus::Runnable) {
            state = self.baton.wait(state).expect("lockstep state poisoned");
        }
        state
    }

    /// Hands the baton to the next runnable rank (round-robin from `rank`),
    /// or — if nobody can run — proves and records a deadlock, releasing
    /// every blocked rank so its pending call can return an error.
    fn yield_baton(&self, state: &mut SchedState<M>, rank: usize) {
        let n = state.status.len();
        let next = (1..=n)
            .map(|offset| (rank + offset) % n)
            .find(|&r| state.status[r] == RankStatus::Runnable);
        if let Some(next) = next {
            state.current = next;
            self.baton.notify_all();
            return;
        }
        if state
            .status
            .iter()
            .all(|status| *status == RankStatus::Finished)
        {
            // Clean completion; nothing left to schedule.
            return;
        }
        // Nobody is runnable and somebody is blocked: a proven deadlock.
        let detail = state
            .status
            .iter()
            .enumerate()
            .filter_map(|(r, status)| match status {
                RankStatus::BlockedRecv { from, tag } => {
                    Some(format!("rank {r} waits on recv(from={from}, tag={tag:#x})"))
                }
                RankStatus::BlockedBarrier => Some(format!("rank {r} waits at barrier")),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("; ");
        state.deadlock = Some(detail);
        let blocked: Vec<usize> = state
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(
                    s,
                    RankStatus::BlockedRecv { .. } | RankStatus::BlockedBarrier
                )
            })
            .map(|(r, _)| r)
            .collect();
        for r in &blocked {
            state.status[*r] = RankStatus::Runnable;
        }
        if let Some(first) = blocked.first() {
            state.current = *first;
        }
        self.baton.notify_all();
    }
}

/// Releases the baton if a rank body unwinds: without this, a panicking
/// rank would keep the scheduler's single runnable slot forever and turn
/// the panic into a process-wide hang.
struct BatonGuard<M> {
    shared: Arc<Shared<M>>,
    rank: usize,
    armed: bool,
}

impl<M> Drop for BatonGuard<M> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Never panic inside this Drop (it may run during an unwind): accept
        // a poisoned mutex rather than double-panicking.
        let mut state = match self.shared.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.status[self.rank] = RankStatus::Finished;
        self.shared.yield_baton(&mut state, self.rank);
    }
}

/// The per-rank handle of the lockstep backend.
pub struct LockstepComm<M> {
    rank: usize,
    size: usize,
    topology: ClusterTopology,
    shared: Arc<Shared<M>>,
    harness: Option<FaultHarness>,
    /// Messages held back by a `Delay` fault, as `(to, tag, corr, payload)`.
    delayed: Vec<(usize, u64, u64, M)>,
    /// Counter feeding the low half of each outgoing correlation id.
    send_corr: u64,
    /// Set by a `Kill` fault: the node is permanently dead — sends are
    /// suppressed and blocking operations report [`CommError::RankDead`].
    dead: bool,
    /// The rank's time accounting.
    pub clock: RankClock,
    /// The rank's memory accounting.
    pub memory: MemoryTracker,
    /// Per-rank telemetry sink, if a recorder has been attached.
    telemetry: Option<ptycho_telemetry::RankSink>,
}

impl<M: Payload> LockstepComm<M> {
    /// The topology the ranks are mapped onto.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Records a receive at the API-return point (program order on the
    /// receiver), which is what keeps the event stream deterministic.
    fn note_recv(&self, from: usize, tag: u64, bytes: usize, corr: u64) {
        if let Some(sink) = &self.telemetry {
            sink.record_at_comm_ns(
                self.clock.comm_ns(),
                ptycho_telemetry::TelemetryEvent::CommRecv {
                    from: from as u64,
                    tag,
                    bytes: bytes as u64,
                    corr,
                },
            );
        }
    }

    /// Takes the first matching mailbox entry as `(payload, corr)`.
    fn take_matching(
        state: &mut SchedState<M>,
        rank: usize,
        from: usize,
        tag: u64,
    ) -> Option<(M, u64)> {
        let pos = state.mailboxes[rank]
            .iter()
            .position(|e| e.from == from && e.tag == tag)?;
        // A successful receive is progress: any earlier deadlock proof is
        // stale (a recovery layer retransmitted its way out of it).
        state.deadlock = None;
        let envelope = state.mailboxes[rank].remove(pos);
        Some((envelope.payload, envelope.corr))
    }

    /// Enqueues a message, waking the destination if it was blocked on a
    /// matching receive. Charges analytic wire time to the sender. A free
    /// associated function over disjoint fields so the fault-routing closure
    /// and the delayed-flush path share one implementation.
    #[allow(clippy::too_many_arguments)]
    fn deliver_parts(
        state: &mut SchedState<M>,
        clock: &mut RankClock,
        topology: &ClusterTopology,
        from: usize,
        to: usize,
        tag: u64,
        corr: u64,
        payload: M,
    ) {
        let bytes = payload.payload_bytes();
        clock.charge_communication(topology.transfer_time(from, to, bytes));
        state.mailboxes[to].push(Envelope {
            from,
            tag,
            corr,
            payload,
        });
        if state.status[to] == (RankStatus::BlockedRecv { from, tag }) {
            state.status[to] = RankStatus::Runnable;
        }
    }

    fn flush_delayed(&mut self, state: &mut SchedState<M>) {
        if self.dead {
            // A dead node's held-back messages die with it.
            self.delayed.clear();
            return;
        }
        let from = self.rank;
        let topology = self.topology;
        let LockstepComm { delayed, clock, .. } = self;
        for (to, tag, corr, payload) in std::mem::take(delayed) {
            Self::deliver_parts(state, clock, &topology, from, to, tag, corr, payload);
        }
    }

    /// Marks this rank finished and schedules a successor (called by the
    /// backend after the body returns).
    fn finish(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("lockstep state poisoned");
        self.flush_delayed(&mut state);
        state.status[self.rank] = RankStatus::Finished;
        shared.yield_baton(&mut state, self.rank);
    }
}

impl<M: Payload> RankComm<M> for LockstepComm<M> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn isend(&mut self, to: usize, tag: u64, payload: M) {
        assert!(
            to < self.size,
            "rank {to} out of range ({} ranks)",
            self.size
        );
        let from = self.rank;
        let topology = self.topology;
        let bytes = payload.payload_bytes();
        // One correlation id per logical send, stamped before fault routing
        // so duplicates and delayed deliveries all carry it.
        let corr = ((from as u64) << 32) | self.send_corr;
        self.send_corr += 1;
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("lockstep state poisoned");
        let LockstepComm {
            harness,
            delayed,
            dead,
            clock,
            telemetry,
            ..
        } = self;
        fault::route_send(
            harness,
            delayed,
            dead,
            telemetry,
            to,
            tag,
            corr,
            payload,
            |to, tag, corr, payload| {
                Self::deliver_parts(&mut state, clock, &topology, from, to, tag, corr, payload);
            },
        );
        // A killed node's sends are suppressed, not transmitted — only a
        // live sender records the event.
        if !self.dead {
            if let Some(sink) = &self.telemetry {
                sink.record_at_comm_ns(
                    self.clock.comm_ns(),
                    ptycho_telemetry::TelemetryEvent::CommSend {
                        to: to as u64,
                        tag,
                        bytes: bytes as u64,
                        corr,
                    },
                );
            }
        }
        // Sends are non-blocking: the baton is kept.
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<M, CommError> {
        if self.dead {
            return Err(CommError::RankDead { rank: self.rank });
        }
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("lockstep state poisoned");
        if let Some((payload, corr)) = Self::take_matching(&mut state, self.rank, from, tag) {
            self.note_recv(from, tag, payload.payload_bytes(), corr);
            return Ok(payload);
        }
        // About to block: release delayed messages (they may be the very
        // ones the grid is waiting on), then re-check.
        self.flush_delayed(&mut state);
        if let Some((payload, corr)) = Self::take_matching(&mut state, self.rank, from, tag) {
            self.note_recv(from, tag, payload.payload_bytes(), corr);
            return Ok(payload);
        }
        state.status[self.rank] = RankStatus::BlockedRecv { from, tag };
        shared.yield_baton(&mut state, self.rank);
        drop(state);

        let rank = self.rank;
        let result = self.clock.wait(|| loop {
            let mut state = shared.wait_for_turn(rank);
            if let Some(found) = Self::take_matching(&mut state, rank, from, tag) {
                return Ok(found);
            }
            if let Some(detail) = state.deadlock.clone() {
                return Err(CommError::Deadlock { rank, detail });
            }
            // Spurious wake-up: this rank was released by a deadlock proof
            // that another rank has since resolved (a recovery layer made
            // progress and cleared it). Re-arm the wait and yield again.
            state.status[rank] = RankStatus::BlockedRecv { from, tag };
            shared.yield_baton(&mut state, rank);
        });
        match result {
            Ok((payload, corr)) => {
                self.note_recv(from, tag, payload.payload_bytes(), corr);
                Ok(payload)
            }
            Err(error) => Err(error),
        }
    }

    /// Cooperative probe: yields one turn to the other runnable ranks so a
    /// poll can observe new messages. Like `MPI_Iprobe` (and like the
    /// threaded backend), a `while try_recv(..).is_none() {}` loop whose
    /// awaited sender never sends is the *caller's* livelock — prefer the
    /// blocking [`RankComm::recv`], whose deadlocks this backend proves.
    fn try_recv(&mut self, from: usize, tag: u64) -> Option<M> {
        if self.dead {
            return None;
        }
        let shared = Arc::clone(&self.shared);
        {
            let mut state = shared.state.lock().expect("lockstep state poisoned");
            if let Some((payload, corr)) = Self::take_matching(&mut state, self.rank, from, tag) {
                self.note_recv(from, tag, payload.payload_bytes(), corr);
                return Some(payload);
            }
            // Cooperative polling: give every other runnable rank one turn,
            // otherwise a try_recv loop could never observe new messages.
            if state
                .status
                .iter()
                .enumerate()
                .any(|(r, s)| r != self.rank && *s == RankStatus::Runnable)
            {
                shared.yield_baton(&mut state, self.rank);
            } else {
                return None;
            }
        }
        let mut state = shared.wait_for_turn(self.rank);
        let (payload, corr) = Self::take_matching(&mut state, self.rank, from, tag)?;
        drop(state);
        self.note_recv(from, tag, payload.payload_bytes(), corr);
        Some(payload)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        if self.dead {
            return Err(CommError::RankDead { rank: self.rank });
        }
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("lockstep state poisoned");
        self.flush_delayed(&mut state);
        let entered_epoch = state.barrier_epoch;
        state.status[self.rank] = RankStatus::BlockedBarrier;
        let all_arrived = state
            .status
            .iter()
            .all(|s| matches!(s, RankStatus::BlockedBarrier | RankStatus::Finished));
        if all_arrived {
            // Finished ranks can never arrive: if any exist the barrier is
            // incomplete by definition, but every live rank being here means
            // nobody else can release it either — that is a deadlock, which
            // the yield below will prove. With every rank live, release all.
            if state
                .status
                .iter()
                .all(|s| *s == RankStatus::BlockedBarrier)
            {
                for status in state.status.iter_mut() {
                    *status = RankStatus::Runnable;
                }
                state.barrier_epoch += 1;
                // Completing a barrier is progress; drop any stale proof.
                state.deadlock = None;
                shared.baton.notify_all();
                return Ok(());
            }
        }
        shared.yield_baton(&mut state, self.rank);
        drop(state);

        let rank = self.rank;
        self.clock.wait(|| loop {
            let mut state = shared.wait_for_turn(rank);
            // A bumped epoch means the barrier genuinely completed; only an
            // un-bumped epoch with a standing deadlock proof is a failure.
            if state.barrier_epoch != entered_epoch {
                return Ok(());
            }
            if let Some(detail) = state.deadlock.clone() {
                return Err(CommError::Deadlock { rank, detail });
            }
            // Spurious wake-up (a proven deadlock was resolved by another
            // rank's recovery): re-arm, releasing the barrier ourselves if
            // every live rank is now waiting at it.
            state.status[rank] = RankStatus::BlockedBarrier;
            if state
                .status
                .iter()
                .all(|s| *s == RankStatus::BlockedBarrier)
            {
                for status in state.status.iter_mut() {
                    *status = RankStatus::Runnable;
                }
                state.barrier_epoch += 1;
                state.deadlock = None;
                shared.baton.notify_all();
                return Ok(());
            }
            shared.yield_baton(&mut state, rank);
        })
    }

    fn clock_mut(&mut self) -> &mut RankClock {
        &mut self.clock
    }

    fn memory_mut(&mut self) -> &mut MemoryTracker {
        &mut self.memory
    }

    fn install_fault_harness(&mut self, harness: FaultHarness) {
        self.harness = Some(harness);
    }

    fn set_fault_node(&mut self, node: usize) {
        if let Some(harness) = self.harness.as_mut() {
            harness.set_node(node);
        }
    }

    fn set_telemetry(&mut self, sink: ptycho_telemetry::RankSink) {
        self.telemetry = Some(sink);
    }

    fn fault_cursor(&self) -> Option<super::fault::FaultCursor> {
        self.harness.as_ref().map(|h| h.cursor())
    }

    fn set_fault_cursor(&mut self, cursor: &super::fault::FaultCursor) {
        if let Some(harness) = self.harness.as_mut() {
            harness.set_cursor(cursor);
        }
    }
}

/// The deterministic cooperative backend.
#[derive(Clone, Debug, Default)]
pub struct LockstepBackend {
    topology: ClusterTopology,
}

impl LockstepBackend {
    /// Creates a lockstep backend with the given topology.
    pub fn new(topology: ClusterTopology) -> Self {
        Self { topology }
    }

    /// The topology ranks will see.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Runs `body` on `num_ranks` cooperatively scheduled ranks and collects
    /// every rank's outcome, ordered by rank (see [`CommBackend::run`]).
    pub fn run<M, R, F>(
        &self,
        num_ranks: usize,
        body: F,
    ) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut LockstepComm<M>) -> Result<R, CommError> + Sync,
    {
        assert!(num_ranks > 0, "need at least one rank");
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                current: 0,
                status: vec![RankStatus::Runnable; num_ranks],
                mailboxes: (0..num_ranks).map(|_| Vec::new()).collect(),
                deadlock: None,
                barrier_epoch: 0,
            }),
            baton: Condvar::new(),
        });
        let body = &body;

        let mut outcomes: Vec<Option<RankOutcome<Result<R, CommError>>>> =
            (0..num_ranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_ranks);
            for rank in 0..num_ranks {
                let shared = Arc::clone(&shared);
                let topology = self.topology;
                handles.push(scope.spawn(move || {
                    // Wait for the baton before executing a single statement
                    // of the body: rank 0 starts, everyone else queues.
                    drop(shared.wait_for_turn(rank));
                    // If the body panics it unwinds while *holding* the
                    // baton; the guard releases it (marking the rank
                    // finished) so the other ranks error out via deadlock
                    // detection and the panic propagates through `join`
                    // instead of hanging the scope forever.
                    let mut guard = BatonGuard {
                        shared: Arc::clone(&shared),
                        rank,
                        armed: true,
                    };
                    let mut comm = LockstepComm {
                        rank,
                        size: num_ranks,
                        topology,
                        shared,
                        harness: None,
                        delayed: Vec::new(),
                        send_corr: 0,
                        dead: false,
                        clock: RankClock::new(),
                        memory: MemoryTracker::new(),
                        telemetry: None,
                    };
                    let result = body(&mut comm);
                    guard.armed = false;
                    comm.finish();
                    RankOutcome {
                        rank,
                        result,
                        time: comm.clock.breakdown(),
                        memory: comm.memory,
                    }
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                outcomes[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        });

        collect_outcomes(
            outcomes
                .into_iter()
                .map(|o| o.expect("missing rank"))
                .collect(),
        )
    }
}

impl CommBackend for LockstepBackend {
    type Comm<M: Payload + 'static> = LockstepComm<M>;

    fn run<M, R, F>(&self, num_ranks: usize, body: F) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut LockstepComm<M>) -> Result<R, CommError> + Sync,
    {
        LockstepBackend::run(self, num_ranks, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        let backend = LockstepBackend::new(ClusterTopology::summit());
        let n = 6;
        let outcomes = backend
            .run::<Vec<f64>, f64, _>(n, |ctx| {
                let next = (ctx.rank() + 1) % ctx.size();
                let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
                let mut total = ctx.rank() as f64;
                let mut token = vec![ctx.rank() as f64];
                for _ in 0..ctx.size() - 1 {
                    ctx.isend(next, 7, token);
                    token = ctx.recv(prev, 7)?;
                    total += token[0];
                    token = vec![token[0]];
                }
                Ok(total)
            })
            .unwrap();
        let expected: f64 = (0..n).map(|x| x as f64).sum();
        for o in &outcomes {
            assert_eq!(o.result, expected, "rank {} total mismatch", o.rank);
        }
    }

    #[test]
    fn tag_matching_is_respected() {
        let backend = LockstepBackend::default();
        let outcomes = backend
            .run::<Vec<f64>, (f64, f64), _>(2, |ctx| {
                if ctx.rank() == 0 {
                    ctx.isend(1, 2, vec![20.0]);
                    ctx.isend(1, 1, vec![10.0]);
                    Ok((0.0, 0.0))
                } else {
                    let first = ctx.recv(0, 1)?[0];
                    let second = ctx.recv(0, 2)?[0];
                    Ok((first, second))
                }
            })
            .unwrap();
        assert_eq!(outcomes[1].result, (10.0, 20.0));
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        // No shared-memory counter here (ranks are serialized anyway): check
        // instead that every rank passes the barrier and that messages sent
        // before the barrier are all deliverable after it.
        let backend = LockstepBackend::default();
        let outcomes = backend
            .run::<Vec<f64>, f64, _>(4, |ctx| {
                let peer = (ctx.rank() + 1) % ctx.size();
                ctx.isend(peer, 3, vec![ctx.rank() as f64]);
                ctx.barrier()?;
                let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
                Ok(ctx.recv(prev, 3)?[0])
            })
            .unwrap();
        for (rank, o) in outcomes.iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(o.result, prev as f64);
        }
    }

    #[test]
    fn try_recv_yields_then_sees_message() {
        let backend = LockstepBackend::default();
        let outcomes = backend
            .run::<Vec<f64>, bool, _>(2, |ctx| {
                if ctx.rank() == 0 {
                    // Polls before rank 1 has run at all: the cooperative
                    // yield inside try_recv lets rank 1 execute its send.
                    Ok(ctx.try_recv(1, 4).is_some())
                } else {
                    ctx.isend(0, 4, vec![1.0]);
                    Ok(true)
                }
            })
            .unwrap();
        assert!(outcomes[0].result, "yielding try_recv must see the message");
    }

    #[test]
    fn try_recv_returns_none_when_nothing_is_sent() {
        let backend = LockstepBackend::default();
        let outcomes = backend
            .run::<Vec<f64>, bool, _>(2, |ctx| {
                if ctx.rank() == 0 {
                    Ok(ctx.try_recv(1, 4).is_none())
                } else {
                    Ok(true)
                }
            })
            .unwrap();
        assert!(outcomes[0].result);
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        // Rank 1 waits for a message nobody sends; rank 0 finishes right
        // away. The scheduler must prove the deadlock and fail the run.
        let backend = LockstepBackend::default();
        let failure = backend
            .run::<Vec<f64>, (), _>(2, |ctx| {
                if ctx.rank() == 1 {
                    ctx.recv(0, 42)?;
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(failure.rank, 1);
        match failure.error {
            CommError::Deadlock { rank, detail } => {
                assert_eq!(rank, 1);
                assert!(
                    detail.contains("tag=0x2a"),
                    "diagnostic lists the wait: {detail}"
                );
            }
            other => panic!("expected a deadlock, got {other:?}"),
        }
    }

    #[test]
    fn barrier_with_finished_rank_is_a_deadlock() {
        let backend = LockstepBackend::default();
        let failure = backend
            .run::<(), (), _>(3, |ctx| {
                if ctx.rank() == 0 {
                    Ok(()) // never reaches the barrier
                } else {
                    ctx.barrier()
                }
            })
            .unwrap_err();
        assert!(matches!(failure.error, CommError::Deadlock { .. }));
        assert_eq!(failure.failed_ranks, 2);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn panicking_rank_propagates_instead_of_hanging() {
        // Rank 0 panics (out-of-range send) while holding the baton and
        // while rank 1 is waiting for a message from it. The baton guard
        // must release the scheduler so the run terminates: rank 1 errors
        // out via deadlock detection and the panic surfaces through `join`.
        let backend = LockstepBackend::default();
        let _ = backend.run::<Vec<f64>, (), _>(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(5, 0, vec![1.0]);
            } else {
                ctx.recv(0, 0)?;
            }
            Ok(())
        });
    }

    #[test]
    fn execution_is_deterministic_across_runs() {
        // All-to-all chatter whose per-rank receive order is recorded; two
        // runs must observe byte-identical orders.
        let observe = || {
            let backend = LockstepBackend::default();
            backend
                .run::<Vec<f64>, Vec<f64>, _>(4, |ctx| {
                    for peer in 0..ctx.size() {
                        if peer != ctx.rank() {
                            ctx.isend(peer, 1, vec![ctx.rank() as f64]);
                            ctx.isend(peer, 1, vec![ctx.rank() as f64 + 0.5]);
                        }
                    }
                    let mut seen = Vec::new();
                    for peer in 0..ctx.size() {
                        if peer != ctx.rank() {
                            seen.push(ctx.recv(peer, 1)?[0]);
                            seen.push(ctx.recv(peer, 1)?[0]);
                        }
                    }
                    Ok(seen)
                })
                .unwrap()
                .into_iter()
                .map(|o| o.result)
                .collect::<Vec<_>>()
        };
        assert_eq!(observe(), observe());
    }

    #[test]
    fn communication_time_is_charged_to_sender() {
        let backend = LockstepBackend::new(ClusterTopology::summit());
        let payload_len = 10_000usize;
        let outcomes = backend
            .run::<Vec<f64>, (), _>(7, |ctx| {
                if ctx.rank() == 0 {
                    ctx.isend(6, 1, vec![0.0; payload_len]);
                } else if ctx.rank() == 6 {
                    let _ = ctx.recv(0, 1)?;
                }
                Ok(())
            })
            .unwrap();
        let expected = ClusterTopology::summit().transfer_time(0, 6, payload_len * 8);
        assert!((outcomes[0].time.communication - expected).abs() < 1e-12);
        assert_eq!(outcomes[6].time.communication, 0.0);
    }
}
