//! The thread-backed, MPI-like message-passing backend.
//!
//! Each simulated GPU rank runs as an OS thread. Ranks exchange typed messages
//! through unbounded channels: sends never block (the semantics of
//! `MPI_Isend` into a buffered request), receives block until a matching
//! message arrives (the semantics of `MPI_Wait` on an `MPI_Irecv`). Tag
//! matching and per-sender ordering follow MPI rules.
//!
//! Wall-clock time spent blocked in receives and barriers is measured and
//! charged to *wait* time; the analytic wire time of each message (from the
//! [`ClusterTopology`]) is charged to *communication* time, because a channel
//! between threads is orders of magnitude faster than InfiniBand and measuring
//! it directly would tell us nothing about the modelled machine.

use super::fault::{self, FaultHarness};
use super::{
    collect_outcomes, CommBackend, CommError, Envelope, Payload, RankComm, RankFailure, RankOutcome,
};
use crate::clock::RankClock;
use crate::memory::MemoryTracker;
use crate::topology::ClusterTopology;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A reusable counting barrier with an optional per-wait deadline, so that a
/// rank whose peers died before arriving reports [`CommError::BarrierTimeout`]
/// instead of waiting forever (`std::sync::Barrier` cannot time out).
struct TimedBarrier {
    size: usize,
    state: Mutex<BarrierState>,
    all_arrived: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl TimedBarrier {
    fn new(size: usize) -> Self {
        Self {
            size,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            all_arrived: Condvar::new(),
        }
    }

    /// Waits for all ranks; `Err(())` on deadline expiry (the arrival is
    /// rolled back so a retry or a later generation is not corrupted).
    fn wait(&self, timeout: Option<Duration>) -> Result<(), ()> {
        let deadline = timeout.map(|limit| Instant::now() + limit);
        let mut state = self.state.lock().expect("barrier poisoned");
        let generation = state.generation;
        state.arrived += 1;
        if state.arrived == self.size {
            state.arrived = 0;
            state.generation += 1;
            self.all_arrived.notify_all();
            return Ok(());
        }
        while state.generation == generation {
            match deadline {
                None => {
                    state = self.all_arrived.wait(state).expect("barrier poisoned");
                }
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        state.arrived -= 1;
                        return Err(());
                    }
                    let (guard, _) = self
                        .all_arrived
                        .wait_timeout(state, remaining)
                        .expect("barrier poisoned");
                    state = guard;
                }
            }
        }
        Ok(())
    }
}

/// The per-rank handle of the threaded backend: identity, channels to every
/// peer, clocks and memory.
pub struct RankContext<M> {
    rank: usize,
    size: usize,
    topology: ClusterTopology,
    /// One sender per peer; `None` at this rank's own index, so that a rank
    /// blocked in `recv` can observe every peer terminating (channel
    /// disconnection) instead of waiting forever on a channel its own
    /// handle keeps alive. Self-sends go straight to the stash.
    senders: Vec<Option<Sender<Envelope<M>>>>,
    receiver: Receiver<Envelope<M>>,
    /// Out-of-order messages waiting for a matching `recv`.
    stash: Vec<Envelope<M>>,
    barrier: Arc<TimedBarrier>,
    recv_timeout: Option<Duration>,
    harness: Option<FaultHarness>,
    /// Messages held back by a `Delay` fault (as `(to, tag, corr, payload)`),
    /// flushed when this rank next blocks or finishes.
    delayed: Vec<(usize, u64, u64, M)>,
    /// Counter feeding the low half of each outgoing correlation id.
    send_corr: u64,
    /// Set by a `Kill` fault: the node is permanently dead — sends are
    /// suppressed and blocking operations report [`CommError::RankDead`].
    dead: bool,
    /// Telemetry sink for this rank's stream, when recording is enabled.
    telemetry: Option<ptycho_telemetry::RankSink>,
    /// The rank's time accounting.
    pub clock: RankClock,
    /// The rank's memory accounting.
    pub memory: MemoryTracker,
}

impl<M: Payload> RankContext<M> {
    /// The topology the ranks are mapped onto.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Enqueues the message for real, charging analytic wire time. A free
    /// associated function over disjoint fields so the fault-routing closure
    /// and the delayed-flush path share one implementation.
    #[allow(clippy::too_many_arguments)]
    fn deliver_parts(
        senders: &[Option<Sender<Envelope<M>>>],
        stash: &mut Vec<Envelope<M>>,
        topology: &ClusterTopology,
        clock: &mut RankClock,
        from: usize,
        to: usize,
        tag: u64,
        corr: u64,
        payload: M,
    ) {
        let bytes = payload.payload_bytes();
        clock.charge_communication(topology.transfer_time(from, to, bytes));
        let envelope = Envelope {
            from,
            tag,
            corr,
            payload,
        };
        if to == from {
            // Self-sends bypass the channel (see the `senders` field doc).
            stash.push(envelope);
            return;
        }
        // Unbounded channel: never blocks, mirroring a buffered Isend. A
        // send to a rank that has already terminated (normally or with an
        // error) is buffered into the void: the peer can never receive it,
        // and panicking here would mask the original failure that made the
        // peer exit early.
        let _ = senders[to]
            .as_ref()
            .expect("only the self-sender slot is empty")
            .send(envelope);
    }

    /// Records a successful receive on the telemetry stream (at the current
    /// deterministic communication clock).
    fn note_recv(&self, from: usize, tag: u64, bytes: usize, corr: u64) {
        if let Some(sink) = &self.telemetry {
            sink.record_at_comm_ns(
                self.clock.comm_ns(),
                ptycho_telemetry::TelemetryEvent::CommRecv {
                    from: from as u64,
                    tag,
                    bytes: bytes as u64,
                    corr,
                },
            );
        }
    }

    /// Releases every `Delay`-held message (called before blocking and at
    /// rank completion). A dead node's held-back messages are lost instead.
    fn flush_delayed(&mut self) {
        if self.dead {
            self.delayed.clear();
            return;
        }
        let from = self.rank;
        let RankContext {
            senders,
            stash,
            topology,
            clock,
            delayed,
            ..
        } = self;
        for (to, tag, corr, payload) in std::mem::take(delayed) {
            Self::deliver_parts(
                senders, stash, topology, clock, from, to, tag, corr, payload,
            );
        }
    }
}

impl<M: Payload> RankComm<M> for RankContext<M> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn isend(&mut self, to: usize, tag: u64, payload: M) {
        assert!(
            to < self.size,
            "rank {to} out of range ({} ranks)",
            self.size
        );
        let from = self.rank;
        let bytes = payload.payload_bytes();
        // One correlation id per logical send, stamped before fault routing
        // so duplicates and delayed deliveries all carry it.
        let corr = ((from as u64) << 32) | self.send_corr;
        self.send_corr += 1;
        let RankContext {
            harness,
            delayed,
            dead,
            senders,
            stash,
            topology,
            clock,
            telemetry,
            ..
        } = self;
        fault::route_send(
            harness,
            delayed,
            dead,
            telemetry,
            to,
            tag,
            corr,
            payload,
            |to, tag, corr, payload| {
                Self::deliver_parts(
                    senders, stash, topology, clock, from, to, tag, corr, payload,
                );
            },
        );
        // A node killed by the fault layer (possibly by this very send) no
        // longer reaches the transport, so its sends are not recorded.
        if !self.dead {
            if let Some(sink) = &self.telemetry {
                sink.record_at_comm_ns(
                    self.clock.comm_ns(),
                    ptycho_telemetry::TelemetryEvent::CommSend {
                        to: to as u64,
                        tag,
                        bytes: bytes as u64,
                        corr,
                    },
                );
            }
        }
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<M, CommError> {
        if self.dead {
            return Err(CommError::RankDead { rank: self.rank });
        }
        // Entering a (potentially) blocking receive: release anything the
        // fault layer was delaying, so a delayed message can never deadlock
        // its own sender's round-trip. This must happen unconditionally —
        // before consulting the stash — because the flush charges this
        // rank's analytic clock: gating it on whether the wanted message
        // already arrived would let real thread timing decide *when* the
        // charge lands, breaking trace determinism. (The flush can also
        // land a delayed self-send in the stash checked next.)
        self.flush_delayed();
        // Check the stash (messages that arrived out of order).
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let envelope = self.stash.remove(pos);
            self.note_recv(from, tag, envelope.payload.payload_bytes(), envelope.corr);
            return Ok(envelope.payload);
        }
        let receiver = self.receiver.clone();
        let rank = self.rank;
        // One deadline for the whole receive: stashing a non-matching
        // envelope must not restart the clock, or steady background traffic
        // could postpone the timeout indefinitely.
        let deadline = self.recv_timeout.map(|limit| Instant::now() + limit);
        let mut found: Option<Result<(M, u64), CommError>> = None;
        let stash = &mut self.stash;
        self.clock.wait(|| loop {
            let received = match deadline {
                None => receiver
                    .recv()
                    .map_err(|_| CommError::PeersGone { rank, from, tag }),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        Err(CommError::RecvTimeout { rank, from, tag })
                    } else {
                        receiver.recv_timeout(remaining).map_err(|e| match e {
                            RecvTimeoutError::Timeout => CommError::RecvTimeout { rank, from, tag },
                            RecvTimeoutError::Disconnected => {
                                CommError::PeersGone { rank, from, tag }
                            }
                        })
                    }
                }
            };
            match received {
                Ok(envelope) if envelope.from == from && envelope.tag == tag => {
                    found = Some(Ok((envelope.payload, envelope.corr)));
                    break;
                }
                Ok(envelope) => stash.push(envelope),
                Err(error) => {
                    found = Some(Err(error));
                    break;
                }
            }
        });
        let result = found.expect("recv loop exited without a message");
        match result {
            Ok((payload, corr)) => {
                self.note_recv(from, tag, payload.payload_bytes(), corr);
                Ok(payload)
            }
            Err(error) => Err(error),
        }
    }

    fn try_recv(&mut self, from: usize, tag: u64) -> Option<M> {
        if self.dead {
            return None;
        }
        // Drain anything pending into the stash, then search it.
        while let Ok(envelope) = self.receiver.try_recv() {
            self.stash.push(envelope);
        }
        let envelope = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
            .map(|pos| self.stash.remove(pos))?;
        self.note_recv(from, tag, envelope.payload.payload_bytes(), envelope.corr);
        Some(envelope.payload)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        if self.dead {
            return Err(CommError::RankDead { rank: self.rank });
        }
        self.flush_delayed();
        let barrier = Arc::clone(&self.barrier);
        let timeout = self.recv_timeout;
        let rank = self.rank;
        self.clock.wait(move || {
            barrier
                .wait(timeout)
                .map_err(|()| CommError::BarrierTimeout { rank })
        })
    }

    fn clock_mut(&mut self) -> &mut RankClock {
        &mut self.clock
    }

    fn memory_mut(&mut self) -> &mut MemoryTracker {
        &mut self.memory
    }

    fn install_fault_harness(&mut self, harness: FaultHarness) {
        self.harness = Some(harness);
    }

    fn set_fault_node(&mut self, node: usize) {
        if let Some(harness) = self.harness.as_mut() {
            harness.set_node(node);
        }
    }

    fn set_telemetry(&mut self, sink: ptycho_telemetry::RankSink) {
        self.telemetry = Some(sink);
    }

    fn fault_cursor(&self) -> Option<super::fault::FaultCursor> {
        self.harness.as_ref().map(|h| h.cursor())
    }

    fn set_fault_cursor(&mut self, cursor: &super::fault::FaultCursor) {
        if let Some(harness) = self.harness.as_mut() {
            harness.set_cursor(cursor);
        }
    }
}

/// The receive timeout [`CommBackend::with_loss_detection`] installs when
/// none was configured explicitly.
const DEFAULT_LOSS_TIMEOUT: Duration = Duration::from_secs(30);

/// The threaded backend: spawns one OS thread per rank and wires up the
/// channels.
#[derive(Clone, Debug, Default)]
pub struct ThreadedBackend {
    topology: ClusterTopology,
    recv_timeout: Option<Duration>,
}

/// The historical name of the threaded backend, kept as the friendly alias
/// used throughout the examples and tests.
pub type Cluster = ThreadedBackend;

impl ThreadedBackend {
    /// Creates a threaded backend with the given topology.
    pub fn new(topology: ClusterTopology) -> Self {
        Self {
            topology,
            recv_timeout: None,
        }
    }

    /// The topology ranks will see.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Bounds every blocking receive: a receive that does not complete within
    /// `timeout` returns [`CommError::RecvTimeout`] instead of hanging
    /// forever. Use this whenever messages can be lost (fault injection); the
    /// default is to wait indefinitely, like `MPI_Wait`.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// The configured receive/barrier timeout, if any.
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.recv_timeout
    }

    /// Runs `body` on `num_ranks` ranks in parallel and collects every rank's
    /// outcome, ordered by rank (see [`CommBackend::run`]).
    pub fn run<M, R, F>(
        &self,
        num_ranks: usize,
        body: F,
    ) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut RankContext<M>) -> Result<R, CommError> + Sync,
    {
        assert!(num_ranks > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(num_ranks);
        let mut receivers = Vec::with_capacity(num_ranks);
        for _ in 0..num_ranks {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(TimedBarrier::new(num_ranks));
        let body = &body;

        let mut outcomes: Vec<Option<RankOutcome<Result<R, CommError>>>> =
            (0..num_ranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_ranks);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                // Every peer's sender except this rank's own: a rank must
                // never keep its own receive channel alive while blocked, so
                // that "all peers terminated" is observable.
                let senders: Vec<Option<Sender<Envelope<M>>>> = senders
                    .iter()
                    .enumerate()
                    .map(|(peer, tx)| (peer != rank).then(|| tx.clone()))
                    .collect();
                let barrier = Arc::clone(&barrier);
                let topology = self.topology;
                let recv_timeout = self.recv_timeout;
                handles.push(scope.spawn(move || {
                    let mut ctx = RankContext {
                        rank,
                        size: num_ranks,
                        topology,
                        senders,
                        receiver,
                        stash: Vec::new(),
                        barrier,
                        recv_timeout,
                        harness: None,
                        delayed: Vec::new(),
                        send_corr: 0,
                        dead: false,
                        telemetry: None,
                        clock: RankClock::new(),
                        memory: MemoryTracker::new(),
                    };
                    let result = body(&mut ctx);
                    // A delayed message must not be lost just because its
                    // sender finished first.
                    ctx.flush_delayed();
                    RankOutcome {
                        rank,
                        result,
                        time: ctx.clock.breakdown(),
                        memory: ctx.memory,
                    }
                }));
            }
            // Drop the construction-time senders: from here on only live
            // rank contexts keep channels connected, so a rank blocked in
            // `recv` errors with `PeersGone` once every peer has finished.
            drop(senders);
            for (rank, handle) in handles.into_iter().enumerate() {
                outcomes[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        });

        collect_outcomes(
            outcomes
                .into_iter()
                .map(|o| o.expect("missing rank"))
                .collect(),
        )
    }
}

impl CommBackend for ThreadedBackend {
    type Comm<M: Payload + 'static> = RankContext<M>;

    fn run<M, R, F>(&self, num_ranks: usize, body: F) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut RankContext<M>) -> Result<R, CommError> + Sync,
    {
        ThreadedBackend::run(self, num_ranks, body)
    }

    fn with_loss_detection(mut self) -> Self {
        // Generous enough that no healthy test-scale receive comes close,
        // but bounded, so a dropped message is an error, not a hang. An
        // explicit `with_recv_timeout` always wins.
        self.recv_timeout.get_or_insert(DEFAULT_LOSS_TIMEOUT);
        self
    }

    fn loss_detection_enabled(&self) -> bool {
        // Without a receive timeout a lost message blocks forever (like
        // MPI_Wait), so no error ever reaches a recovery layer.
        self.recv_timeout.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its rank number around a ring; the total arriving
        // back equals the sum of all ranks.
        let cluster = Cluster::new(ClusterTopology::summit());
        let n = 6;
        let outcomes = cluster
            .run::<Vec<f64>, f64, _>(n, |ctx| {
                let next = (ctx.rank() + 1) % ctx.size();
                let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
                let mut total = ctx.rank() as f64;
                let mut token = vec![ctx.rank() as f64];
                for _ in 0..ctx.size() - 1 {
                    ctx.isend(next, 7, token);
                    token = ctx.recv(prev, 7)?;
                    total += token[0];
                    token = vec![token[0]];
                }
                Ok(total)
            })
            .unwrap();
        let expected: f64 = (0..n).map(|x| x as f64).sum();
        for o in &outcomes {
            assert_eq!(o.result, expected, "rank {} total mismatch", o.rank);
        }
    }

    #[test]
    fn tag_matching_is_respected() {
        let cluster = Cluster::default();
        let outcomes = cluster
            .run::<Vec<f64>, (f64, f64), _>(2, |ctx| {
                if ctx.rank() == 0 {
                    // Send tag 2 first, then tag 1; receiver asks for tag 1 first.
                    ctx.isend(1, 2, vec![20.0]);
                    ctx.isend(1, 1, vec![10.0]);
                    Ok((0.0, 0.0))
                } else {
                    let first = ctx.recv(0, 1)?[0];
                    let second = ctx.recv(0, 2)?[0];
                    Ok((first, second))
                }
            })
            .unwrap();
        assert_eq!(outcomes[1].result, (10.0, 20.0));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let cluster = Cluster::default();
        let outcomes = cluster
            .run::<Vec<f64>, bool, _>(2, |ctx| {
                if ctx.rank() == 0 {
                    // Never sends anything.
                    Ok(true)
                } else {
                    Ok(ctx.try_recv(0, 1).is_none())
                }
            })
            .unwrap();
        assert!(outcomes[1].result);
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let cluster = Cluster::default();
        let outcomes = cluster
            .run::<(), usize, _>(4, |ctx| {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.barrier()?;
                // After the barrier every rank must observe all increments.
                Ok(counter.load(Ordering::SeqCst))
            })
            .unwrap();
        for o in outcomes {
            assert_eq!(o.result, 4);
        }
    }

    #[test]
    fn communication_time_is_charged_to_sender() {
        let cluster = Cluster::new(ClusterTopology::summit());
        let payload_len = 1_000_000usize;
        let outcomes = cluster
            .run::<Vec<f64>, (), _>(7, |ctx| {
                // Rank 0 sends a large buffer to rank 6 (different node).
                if ctx.rank() == 0 {
                    ctx.isend(6, 1, vec![0.0; payload_len]);
                } else if ctx.rank() == 6 {
                    let _ = ctx.recv(0, 1)?;
                }
                Ok(())
            })
            .unwrap();
        let bytes = payload_len * 8;
        let expected = ClusterTopology::summit().transfer_time(0, 6, bytes);
        assert!((outcomes[0].time.communication - expected).abs() < 1e-12);
        assert_eq!(outcomes[6].time.communication, 0.0);
        // The receiver's blocking time shows up as wait.
        assert!(outcomes[6].time.wait >= 0.0);
    }

    #[test]
    fn outcomes_are_ordered_by_rank() {
        let cluster = Cluster::default();
        let outcomes = cluster
            .run::<(), usize, _>(5, |ctx| Ok(ctx.rank() * 10))
            .unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.rank, i);
            assert_eq!(o.result, i * 10);
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn send_to_invalid_rank_panics() {
        let cluster = Cluster::default();
        let _ = cluster.run::<(), (), _>(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(5, 0, ());
            }
            Ok(())
        });
    }

    #[test]
    fn loss_detection_installs_a_bounded_timeout() {
        use super::super::{FaultInjectionBackend, FaultPolicy};
        // Default: wait indefinitely, like MPI_Wait.
        assert_eq!(Cluster::default().recv_timeout(), None);
        // Loss detection bounds the wait...
        let detected = Cluster::default().with_loss_detection();
        assert_eq!(detected.recv_timeout(), Some(DEFAULT_LOSS_TIMEOUT));
        // ...but never overrides an explicit choice.
        let explicit = Cluster::default()
            .with_recv_timeout(Duration::from_millis(50))
            .with_loss_detection();
        assert_eq!(explicit.recv_timeout(), Some(Duration::from_millis(50)));
        // Wrapping in the fault layer enforces it automatically, so a lossy
        // policy can never hang the run.
        let faulty = FaultInjectionBackend::new(Cluster::default(), FaultPolicy::reliable(0));
        assert_eq!(faulty.inner().recv_timeout(), Some(DEFAULT_LOSS_TIMEOUT));
    }

    #[test]
    fn barrier_times_out_when_a_peer_never_arrives() {
        let cluster = Cluster::default().with_recv_timeout(Duration::from_millis(50));
        let failure = cluster
            .run::<(), (), _>(3, |ctx| {
                if ctx.rank() == 0 {
                    Ok(()) // exits without reaching the barrier
                } else {
                    ctx.barrier()
                }
            })
            .unwrap_err();
        assert!(matches!(failure.error, CommError::BarrierTimeout { .. }));
        assert_eq!(failure.failed_ranks, 2);
    }

    #[test]
    fn barrier_with_timeout_completes_when_everyone_arrives() {
        let cluster = Cluster::default().with_recv_timeout(Duration::from_secs(5));
        let outcomes = cluster
            .run::<(), usize, _>(4, |ctx| {
                ctx.barrier()?;
                ctx.barrier()?;
                Ok(ctx.rank())
            })
            .unwrap();
        assert_eq!(outcomes.len(), 4);
    }

    #[test]
    fn self_send_is_received_locally() {
        let cluster = Cluster::default();
        let outcomes = cluster
            .run::<Vec<f64>, f64, _>(2, |ctx| {
                let me = ctx.rank();
                ctx.isend(me, 5, vec![me as f64 + 0.5]);
                Ok(ctx.recv(me, 5)?[0])
            })
            .unwrap();
        assert_eq!(outcomes[0].result, 0.5);
        assert_eq!(outcomes[1].result, 1.5);
    }

    #[test]
    fn recv_reports_peers_gone_when_every_peer_finishes() {
        // No timeout configured: the error comes from channel disconnection
        // once every other rank has terminated — not from a hang.
        let cluster = Cluster::default();
        let failure = cluster
            .run::<Vec<f64>, (), _>(3, |ctx| {
                if ctx.rank() == 2 {
                    ctx.recv(0, 9)?;
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(failure.rank, 2);
        assert!(matches!(
            failure.error,
            CommError::PeersGone {
                rank: 2,
                from: 0,
                tag: 9
            }
        ));
    }

    #[test]
    fn recv_timeout_surfaces_missing_message_as_error() {
        let cluster = Cluster::default().with_recv_timeout(Duration::from_millis(50));
        let failure = cluster
            .run::<Vec<f64>, (), _>(2, |ctx| {
                if ctx.rank() == 1 {
                    // Rank 0 never sends: this receive must error, not hang.
                    ctx.recv(0, 9)?;
                } else {
                    // Outlive the receiver's timeout so the error is a
                    // timeout, not peer disconnection.
                    std::thread::sleep(Duration::from_millis(150));
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.failed_ranks, 1);
        assert!(matches!(
            failure.error,
            CommError::RecvTimeout {
                rank: 1,
                from: 0,
                tag: 9
            }
        ));
    }
}
