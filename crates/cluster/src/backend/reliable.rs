//! Reliable delivery over any [`RankComm`]: sequence numbers, acknowledgement
//! and retransmission.
//!
//! The raw backends mirror MPI: a lost message surfaces as a
//! [`CommError::RecvTimeout`] (threaded) or a proven
//! [`CommError::Deadlock`] (lockstep) and the run aborts. [`ReliableComm`]
//! decorates a rank's communicator so that a lossy wire — in this repository,
//! a [`FaultInjectionBackend`] drop policy — is healed transparently:
//!
//! * every logical message carries a per-stream **sequence number** encoded
//!   into the wire tag, so retransmitted duplicates can never be confused
//!   with a later round's traffic (the duplicate hazard documented in PR 2);
//! * the receiver **acknowledges** each delivery on a paired ack tag;
//! * when a blocking operation fails, the rank **retransmits** every send the
//!   peer has not acknowledged and retries, up to
//!   [`ReliableConfig::max_recoveries`] times, then **escalates** with
//!   [`CommError::RecoveryExhausted`] so the caller (the iteration engine in
//!   `ptycho-core`) can fall back to checkpoint/restart.
//!
//! Recovery is *symmetric*: the rank whose receive failed cannot conjure the
//! missing payload, but the failure is global — on the lockstep backend every
//! rank is woken from the proven deadlock, and on the threaded backend the
//! sender's own next blocking call times out too. Each rank retransmits its
//! own unacknowledged sends during its retry, which restores the lost
//! message on the first recovery round in the common case.
//!
//! Wire tags also carry an **epoch** (the restart attempt number), so a
//! seeded fault policy keyed on `(from, to, tag, seq)` draws fresh decisions
//! after a checkpoint restart — the property that makes iteration restart a
//! genuinely stronger recovery layer than retransmission alone.
//!
//! [`FaultInjectionBackend`]: super::FaultInjectionBackend

use super::{CommError, Payload, RankComm};
use crate::clock::RankClock;
use crate::memory::MemoryTracker;
use std::collections::HashMap;

/// Bits available for the base (caller-visible) tag.
const BASE_TAG_BITS: u32 = 24;
/// Bits available for the per-stream sequence number.
const SEQ_BITS: u32 = 24;
/// Bit flagging an acknowledgement frame.
const ACK_BIT: u64 = 1 << 63;

/// Encodes a data frame's wire tag: `| ack:1 | epoch:8 | seq:24 | tag:24 |`.
///
/// Public so tests (and fault policies pinning an exact wire message) can
/// compute the tag a reliable stream puts on the wire.
pub fn wire_data_tag(base_tag: u64, seq: u64, epoch: u8) -> u64 {
    assert!(
        base_tag < (1 << BASE_TAG_BITS),
        "base tag {base_tag:#x} exceeds the reliable layer's {BASE_TAG_BITS}-bit tag space"
    );
    assert!(
        seq < (1 << SEQ_BITS),
        "sequence number {seq} exceeds the reliable layer's {SEQ_BITS}-bit space"
    );
    base_tag | (seq << BASE_TAG_BITS) | ((epoch as u64) << (BASE_TAG_BITS + SEQ_BITS))
}

/// Encodes the acknowledgement tag paired with [`wire_data_tag`].
pub fn wire_ack_tag(base_tag: u64, seq: u64, epoch: u8) -> u64 {
    wire_data_tag(base_tag, seq, epoch) | ACK_BIT
}

/// Tuning for [`ReliableComm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// How many times a failing blocking operation (receive or barrier) is
    /// retried — each retry retransmits every unacknowledged send — before
    /// the layer escalates with [`CommError::RecoveryExhausted`].
    pub max_recoveries: usize,
    /// Restart-attempt number mixed into every wire tag, so traffic from
    /// different checkpoint-restart attempts never aliases and seeded fault
    /// policies draw fresh decisions per attempt.
    pub epoch: u8,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            max_recoveries: 8,
            epoch: 0,
        }
    }
}

/// Counters describing what the reliable layer had to do for one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Messages retransmitted because a blocking operation failed while they
    /// were still unacknowledged.
    pub retransmits: u64,
    /// Blocking operations that failed once and were retried.
    pub recoveries: u64,
    /// Acknowledgements sent (one per delivered message, plus re-acks).
    pub acks_sent: u64,
    /// Duplicate retransmissions consumed and re-acknowledged.
    pub duplicates_reacked: u64,
}

impl ReliableStats {
    /// Element-wise sum, for aggregating per-rank stats into a run total.
    pub fn merge(&self, other: &ReliableStats) -> ReliableStats {
        ReliableStats {
            retransmits: self.retransmits + other.retransmits,
            recoveries: self.recoveries + other.recoveries,
            acks_sent: self.acks_sent + other.acks_sent,
            duplicates_reacked: self.duplicates_reacked + other.duplicates_reacked,
        }
    }
}

/// One send awaiting acknowledgement.
struct OutboxEntry<M> {
    to: usize,
    base_tag: u64,
    seq: u64,
    payload: M,
}

/// The reliable-delivery decorator: wraps a rank's communicator for the
/// duration of one rank body.
///
/// See the [module docs](self) for the protocol. The wrapped communicator is
/// borrowed mutably, so the decorator adds no constraint on how the backend
/// constructs its comms.
pub struct ReliableComm<'c, C, M> {
    inner: &'c mut C,
    config: ReliableConfig,
    /// Next sequence number per outgoing `(to, base_tag)` stream.
    send_seq: HashMap<(usize, u64), u64>,
    /// Next expected sequence number per incoming `(from, base_tag)` stream.
    recv_seq: HashMap<(usize, u64), u64>,
    /// Sends not yet acknowledged, in send order.
    outbox: Vec<OutboxEntry<M>>,
    stats: ReliableStats,
    /// Semantic-event telemetry (retransmits, acks). The wrapped
    /// communicator keeps its own sink for transport-level events.
    telemetry: Option<ptycho_telemetry::RankSink>,
}

impl<'c, C, M> ReliableComm<'c, C, M>
where
    C: RankComm<M>,
    M: Payload + Default,
{
    /// Wraps `inner` with default tuning.
    pub fn new(inner: &'c mut C) -> Self {
        Self::with_config(inner, ReliableConfig::default())
    }

    /// Wraps `inner` with explicit tuning.
    pub fn with_config(inner: &'c mut C, config: ReliableConfig) -> Self {
        Self {
            inner,
            config,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            outbox: Vec::new(),
            stats: ReliableStats::default(),
            telemetry: None,
        }
    }

    /// What the layer had to do so far for this rank.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// Number of sends still awaiting acknowledgement (each holds a payload
    /// clone for retransmission). Bounded by the traffic between barriers:
    /// a successful [`RankComm::barrier`] drains the acknowledgements that
    /// arrived, and the iteration engine barriers once per iteration in
    /// recovery mode.
    pub fn outstanding(&self) -> usize {
        self.outbox.len()
    }

    /// The configured tuning.
    pub fn config(&self) -> ReliableConfig {
        self.config
    }

    /// Sends a **control frame** (heartbeat / membership signalling)
    /// straight through the underlying communicator: no sequence number, no
    /// outbox entry, no acknowledgement, no retransmission. Control frames
    /// must never perturb the data streams' sequence accounting — losing a
    /// heartbeat is information, not an error.
    ///
    /// # Panics
    /// Panics unless `tag` carries the control bit
    /// ([`crate::membership::frames::CONTROL_BIT`]), which keeps control
    /// frames disjoint from every data and ack tag by construction.
    pub fn isend_control(&mut self, to: usize, tag: u64, payload: M) {
        assert!(
            crate::membership::frames::is_control(tag),
            "control frames must carry the control bit (tag {tag:#x})"
        );
        self.inner.isend(to, tag, payload);
    }

    /// Non-blocking receive of a control frame, bypassing the sequence
    /// cursors (see [`ReliableComm::isend_control`]).
    ///
    /// # Panics
    /// Panics unless `tag` carries the control bit.
    pub fn try_recv_control(&mut self, from: usize, tag: u64) -> Option<M> {
        assert!(
            crate::membership::frames::is_control(tag),
            "control frames must carry the control bit (tag {tag:#x})"
        );
        self.inner.try_recv(from, tag)
    }

    /// Consumes any acknowledgements that have arrived and prunes the
    /// outbox. Acks are cumulative per stream: seeing the ack for seq `s`
    /// implies every earlier seq of that stream was delivered (the receiver
    /// advances its cursor in order).
    fn drain_acks(&mut self) {
        let epoch = self.config.epoch;
        let mut acked: Vec<(usize, u64, u64)> = Vec::new();
        for entry in &self.outbox {
            if self
                .inner
                .try_recv(entry.to, wire_ack_tag(entry.base_tag, entry.seq, epoch))
                .is_some()
            {
                acked.push((entry.to, entry.base_tag, entry.seq));
            }
        }
        if acked.is_empty() {
            return;
        }
        self.outbox.retain(|entry| {
            !acked
                .iter()
                .any(|&(to, tag, seq)| entry.to == to && entry.base_tag == tag && entry.seq <= seq)
        });
    }

    /// Re-sends every send still awaiting an acknowledgement.
    fn retransmit_outstanding(&mut self) {
        let epoch = self.config.epoch;
        for entry in &self.outbox {
            let bytes = entry.payload.payload_bytes();
            self.inner.isend(
                entry.to,
                wire_data_tag(entry.base_tag, entry.seq, epoch),
                entry.payload.clone(),
            );
            self.stats.retransmits += 1;
            if let Some(sink) = &self.telemetry {
                sink.record_at_comm_ns(
                    self.inner.clock_mut().comm_ns(),
                    ptycho_telemetry::TelemetryEvent::CommRetransmit {
                        to: entry.to as u64,
                        tag: entry.base_tag,
                        bytes: bytes as u64,
                    },
                );
            }
        }
    }

    /// Consumes duplicate retransmissions of messages this rank already
    /// received (their ack was lost) and re-acknowledges them, so the peer's
    /// outbox can drain instead of retransmitting forever. Scans every
    /// delivered seq of every known stream — this is the cold (failure)
    /// path, and stream lengths are bounded by the run's round count, so
    /// completeness beats a sliding window that could strand old entries.
    fn reack_duplicates(&mut self) {
        let epoch = self.config.epoch;
        let mut streams: Vec<((usize, u64), u64)> = self
            .recv_seq
            .iter()
            .map(|(&key, &expected)| (key, expected))
            .collect();
        // HashMap iteration order varies run to run; the re-ack sends charge
        // wire time and emit telemetry, so fix the order for determinism.
        streams.sort_unstable_by_key(|&(key, _)| key);
        for ((from, base_tag), expected) in streams {
            for seq in 0..expected {
                while self
                    .inner
                    .try_recv(from, wire_data_tag(base_tag, seq, epoch))
                    .is_some()
                {
                    self.inner
                        .isend(from, wire_ack_tag(base_tag, seq, epoch), M::default());
                    self.stats.duplicates_reacked += 1;
                    self.stats.acks_sent += 1;
                    if let Some(sink) = &self.telemetry {
                        sink.record_at_comm_ns(
                            self.inner.clock_mut().comm_ns(),
                            ptycho_telemetry::TelemetryEvent::CommAck {
                                peer: from as u64,
                                tag: base_tag,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One recovery round: learn what was delivered, re-send what was not,
    /// and service peers' retransmissions.
    fn recover(&mut self) {
        self.stats.recoveries += 1;
        self.drain_acks();
        self.retransmit_outstanding();
        self.reack_duplicates();
    }

    fn escalate(&self, last: CommError) -> CommError {
        CommError::RecoveryExhausted {
            rank: self.inner.rank(),
            recoveries: self.config.max_recoveries,
            last: Box::new(last),
        }
    }
}

impl<C, M> RankComm<M> for ReliableComm<'_, C, M>
where
    C: RankComm<M>,
    M: Payload + Default,
{
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn isend(&mut self, to: usize, tag: u64, payload: M) {
        let seq_slot = self.send_seq.entry((to, tag)).or_insert(0);
        let seq = *seq_slot;
        *seq_slot += 1;
        self.outbox.push(OutboxEntry {
            to,
            base_tag: tag,
            seq,
            payload: payload.clone(),
        });
        self.inner
            .isend(to, wire_data_tag(tag, seq, self.config.epoch), payload);
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<M, CommError> {
        let epoch = self.config.epoch;
        let expected = *self.recv_seq.entry((from, tag)).or_insert(0);
        let wire = wire_data_tag(tag, expected, epoch);
        let mut attempts = 0;
        loop {
            match self.inner.recv(from, wire) {
                Ok(payload) => {
                    *self.recv_seq.get_mut(&(from, tag)).expect("cursor exists") += 1;
                    self.inner
                        .isend(from, wire_ack_tag(tag, expected, epoch), M::default());
                    self.stats.acks_sent += 1;
                    if let Some(sink) = &self.telemetry {
                        sink.record_at_comm_ns(
                            self.inner.clock_mut().comm_ns(),
                            ptycho_telemetry::TelemetryEvent::CommAck {
                                peer: from as u64,
                                tag,
                            },
                        );
                    }
                    return Ok(payload);
                }
                Err(error) => {
                    // A dead node cannot be healed by retransmission: the
                    // error is final, surface it without burning recovery
                    // rounds so the membership layer can substitute a spare.
                    if matches!(error, CommError::RankDead { .. }) {
                        return Err(error);
                    }
                    if attempts >= self.config.max_recoveries {
                        return Err(self.escalate(error));
                    }
                    attempts += 1;
                    self.recover();
                }
            }
        }
    }

    fn try_recv(&mut self, from: usize, tag: u64) -> Option<M> {
        let epoch = self.config.epoch;
        let expected = *self.recv_seq.entry((from, tag)).or_insert(0);
        let payload = self
            .inner
            .try_recv(from, wire_data_tag(tag, expected, epoch))?;
        *self.recv_seq.get_mut(&(from, tag)).expect("cursor exists") += 1;
        self.inner
            .isend(from, wire_ack_tag(tag, expected, epoch), M::default());
        self.stats.acks_sent += 1;
        if let Some(sink) = &self.telemetry {
            sink.record_at_comm_ns(
                self.inner.clock_mut().comm_ns(),
                ptycho_telemetry::TelemetryEvent::CommAck {
                    peer: from as u64,
                    tag,
                },
            );
        }
        Some(payload)
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        let mut attempts = 0;
        loop {
            match self.inner.barrier() {
                Ok(()) => {
                    // A completed barrier means every pre-barrier send was
                    // received and acknowledged (receives happen before the
                    // barrier in the engine's traffic pattern), so the acks
                    // are sitting in the mailbox: drain them now to keep the
                    // outbox — which clones every payload — from retaining
                    // the whole run's traffic on the fault-free path.
                    self.drain_acks();
                    return Ok(());
                }
                Err(error) => {
                    if matches!(error, CommError::RankDead { .. }) {
                        return Err(error);
                    }
                    if attempts >= self.config.max_recoveries {
                        return Err(self.escalate(error));
                    }
                    attempts += 1;
                    self.recover();
                }
            }
        }
    }

    fn clock_mut(&mut self) -> &mut RankClock {
        self.inner.clock_mut()
    }

    fn memory_mut(&mut self) -> &mut MemoryTracker {
        self.inner.memory_mut()
    }

    fn install_fault_harness(&mut self, harness: super::fault::FaultHarness) {
        self.inner.install_fault_harness(harness);
    }

    fn set_fault_node(&mut self, node: usize) {
        self.inner.set_fault_node(node);
    }

    fn set_telemetry(&mut self, sink: ptycho_telemetry::RankSink) {
        // The inner communicator records transport-level sends/receives;
        // this layer adds the semantic retransmit/ack events on top.
        self.inner.set_telemetry(sink.clone());
        self.telemetry = Some(sink);
    }

    fn fault_cursor(&self) -> Option<super::fault::FaultCursor> {
        self.inner.fault_cursor()
    }

    fn set_fault_cursor(&mut self, cursor: &super::fault::FaultCursor) {
        self.inner.set_fault_cursor(cursor);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{
        CommBackend, FaultInjectionBackend, FaultPolicy, LockstepBackend, ThreadedBackend,
    };
    use super::*;
    use std::time::Duration;

    /// A two-rank ping-pong over `rounds` logical messages per direction.
    ///
    /// Ends with a barrier: a rank must not finish while a peer may still
    /// need one of its unacknowledged sends retransmitted (a finished rank
    /// can no longer recover). The iteration engine in `ptycho-core` ends
    /// every iteration with the same quiesce barrier.
    fn ping_pong<B: CommBackend>(
        backend: &B,
        rounds: usize,
    ) -> Result<Vec<f64>, super::super::RankFailure> {
        let outcomes = backend.run::<Vec<f64>, f64, _>(2, |ctx| {
            let mut rc = ReliableComm::new(ctx);
            let me = rc.rank();
            let peer = 1 - me;
            let mut total = 0.0;
            for round in 0..rounds {
                rc.isend(peer, 0x7, vec![(me * 100 + round) as f64]);
                total += rc.recv(peer, 0x7)?[0];
            }
            rc.barrier()?;
            Ok(total)
        })?;
        Ok(outcomes.into_iter().map(|o| o.result).collect())
    }

    fn expected_totals(rounds: usize) -> Vec<f64> {
        let sum = |base: usize| (0..rounds).map(|r| (base + r) as f64).sum::<f64>();
        vec![sum(100), sum(0)]
    }

    #[test]
    fn tags_round_trip_and_never_alias() {
        let data = wire_data_tag(0x13, 5, 2);
        let ack = wire_ack_tag(0x13, 5, 2);
        assert_ne!(data, ack);
        assert_ne!(data, wire_data_tag(0x13, 6, 2));
        assert_ne!(data, wire_data_tag(0x13, 5, 3));
        assert_ne!(data, wire_data_tag(0x12, 5, 2));
    }

    #[test]
    #[should_panic(expected = "tag space")]
    fn oversized_base_tag_is_rejected() {
        wire_data_tag(1 << BASE_TAG_BITS, 0, 0);
    }

    #[test]
    fn fault_free_ping_pong_is_exact_on_both_backends() {
        let rounds = 4;
        assert_eq!(
            ping_pong(&LockstepBackend::default(), rounds).unwrap(),
            expected_totals(rounds)
        );
        assert_eq!(
            ping_pong(&ThreadedBackend::default(), rounds).unwrap(),
            expected_totals(rounds)
        );
    }

    #[test]
    fn successful_barrier_drains_the_outbox() {
        // The outbox holds a payload clone per unacknowledged send; on the
        // fault-free path the barrier must prune it (the acks are already in
        // the mailbox by then), or a long run would retain every payload it
        // ever sent.
        let backend = LockstepBackend::default();
        let outcomes = backend
            .run::<Vec<f64>, (usize, usize), _>(2, |ctx| {
                let mut rc = ReliableComm::new(ctx);
                let peer = 1 - rc.rank();
                rc.isend(peer, 0x7, vec![1.0; 64]);
                rc.recv(peer, 0x7)?;
                let before = rc.outstanding();
                rc.barrier()?;
                Ok((before, rc.outstanding()))
            })
            .unwrap();
        for o in &outcomes {
            let (before, after) = o.result;
            assert_eq!(before, 1, "the send is unacknowledged before the barrier");
            assert_eq!(after, 0, "the barrier must drain the acknowledged send");
        }
    }

    #[test]
    fn dropped_message_is_healed_by_retransmission_on_lockstep() {
        // Drop the first wire frame of rank 0's stream: without the reliable
        // layer this deadlocks (see the fault tests); with it the deadlock
        // wakes both ranks, rank 0 retransmits, and the run completes.
        let policy = FaultPolicy::reliable(0).drop_message(0, 1, wire_data_tag(0x7, 0, 0), 0);
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let rounds = 3;
        assert_eq!(
            ping_pong(&backend, rounds).unwrap(),
            expected_totals(rounds)
        );
        assert_eq!(backend.trace().fault_count(), 1);
    }

    #[test]
    fn dropped_message_is_healed_by_retransmission_on_threaded() {
        let policy = FaultPolicy::reliable(0).drop_message(0, 1, wire_data_tag(0x7, 0, 0), 0);
        let threaded = ThreadedBackend::default().with_recv_timeout(Duration::from_millis(100));
        let backend = FaultInjectionBackend::new(threaded, policy);
        let rounds = 3;
        assert_eq!(
            ping_pong(&backend, rounds).unwrap(),
            expected_totals(rounds)
        );
    }

    #[test]
    fn random_drops_are_healed_on_lockstep() {
        // A 20% drop rate across a longer exchange: every drop (data or ack)
        // must be recovered and the totals must come out exact.
        let policy = FaultPolicy::reliable(42).drop(0.2);
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let rounds = 8;
        assert_eq!(
            ping_pong(&backend, rounds).unwrap(),
            expected_totals(rounds)
        );
        assert!(
            backend.trace().fault_count() > 0,
            "the seeded policy must actually drop something"
        );
    }

    #[test]
    fn persistent_drop_escalates_with_recovery_exhausted() {
        // Every frame of the (0 -> 1, tag 0x7) data stream is dropped,
        // including retransmissions: the receiver must escalate after the
        // configured number of recoveries instead of retrying forever.
        let policy = FaultPolicy::reliable(7)
            .drop(1.0)
            .on_tag(wire_data_tag(0x7, 0, 0));
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let failure = backend
            .run::<Vec<f64>, (), _>(2, |ctx| {
                let mut rc = ReliableComm::with_config(
                    ctx,
                    ReliableConfig {
                        max_recoveries: 2,
                        epoch: 0,
                    },
                );
                if rc.rank() == 0 {
                    rc.isend(1, 0x7, vec![1.0]);
                    Ok(())
                } else {
                    rc.recv(0, 0x7).map(|_| ())
                }
            })
            .unwrap_err();
        assert_eq!(failure.rank, 1);
        match failure.error {
            CommError::RecoveryExhausted {
                rank, recoveries, ..
            } => {
                assert_eq!(rank, 1);
                assert_eq!(recoveries, 2);
            }
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn epochs_separate_restart_attempts() {
        // The same logical message gets a different wire tag per epoch, so a
        // policy pinned to the epoch-0 frame does not touch the epoch-1 run.
        let policy = FaultPolicy::reliable(0)
            .drop(1.0)
            .on_tag(wire_data_tag(0x7, 0, 0));
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let outcomes = backend
            .run::<Vec<f64>, f64, _>(2, |ctx| {
                let mut rc = ReliableComm::with_config(
                    ctx,
                    ReliableConfig {
                        max_recoveries: 2,
                        epoch: 1,
                    },
                );
                if rc.rank() == 0 {
                    rc.isend(1, 0x7, vec![9.5]);
                    Ok(0.0)
                } else {
                    Ok(rc.recv(0, 0x7)?[0])
                }
            })
            .unwrap();
        assert_eq!(outcomes[1].result, 9.5);
    }

    #[test]
    fn stats_count_recovery_work() {
        let policy = FaultPolicy::reliable(0).drop_message(0, 1, wire_data_tag(0x7, 0, 0), 0);
        let backend = FaultInjectionBackend::new(LockstepBackend::default(), policy);
        let outcomes = backend
            .run::<Vec<f64>, ReliableStats, _>(2, |ctx| {
                let mut rc = ReliableComm::new(ctx);
                let peer = 1 - rc.rank();
                rc.isend(peer, 0x7, vec![1.0]);
                rc.recv(peer, 0x7)?;
                // Quiesce before finishing so the dropped frame's sender is
                // still alive to retransmit it (see `ping_pong`).
                rc.barrier()?;
                Ok(rc.stats())
            })
            .unwrap();
        let total = outcomes
            .iter()
            .fold(ReliableStats::default(), |acc, o| acc.merge(&o.result));
        assert!(total.retransmits >= 1, "the dropped frame must be re-sent");
        assert!(total.recoveries >= 1);
        assert_eq!(
            total.acks_sent as usize,
            outcomes.len() + total.duplicates_reacked as usize
        );
    }
}
