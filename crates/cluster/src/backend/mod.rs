//! Pluggable communication backends.
//!
//! The reconstruction solvers in `ptycho-core` are written against two small
//! traits rather than a concrete runtime:
//!
//! * [`RankComm`] is the per-rank surface — the MPI-flavoured primitives a
//!   rank body actually uses (`isend`/`recv`/`try_recv`/`barrier`, plus the
//!   rank's [`RankClock`] and [`MemoryTracker`]).
//! * [`CommBackend`] is the launcher — it runs a rank body on `n` ranks and
//!   collects one [`RankOutcome`] per rank.
//!
//! Three backends implement the pair:
//!
//! | Backend | Execution | Use it for |
//! |---|---|---|
//! | [`ThreadedBackend`] | one OS thread per rank, real channels | the default; wall-clock compute/wait measurement |
//! | [`LockstepBackend`] | cooperative scheduler, one rank runs at a time in a fixed order | deterministic replayable runs, deadlock *detection* instead of hangs |
//! | [`FaultInjectionBackend`] | wraps either of the above | dropping / duplicating / delaying messages under a seeded policy, and record/replay of communication traces |
//!
//! Communication failures are values, not hangs: [`RankComm::recv`] returns
//! [`CommError`] when a message cannot arrive (receive timeout on the
//! threaded backend, global deadlock detected by the lockstep scheduler), and
//! [`CommBackend::run`] surfaces the first failing rank as a [`RankFailure`].

pub mod fault;
pub mod lockstep;
pub mod pool;
pub mod reliable;
pub mod threaded;

use crate::clock::RankClock;
use crate::memory::MemoryTracker;

pub use fault::{
    CommTrace, CrashPhase, FaultAction, FaultCursor, FaultInjectionBackend, FaultPolicy, TraceEvent,
};
pub use lockstep::{LockstepBackend, LockstepComm};
pub use pool::TilePayloadPool;
pub use reliable::{ReliableComm, ReliableConfig, ReliableStats};
pub use threaded::{Cluster, RankContext, ThreadedBackend};

/// Payloads carried between ranks must report an approximate wire size so the
/// analytic communication model can charge for them, and must be cloneable so
/// the fault-injection layer can duplicate messages.
pub trait Payload: Clone + Send {
    /// Number of bytes this payload would occupy on the wire.
    fn payload_bytes(&self) -> usize;
}

impl Payload for () {
    fn payload_bytes(&self) -> usize {
        0
    }
}

impl Payload for Vec<u8> {
    fn payload_bytes(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<f64> {
    fn payload_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

impl Payload for String {
    fn payload_bytes(&self) -> usize {
        self.len()
    }
}

/// `Arc`-backed payloads are the zero-copy path: `clone()` (used by the
/// fault-injection duplicator and by [`ReliableComm`]'s retransmit outbox)
/// copies one pointer instead of the buffer, while `payload_bytes` still
/// charges the analytic wire model for the full contents.
///
/// [`ReliableComm`]: reliable::ReliableComm
impl<T: Payload + Sync> Payload for std::sync::Arc<T> {
    fn payload_bytes(&self) -> usize {
        (**self).payload_bytes()
    }
}

/// A tile-sized wire payload (the flat `re, im`-interleaved f64 buffer the
/// solvers exchange) behind an [`Arc`](std::sync::Arc): sending, duplicating
/// or buffering it for retransmission aliases the one allocation instead of
/// deep-copying volume-sized data.
///
/// The contents are immutable while shared — mutation is only possible
/// through [`SharedTile::unique_values_mut`], which (via `Arc::get_mut`)
/// succeeds only when no alias exists, so every alias always observes the
/// same bytes. That uniqueness gate is what lets [`TilePayloadPool`] recycle
/// a tile's buffer for the next send without copying.
#[derive(Clone, Debug)]
pub struct SharedTile(std::sync::Arc<Vec<f64>>);

impl SharedTile {
    /// Wraps a flat payload buffer (the only allocation in a send path).
    pub fn new(values: Vec<f64>) -> Self {
        Self(std::sync::Arc::new(values))
    }

    /// The payload values.
    pub fn values(&self) -> &[f64] {
        &self.0
    }

    /// Number of `f64` values in the payload.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload holds no values.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of live aliases of this payload (the `Arc` strong count).
    /// `1` means this handle is the only owner and the buffer is reusable.
    pub fn ref_count(&self) -> usize {
        std::sync::Arc::strong_count(&self.0)
    }

    /// Mutable access to the underlying buffer, granted only when this
    /// handle is the sole owner (no clone is in a mailbox, a retransmit
    /// outbox or a fault-injection duplicate). Returns `None` otherwise.
    pub fn unique_values_mut(&mut self) -> Option<&mut Vec<f64>> {
        std::sync::Arc::get_mut(&mut self.0)
    }
}

/// The empty tile every [`SharedTile::default`] aliases: acknowledgement
/// and heartbeat frames carry it, and sharing one allocation keeps those
/// control paths allocation-free.
static EMPTY_TILE: std::sync::OnceLock<std::sync::Arc<Vec<f64>>> = std::sync::OnceLock::new();

impl Default for SharedTile {
    fn default() -> Self {
        Self(std::sync::Arc::clone(
            EMPTY_TILE.get_or_init(|| std::sync::Arc::new(Vec::new())),
        ))
    }
}

impl From<Vec<f64>> for SharedTile {
    fn from(values: Vec<f64>) -> Self {
        Self::new(values)
    }
}

impl Payload for SharedTile {
    fn payload_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<f64>()
    }
}

/// A communication failure observed by one rank.
///
/// The simulated runtimes turn conditions that would hang an MPI job into
/// values: a receive that cannot be satisfied is reported, not waited on
/// forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A receive did not match any message within the backend's allowed wait
    /// (see [`ThreadedBackend::with_recv_timeout`]).
    RecvTimeout {
        /// The receiving rank.
        rank: usize,
        /// The sender the receive was posted against.
        from: usize,
        /// The tag the receive was posted against.
        tag: u64,
    },
    /// The lockstep scheduler proved that no rank can make progress: every
    /// unfinished rank is blocked in a receive or a barrier and no matching
    /// message is in flight.
    Deadlock {
        /// The rank reporting the deadlock.
        rank: usize,
        /// Human-readable description of what every blocked rank was waiting
        /// for when the deadlock was detected.
        detail: String,
    },
    /// A barrier did not complete within the backend's allowed wait — some
    /// rank exited (usually with its own error) before arriving.
    BarrierTimeout {
        /// The rank that gave up waiting at the barrier.
        rank: usize,
    },
    /// Every peer terminated while this rank was still waiting for a message.
    PeersGone {
        /// The receiving rank.
        rank: usize,
        /// The sender the receive was posted against.
        from: usize,
        /// The tag the receive was posted against.
        tag: u64,
    },
    /// The reliable-delivery layer ([`ReliableComm`]) retried a failing
    /// blocking operation its full recovery budget — retransmitting
    /// unacknowledged sends each time — and the operation still failed.
    /// Carries the last underlying error so callers can escalate (e.g. to a
    /// checkpoint restart) with the root cause intact.
    RecoveryExhausted {
        /// The rank that gave up.
        rank: usize,
        /// How many recovery rounds were attempted.
        recoveries: usize,
        /// The final underlying failure.
        last: Box<CommError>,
    },
    /// This rank was killed by the fault layer's rank-death fault class
    /// ([`FaultAction::Kill`]): the simulated node died permanently mid-run.
    /// Every subsequent operation on the rank's communicator reports this
    /// error, mirroring a process whose runtime has revoked its communicator.
    /// Unlike message loss this is not recoverable in place — the membership
    /// layer must substitute a spare node for the dead one.
    RankDead {
        /// The rank whose node died.
        rank: usize,
    },
    /// A node died permanently and the spare-rank pool had no standby node
    /// left to adopt its tile, so the run cannot be healed.
    SparesExhausted {
        /// The rank reporting the exhaustion.
        rank: usize,
        /// The dead node that could not be replaced.
        dead_node: usize,
    },
    /// The run was cancelled cooperatively: the job engine raised the job's
    /// cancel flag and the rank observed it at its next per-iteration
    /// barrier. Not a fault — the recovery machinery must not try to heal it.
    Cancelled {
        /// The rank that observed the cancellation.
        rank: usize,
    },
    /// The whole hosting process died (simulated via
    /// [`FaultPolicy::kill_process_at_barrier`](fault::FaultPolicy::kill_process_at_barrier)):
    /// every rank terminates at once at a durable checkpoint commit. Not a
    /// per-rank fault — no restart budget or spare can heal it in-process;
    /// only an out-of-process resume from the on-disk checkpoint can.
    ProcessKilled {
        /// The rank reporting the death.
        rank: usize,
        /// The checkpoint-store epoch sequence number the kill struck at.
        seq: u64,
    },
    /// The run was preempted cooperatively at an iteration barrier so the
    /// job service can splice newly ingested scan positions into the dataset
    /// and restart the solve over the enlarged problem. Like `Cancelled`,
    /// this is not a fault — the recovery machinery must surface it
    /// immediately instead of trying to heal it.
    Preempted {
        /// The rank that observed the preemption.
        rank: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RecvTimeout { rank, from, tag } => write!(
                f,
                "rank {rank}: receive from rank {from} (tag {tag:#x}) timed out — \
                 the message was lost or never sent"
            ),
            CommError::Deadlock { rank, detail } => {
                write!(f, "rank {rank}: communication deadlock detected: {detail}")
            }
            CommError::BarrierTimeout { rank } => write!(
                f,
                "rank {rank}: barrier did not complete within the allowed wait — \
                 a peer exited before arriving"
            ),
            CommError::PeersGone { rank, from, tag } => write!(
                f,
                "rank {rank}: all peers terminated while waiting for a message \
                 from rank {from} (tag {tag:#x})"
            ),
            CommError::RecoveryExhausted {
                rank,
                recoveries,
                last,
            } => write!(
                f,
                "rank {rank}: reliable delivery gave up after {recoveries} \
                 retransmit/retry rounds; last failure: {last}"
            ),
            CommError::RankDead { rank } => write!(
                f,
                "rank {rank}: this rank's node died permanently (simulated rank-death fault); \
                 only a spare-rank substitution can heal the run"
            ),
            CommError::SparesExhausted { rank, dead_node } => write!(
                f,
                "rank {rank}: node {dead_node} died permanently and the spare-rank pool \
                 is exhausted"
            ),
            CommError::Cancelled { rank } => write!(
                f,
                "rank {rank}: the job was cancelled cooperatively at an iteration barrier"
            ),
            CommError::ProcessKilled { rank, seq } => write!(
                f,
                "rank {rank}: the hosting process was killed at durable checkpoint \
                 commit {seq}; resume from the checkpoint directory to continue"
            ),
            CommError::Preempted { rank } => write!(
                f,
                "rank {rank}: the run was preempted at an iteration barrier to splice \
                 newly ingested scan positions"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// The failure of a whole multi-rank run: the lowest-ranked failing rank and
/// its error, plus how many ranks failed in total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankFailure {
    /// The lowest failing rank.
    pub rank: usize,
    /// That rank's communication error.
    pub error: CommError,
    /// Total number of ranks that reported an error.
    pub failed_ranks: usize,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rank(s) failed; first failure on rank {}: {}",
            self.failed_ranks, self.rank, self.error
        )
    }
}

impl std::error::Error for RankFailure {}

/// A message in flight between two ranks (shared by every backend).
#[derive(Clone, Debug)]
pub(crate) struct Envelope<M> {
    pub(crate) from: usize,
    pub(crate) tag: u64,
    /// Span correlation id: the sender's slot in the high 32 bits, its
    /// per-context transport-send counter in the low 32. Stamped once per
    /// logical `isend`, before fault routing, so every copy of a duplicated
    /// or delayed message carries the same id and telemetry receives can be
    /// paired with their originating send unambiguously.
    pub(crate) corr: u64,
    pub(crate) payload: M,
}

/// The outcome of one rank's execution.
#[derive(Clone, Debug)]
pub struct RankOutcome<R> {
    /// The rank index.
    pub rank: usize,
    /// Whatever the rank body returned.
    pub result: R,
    /// Time accounting collected by the rank.
    pub time: crate::clock::TimeBreakdown,
    /// Memory accounting collected by the rank.
    pub memory: MemoryTracker,
}

/// The per-rank communication surface the solvers are generic over.
///
/// The primitives mirror MPI: sends are non-blocking and buffered
/// (`MPI_Isend`), receives are matched on `(source, tag)` with per-sender
/// ordering (`MPI_Irecv` + `MPI_Wait`), and barriers synchronise every rank.
/// On top of the wire surface each rank carries its own [`RankClock`] (time
/// accounting) and [`MemoryTracker`] (memory accounting), because the solvers
/// charge simulated compute time and GPU allocations as they go.
pub trait RankComm<M: Payload> {
    /// This rank's index in `0..size`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn size(&self) -> usize;

    /// Non-blocking send of `payload` to `to` with a user-chosen `tag` (the
    /// analogue of `MPI_Isend` into a buffered request). The analytic wire
    /// time for the message is charged to this rank's communication budget.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    fn isend(&mut self, to: usize, tag: u64, payload: M);

    /// Blocking receive of the next message from `from` with tag `tag` (the
    /// analogue of `MPI_Irecv` + `MPI_Wait`). Time spent blocked is charged
    /// to wait time. Returns a [`CommError`] instead of hanging when the
    /// backend can prove (deadlock) or strongly suspect (timeout) that the
    /// message will never arrive.
    fn recv(&mut self, from: usize, tag: u64) -> Result<M, CommError>;

    /// Non-blocking probe: returns a matching message if one has already
    /// arrived, without waiting.
    fn try_recv(&mut self, from: usize, tag: u64) -> Option<M>;

    /// Synchronises all ranks; blocked time is charged to wait time.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// The rank's time accounting.
    fn clock_mut(&mut self) -> &mut RankClock;

    /// The rank's memory accounting.
    fn memory_mut(&mut self) -> &mut MemoryTracker;

    /// Installs a fault-injection harness that filters every subsequent send.
    /// Used by [`FaultInjectionBackend`]; backends must route `isend` through
    /// the harness once one is installed.
    fn install_fault_harness(&mut self, harness: fault::FaultHarness);

    /// Tells the fault layer which *physical node* occupies this rank's
    /// slot, so node-keyed faults (rank death) follow the node, not the
    /// slot: after a spare adopts a dead node's tile, the same slot is run
    /// by a different node and must not inherit its predecessor's death.
    /// Defaults to a no-op; backends that support fault harnesses re-key
    /// the installed harness.
    fn set_fault_node(&mut self, node: usize) {
        let _ = node;
    }

    /// Installs a telemetry sink for this rank's stream. Backends that
    /// support recording report transport-level events (sends, receives,
    /// fault drops, rank deaths) through it; [`ReliableComm`] additionally
    /// records its semantic events (retransmits, acks) and forwards the sink
    /// inward. Defaults to a no-op so trivial test doubles stay trivial.
    fn set_telemetry(&mut self, sink: ptycho_telemetry::RankSink) {
        let _ = sink;
    }

    /// Snapshots the installed fault harness's decision counters, if a
    /// harness is installed (see [`fault::FaultCursor`]). The durability
    /// layer persists the cursor with each checkpoint so a resumed process
    /// continues the fault-decision stream instead of replaying it from
    /// zero. Defaults to `None` for backends without fault support.
    fn fault_cursor(&self) -> Option<fault::FaultCursor> {
        None
    }

    /// Restores the installed fault harness's decision counters from a
    /// persisted snapshot. A no-op when no harness is installed.
    fn set_fault_cursor(&mut self, cursor: &fault::FaultCursor) {
        let _ = cursor;
    }
}

/// A launcher that executes one body per rank and collects the outcomes.
///
/// `M` is the message type exchanged between ranks; `R` is the per-rank
/// result type. The body returns `Result<R, CommError>` so that communication
/// failures propagate out of the rank instead of panicking mid-run; `run`
/// reports the first failing rank as a [`RankFailure`].
pub trait CommBackend {
    /// The concrete [`RankComm`] handed to each rank body.
    type Comm<M: Payload + 'static>: RankComm<M>;

    /// Runs `body` on `num_ranks` ranks and collects every rank's outcome,
    /// ordered by rank.
    fn run<M, R, F>(&self, num_ranks: usize, body: F) -> Result<Vec<RankOutcome<R>>, RankFailure>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut Self::Comm<M>) -> Result<R, CommError> + Sync;

    /// Returns a version of this backend on which a *lost* message is
    /// guaranteed to surface as a [`CommError`] instead of an indefinite
    /// hang. The lockstep backend already proves deadlocks, so this is a
    /// no-op there; the threaded backend installs a generous receive
    /// timeout unless one was configured explicitly.
    /// [`FaultInjectionBackend`] applies this to whatever it wraps, so a
    /// lossy policy can never hang the suite by construction.
    fn with_loss_detection(self) -> Self
    where
        Self: Sized,
    {
        self
    }

    /// True when a lost message surfaces as a [`CommError`] on this backend
    /// (a proven deadlock, a bounded receive). Recovery layers that act on
    /// such errors ([`ReliableComm`], the iteration engine's
    /// retransmit/restart policy) are inert on a backend without it — they
    /// would hang exactly like the raw backend — so they check this up
    /// front and refuse loudly instead.
    fn loss_detection_enabled(&self) -> bool {
        true
    }
}

/// Splits per-rank `Result` outcomes into a success vector or the first
/// failure — shared by every backend's `run`.
pub(crate) fn collect_outcomes<R>(
    outcomes: Vec<RankOutcome<Result<R, CommError>>>,
) -> Result<Vec<RankOutcome<R>>, RankFailure> {
    let failed_ranks = outcomes.iter().filter(|o| o.result.is_err()).count();
    let mut collected = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome.result {
            Ok(result) => collected.push(RankOutcome {
                rank: outcome.rank,
                result,
                time: outcome.time,
                memory: outcome.memory,
            }),
            Err(error) => {
                return Err(RankFailure {
                    rank: outcome.rank,
                    error,
                    failed_ranks,
                })
            }
        }
    }
    Ok(collected)
}

#[cfg(test)]
mod payload_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_tile_clone_aliases_the_buffer() {
        let tile = SharedTile::new(vec![1.5; 1024]);
        let copy = tile.clone();
        assert_eq!(
            tile.values().as_ptr(),
            copy.values().as_ptr(),
            "cloning a SharedTile must alias, not deep-copy"
        );
        assert_eq!(tile.payload_bytes(), 1024 * 8);
        assert_eq!(copy.len(), 1024);
        assert!(!copy.is_empty());
        assert!(SharedTile::default().is_empty());
    }

    #[test]
    fn arc_payload_reports_inner_wire_size() {
        let payload = Arc::new(vec![0u8; 37]);
        assert_eq!(payload.payload_bytes(), 37);
        let tile: SharedTile = vec![0.0f64; 4].into();
        assert_eq!(tile.payload_bytes(), 32);
    }
}
