//! A rank-local pool recycling [`SharedTile`] payload buffers.
//!
//! ISSUE 4 made every comm-layer *copy* of a payload an `Arc` alias, but
//! each send still allocated its one payload `Vec` (and the `Arc` box
//! around it). [`TilePayloadPool`] removes that last per-send allocation:
//! the sender keeps a clone of every tile it sends, and the next
//! [`TilePayloadPool::acquire`] of the same size reuses the first retired
//! tile whose strong count has returned to 1 — meaning the receiver
//! consumed it *and* every comm-layer alias (mailbox envelope,
//! [`ReliableComm`] retransmit outbox, fault-injection duplicate) has been
//! dropped.
//!
//! Tiles are bucketed by exact payload length (the overlap-region sizes of
//! a decomposition are a small fixed set), so a recycled buffer never needs
//! resizing and the steady state performs literally zero allocations —
//! pinned by `tests/alloc_regression.rs`.
//!
//! The natural recycle point under reliable delivery is the consistency
//! barrier: [`ReliableComm::barrier`] drains the acknowledged outbox, which
//! releases the last comm-layer reference to each delivered payload, so
//! tiles retired before a barrier become reusable right after it. On the
//! raw (fail-fast) path the receiver's `recv` is the release point and
//! reuse kicks in within the same exchange round.
//!
//! The pool is deliberately rank-local and unsynchronised: payload buffers
//! never migrate between ranks (only their `Arc` aliases do), so no locking
//! is needed.
//!
//! [`ReliableComm`]: super::ReliableComm
//! [`ReliableComm::barrier`]: super::ReliableComm::barrier

use super::SharedTile;
use std::collections::HashMap;

/// A rank-local free-list of retired [`SharedTile`]s, bucketed by payload
/// length (see the module docs).
#[derive(Debug, Default)]
pub struct TilePayloadPool {
    buckets: HashMap<usize, Vec<SharedTile>>,
}

impl TilePayloadPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a tile of exactly `len` values with unique ownership
    /// (`ref_count() == 1`), reusing a retired buffer of the same length
    /// when one has been released by every alias, allocating a fresh one
    /// otherwise. The contents are unspecified — the caller must overwrite
    /// them fully.
    pub fn acquire(&mut self, len: usize) -> SharedTile {
        if let Some(bucket) = self.buckets.get_mut(&len) {
            for i in 0..bucket.len() {
                if bucket[i].ref_count() == 1 {
                    return bucket.swap_remove(i);
                }
            }
        }
        SharedTile::new(vec![0.0; len])
    }

    /// Hands a sent tile back to the pool. The pool holds it (keeping one
    /// alias alive) until every comm-layer alias is dropped, at which point
    /// `acquire` can recycle its buffer.
    pub fn retire(&mut self, tile: SharedTile) {
        self.buckets.entry(tile.len()).or_default().push(tile);
    }

    /// Number of tiles currently retired (reusable or still aliased).
    pub fn retired(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Number of retired tiles whose every alias has been dropped — the
    /// buffers the next acquires will reuse without allocating.
    pub fn reusable(&self) -> usize {
        self.buckets
            .values()
            .flatten()
            .filter(|t| t.ref_count() == 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_a_released_buffer() {
        let mut pool = TilePayloadPool::new();
        let tile = pool.acquire(8);
        let ptr = tile.values().as_ptr();
        pool.retire(tile);
        assert_eq!(pool.reusable(), 1);
        let again = pool.acquire(8);
        assert_eq!(
            again.values().as_ptr(),
            ptr,
            "a fully released tile must be recycled, not reallocated"
        );
        assert_eq!(pool.retired(), 0);
    }

    #[test]
    fn aliased_tiles_are_not_recycled() {
        let mut pool = TilePayloadPool::new();
        let tile = pool.acquire(4);
        let in_flight = tile.clone(); // the mailbox / outbox alias
        let ptr = tile.values().as_ptr();
        pool.retire(tile);
        assert_eq!(pool.reusable(), 0, "an in-flight tile is not reusable");
        let fresh = pool.acquire(4);
        assert_ne!(
            fresh.values().as_ptr(),
            ptr,
            "an aliased buffer must never be handed out for reuse"
        );
        drop(in_flight);
        assert_eq!(pool.reusable(), 1, "dropping the alias releases the tile");
    }

    #[test]
    fn buckets_separate_payload_sizes() {
        let mut pool = TilePayloadPool::new();
        let big = pool.acquire(100);
        let big_ptr = big.values().as_ptr();
        pool.retire(big);
        // A different size opens its own bucket instead of resizing.
        let small = pool.acquire(60);
        assert_ne!(small.values().as_ptr(), big_ptr);
        assert_eq!(small.len(), 60);
        pool.retire(small);
        assert_eq!(pool.retired(), 2);
        assert_eq!(pool.reusable(), 2);
        // Each size recycles its own buffer.
        assert_eq!(pool.acquire(100).values().as_ptr(), big_ptr);
    }
}
