//! A thread-backed, MPI-like message-passing runtime.
//!
//! Each simulated GPU rank runs as an OS thread. Ranks exchange typed messages
//! through unbounded channels: sends never block (the semantics of
//! `MPI_Isend` into a buffered request), receives block until a matching
//! message arrives (the semantics of `MPI_Wait` on an `MPI_Irecv`). Tag
//! matching and per-sender ordering follow MPI rules.
//!
//! Wall-clock time spent blocked in receives and barriers is measured and
//! charged to *wait* time; the analytic wire time of each message (from the
//! [`ClusterTopology`]) is charged to *communication* time, because a channel
//! between threads is orders of magnitude faster than InfiniBand and measuring
//! it directly would tell us nothing about the modelled machine.

use crate::clock::RankClock;
use crate::memory::MemoryTracker;
use crate::topology::ClusterTopology;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Payloads carried between ranks must report an approximate wire size so the
/// analytic communication model can charge for them.
pub trait Payload: Send {
    /// Number of bytes this payload would occupy on the wire.
    fn payload_bytes(&self) -> usize;
}

impl Payload for () {
    fn payload_bytes(&self) -> usize {
        0
    }
}

impl Payload for Vec<u8> {
    fn payload_bytes(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<f64> {
    fn payload_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

impl Payload for String {
    fn payload_bytes(&self) -> usize {
        self.len()
    }
}

/// A message in flight.
#[derive(Clone, Debug)]
struct Envelope<M> {
    from: usize,
    tag: u64,
    payload: M,
}

/// The per-rank handle: identity, channels to every peer, clocks and memory.
pub struct RankContext<M> {
    rank: usize,
    size: usize,
    topology: ClusterTopology,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    /// Out-of-order messages waiting for a matching `recv`.
    stash: Vec<Envelope<M>>,
    barrier: Arc<Barrier>,
    /// The rank's time accounting.
    pub clock: RankClock,
    /// The rank's memory accounting.
    pub memory: MemoryTracker,
}

impl<M: Payload> RankContext<M> {
    /// This rank's index in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The topology the ranks are mapped onto.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Non-blocking send of `payload` to `to` with a user-chosen `tag`
    /// (the analogue of `MPI_Isend`).
    ///
    /// The analytic wire time for the message is charged to this rank's
    /// communication budget.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn isend(&mut self, to: usize, tag: u64, payload: M) {
        assert!(
            to < self.size,
            "rank {to} out of range ({} ranks)",
            self.size
        );
        let bytes = payload.payload_bytes();
        let wire_time = self.topology.transfer_time(self.rank, to, bytes);
        self.clock.charge_communication(wire_time);
        // Unbounded channel: never blocks, mirroring a buffered Isend.
        self.senders[to]
            .send(Envelope {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up before shutdown");
    }

    /// Blocking receive of the next message from `from` with tag `tag`
    /// (the analogue of `MPI_Irecv` + `MPI_Wait`). Time spent blocked is
    /// charged to wait time.
    pub fn recv(&mut self, from: usize, tag: u64) -> M {
        // Check the stash first (messages that arrived out of order).
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            return self.stash.remove(pos).payload;
        }
        let receiver = self.receiver.clone();
        let mut found: Option<M> = None;
        let stash = &mut self.stash;
        self.clock.wait(|| loop {
            let envelope = receiver
                .recv()
                .expect("all peers hung up while this rank was still receiving");
            if envelope.from == from && envelope.tag == tag {
                found = Some(envelope.payload);
                break;
            }
            stash.push(envelope);
        });
        found.expect("recv loop exited without a message")
    }

    /// Non-blocking probe: returns a matching message if one has already
    /// arrived, without waiting.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Option<M> {
        // Drain anything pending into the stash, then search it.
        while let Ok(envelope) = self.receiver.try_recv() {
            self.stash.push(envelope);
        }
        self.stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
            .map(|pos| self.stash.remove(pos).payload)
    }

    /// Synchronises all ranks; blocked time is charged to wait time.
    pub fn barrier(&mut self) {
        let barrier = Arc::clone(&self.barrier);
        self.clock.wait(move || {
            barrier.wait();
        });
    }
}

/// The outcome of one rank's execution.
#[derive(Clone, Debug)]
pub struct RankOutcome<R> {
    /// The rank index.
    pub rank: usize,
    /// Whatever the rank body returned.
    pub result: R,
    /// Time accounting collected by the rank.
    pub time: crate::clock::TimeBreakdown,
    /// Memory accounting collected by the rank.
    pub memory: MemoryTracker,
}

/// A simulated cluster: spawns one thread per rank and wires up the channels.
#[derive(Clone, Debug, Default)]
pub struct Cluster {
    topology: ClusterTopology,
}

impl Cluster {
    /// Creates a cluster with the given topology.
    pub fn new(topology: ClusterTopology) -> Self {
        Self { topology }
    }

    /// The topology ranks will see.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Runs `body` on `num_ranks` ranks in parallel and collects every rank's
    /// outcome, ordered by rank.
    ///
    /// `M` is the message type exchanged between ranks; `R` is the per-rank
    /// result type.
    pub fn run<M, R, F>(&self, num_ranks: usize, body: F) -> Vec<RankOutcome<R>>
    where
        M: Payload + 'static,
        R: Send,
        F: Fn(&mut RankContext<M>) -> R + Sync,
    {
        assert!(num_ranks > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(num_ranks);
        let mut receivers = Vec::with_capacity(num_ranks);
        for _ in 0..num_ranks {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(num_ranks));
        let body = &body;

        let mut outcomes: Vec<Option<RankOutcome<R>>> = (0..num_ranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_ranks);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let senders = senders.clone();
                let barrier = Arc::clone(&barrier);
                let topology = self.topology;
                handles.push(scope.spawn(move || {
                    let mut ctx = RankContext {
                        rank,
                        size: num_ranks,
                        topology,
                        senders,
                        receiver,
                        stash: Vec::new(),
                        barrier,
                        clock: RankClock::new(),
                        memory: MemoryTracker::new(),
                    };
                    let result = body(&mut ctx);
                    RankOutcome {
                        rank,
                        result,
                        time: ctx.clock.breakdown(),
                        memory: ctx.memory,
                    }
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                outcomes[rank] = Some(handle.join().expect("rank thread panicked"));
            }
        });

        outcomes
            .into_iter()
            .map(|o| o.expect("missing rank"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates() {
        // Each rank sends its rank number around a ring; the total arriving
        // back equals the sum of all ranks.
        let cluster = Cluster::new(ClusterTopology::summit());
        let n = 6;
        let outcomes = cluster.run::<Vec<f64>, f64, _>(n, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            let mut total = ctx.rank() as f64;
            let mut token = vec![ctx.rank() as f64];
            for _ in 0..ctx.size() - 1 {
                ctx.isend(next, 7, token);
                token = ctx.recv(prev, 7);
                total += token[0];
                token = vec![token[0]];
            }
            total
        });
        let expected: f64 = (0..n).map(|x| x as f64).sum();
        for o in &outcomes {
            assert_eq!(o.result, expected, "rank {} total mismatch", o.rank);
        }
    }

    #[test]
    fn tag_matching_is_respected() {
        let cluster = Cluster::default();
        let outcomes = cluster.run::<Vec<f64>, (f64, f64), _>(2, |ctx| {
            if ctx.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for tag 1 first.
                ctx.isend(1, 2, vec![20.0]);
                ctx.isend(1, 1, vec![10.0]);
                (0.0, 0.0)
            } else {
                let first = ctx.recv(0, 1)[0];
                let second = ctx.recv(0, 2)[0];
                (first, second)
            }
        });
        assert_eq!(outcomes[1].result, (10.0, 20.0));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let cluster = Cluster::default();
        let outcomes = cluster.run::<Vec<f64>, bool, _>(2, |ctx| {
            if ctx.rank() == 0 {
                // Never sends anything.
                true
            } else {
                ctx.try_recv(0, 1).is_none()
            }
        });
        assert!(outcomes[1].result);
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let cluster = Cluster::default();
        let outcomes = cluster.run::<(), usize, _>(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            counter.load(Ordering::SeqCst)
        });
        for o in outcomes {
            assert_eq!(o.result, 4);
        }
    }

    #[test]
    fn communication_time_is_charged_to_sender() {
        let cluster = Cluster::new(ClusterTopology::summit());
        let payload_len = 1_000_000usize;
        let outcomes = cluster.run::<Vec<f64>, (), _>(7, |ctx| {
            // Rank 0 sends a large buffer to rank 6 (different node).
            if ctx.rank() == 0 {
                ctx.isend(6, 1, vec![0.0; payload_len]);
            } else if ctx.rank() == 6 {
                let _ = ctx.recv(0, 1);
            }
        });
        let bytes = payload_len * 8;
        let expected = ClusterTopology::summit().transfer_time(0, 6, bytes);
        assert!((outcomes[0].time.communication - expected).abs() < 1e-12);
        assert_eq!(outcomes[6].time.communication, 0.0);
        // The receiver's blocking time shows up as wait.
        assert!(outcomes[6].time.wait >= 0.0);
    }

    #[test]
    fn outcomes_are_ordered_by_rank() {
        let cluster = Cluster::default();
        let outcomes = cluster.run::<(), usize, _>(5, |ctx| ctx.rank() * 10);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.rank, i);
            assert_eq!(o.result, i * 10);
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn send_to_invalid_rank_panics() {
        let cluster = Cluster::default();
        let _ = cluster.run::<(), (), _>(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.isend(5, 0, ());
            }
        });
    }
}
