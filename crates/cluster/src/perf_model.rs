//! Analytic cost primitives for the scaling experiments.
//!
//! The paper's strong-scaling results (Tables II/III, Fig. 7) were measured on
//! up to 4158 V100 GPUs. The reproduction replays the same decomposition
//! geometry against this analytic model instead: operation counts (FFT sizes,
//! probe counts, message bytes) are converted into simulated seconds using a
//! small set of calibration constants. Three effects the paper identifies are
//! modelled explicitly:
//!
//! * the `N log N` growth of the multi-slice FFT work (super-linear speedup
//!   source #1, Sec. VI-C),
//! * improved cache residency as the per-GPU working set shrinks (super-linear
//!   speedup source #2: the paper measures the L1 hit rate rising from 44% to
//!   59% between 24 and 54 GPUs),
//! * link bandwidth/latency for the gradient exchanges (Fig. 7b).
//!
//! Absolute seconds are *calibrated*, not predicted from first principles: the
//! single-node (6 GPU) runtime of each dataset is matched to the paper's
//! Table II/III value and every other configuration follows from the model.

use crate::topology::ClusterTopology;

/// Calibration constants describing one "GPU" of the modelled machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareModel {
    /// The cluster topology (node size, link bandwidths/latencies).
    pub topology: ClusterTopology,
    /// Sustained complex-arithmetic throughput in FLOP/s when the working set
    /// is far larger than the cache (cache-cold regime).
    pub base_flops: f64,
    /// Fast-memory (L2-cache-like) capacity in bytes.
    pub cache_bytes: f64,
    /// Maximum throughput multiplier when the working set fits entirely in
    /// fast memory.
    pub max_cache_speedup: f64,
    /// Fixed per-probe-location overhead in seconds (kernel launches, etc.).
    pub per_probe_overhead: f64,
}

impl Default for HardwareModel {
    fn default() -> Self {
        Self::summit_v100()
    }
}

impl HardwareModel {
    /// A V100-class GPU on Summit, calibrated so the 6-GPU runtimes of the
    /// paper's Tables II/III are reproduced by the scaling model in
    /// `ptycho-core`.
    pub fn summit_v100() -> Self {
        Self {
            topology: ClusterTopology::summit(),
            base_flops: 4.5e10,
            cache_bytes: 6.0 * 1024.0 * 1024.0,
            max_cache_speedup: 6.0,
            per_probe_overhead: 2.0e-4,
        }
    }

    /// Complex FLOPs for one 1D FFT of length `n` (the usual `5·n·log2 n`).
    pub fn fft_flops(n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        5.0 * n as f64 * (n as f64).log2()
    }

    /// Complex FLOPs for one 2D FFT over an `n × n` field.
    pub fn fft2d_flops(n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        // n row FFTs + n column FFTs.
        2.0 * n as f64 * Self::fft_flops(n)
    }

    /// Complex FLOPs for one multi-slice forward pass: a propagation FFT pair
    /// per slice, the far-field FFT, and the elementwise transmissions.
    pub fn multislice_forward_flops(window: usize, slices: usize) -> f64 {
        let ffts = (2 * slices + 1) as f64 * Self::fft2d_flops(window);
        let elementwise = 6.0 * (window * window * slices) as f64;
        ffts + elementwise
    }

    /// Complex FLOPs for one gradient evaluation (forward pass plus the adjoint
    /// sweep, which costs roughly another forward pass and a half).
    pub fn gradient_flops(window: usize, slices: usize) -> f64 {
        2.5 * Self::multislice_forward_flops(window, slices)
    }

    /// The throughput multiplier for a given per-GPU working set: 1 when the
    /// working set dwarfs the cache, rising smoothly to `max_cache_speedup`
    /// when it fits.
    pub fn cache_speedup(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= 0.0 {
            return self.max_cache_speedup;
        }
        let residency = (self.cache_bytes / working_set_bytes).min(1.0);
        1.0 + (self.max_cache_speedup - 1.0) * residency
    }

    /// Seconds to execute `flops` of work against a working set of the given
    /// size.
    pub fn compute_time(&self, flops: f64, working_set_bytes: f64) -> f64 {
        flops / (self.base_flops * self.cache_speedup(working_set_bytes))
    }

    /// Seconds for one gradient evaluation at one probe location.
    pub fn probe_gradient_time(&self, window: usize, slices: usize, working_set_bytes: f64) -> f64 {
        self.per_probe_overhead
            + self.compute_time(Self::gradient_flops(window, slices), working_set_bytes)
    }

    /// Seconds to move `bytes` point-to-point between the given ranks.
    pub fn transfer_time(&self, from: usize, to: usize, bytes: usize) -> f64 {
        self.topology.transfer_time(from, to, bytes)
    }

    /// Seconds for a global all-reduce of `bytes` across `ranks` ranks using a
    /// ring algorithm over the slowest link class involved. This is the
    /// communication pattern the paper rejects in favour of APPP (Sec. V).
    pub fn allreduce_time(&self, bytes: usize, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let t = &self.topology;
        let slowest_bw = if ranks > t.gpus_per_node {
            t.inter_node_bw
        } else {
            t.intra_node_bw
        };
        let latency = if ranks > t.gpus_per_node {
            t.inter_node_latency
        } else {
            t.intra_node_latency
        };
        let steps = 2.0 * (ranks as f64 - 1.0);
        steps * (latency + bytes as f64 / ranks as f64 / slowest_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_flop_counts_scale_n_log_n() {
        assert_eq!(HardwareModel::fft_flops(1), 0.0);
        let f1k = HardwareModel::fft_flops(1024);
        let f2k = HardwareModel::fft_flops(2048);
        // Doubling n slightly more than doubles the work.
        assert!(f2k / f1k > 2.0 && f2k / f1k < 2.4);
        assert_eq!(
            HardwareModel::fft2d_flops(64),
            2.0 * 64.0 * HardwareModel::fft_flops(64)
        );
    }

    #[test]
    fn multislice_flops_grow_with_slices_and_window() {
        let base = HardwareModel::multislice_forward_flops(64, 2);
        assert!(HardwareModel::multislice_forward_flops(64, 4) > base);
        assert!(HardwareModel::multislice_forward_flops(128, 2) > 4.0 * base);
        assert!(HardwareModel::gradient_flops(64, 2) > base);
    }

    #[test]
    fn cache_speedup_bounds_and_monotonicity() {
        let hw = HardwareModel::summit_v100();
        let huge = hw.cache_speedup(1e12);
        let tiny = hw.cache_speedup(1e3);
        assert!(
            (1.0..1.2).contains(&huge),
            "cold working set ~ no speedup, got {huge}"
        );
        assert!((tiny - hw.max_cache_speedup).abs() < 1e-9);
        // Monotone non-increasing in working-set size.
        let mut last = f64::INFINITY;
        for ws in [1e3, 1e5, 1e7, 1e9, 1e11] {
            let s = hw.cache_speedup(ws);
            assert!(s <= last + 1e-12);
            last = s;
        }
    }

    #[test]
    fn compute_time_inversely_proportional_to_speedup() {
        let hw = HardwareModel::summit_v100();
        let flops = 1e12;
        let cold = hw.compute_time(flops, 1e12);
        let hot = hw.compute_time(flops, 1e3);
        assert!(cold > hot);
        assert!((cold / hot - hw.max_cache_speedup / hw.cache_speedup(1e12)).abs() < 1e-6);
    }

    #[test]
    fn probe_gradient_time_includes_overhead() {
        let hw = HardwareModel::summit_v100();
        let t = hw.probe_gradient_time(2, 1, 1e3);
        assert!(t >= hw.per_probe_overhead);
    }

    #[test]
    fn allreduce_grows_with_ranks() {
        let hw = HardwareModel::summit_v100();
        let bytes = 100 * 1024 * 1024;
        assert_eq!(hw.allreduce_time(bytes, 1), 0.0);
        let small = hw.allreduce_time(bytes, 6);
        let large = hw.allreduce_time(bytes, 462);
        assert!(large > small);
    }

    #[test]
    fn point_to_point_prefers_intra_node() {
        let hw = HardwareModel::summit_v100();
        let bytes = 10 * 1024 * 1024;
        assert!(hw.transfer_time(0, 1, bytes) < hw.transfer_time(0, 6, bytes));
    }
}
