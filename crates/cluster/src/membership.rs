//! Rank membership: which physical node runs which tile, and the spare pool.
//!
//! The solvers assign one image tile per *logical rank* (a **slot**). On a
//! production cluster the process occupying a slot — a **node** — can die
//! permanently, and the paper-scale deployments this reproduction models
//! (Summit-class machines) treat that as routine, not exceptional. This
//! module is the bookkeeping layer that lets a run survive it:
//!
//! * [`MembershipView`] is the epoch-numbered slot → node assignment table
//!   shared (read-only) by every live rank of one attempt. It also owns the
//!   **spare pool**: standby node ids that idle unassigned until a failure
//!   detector verdict promotes one.
//! * [`MembershipView::substitute`] is the promotion step: the dead node is
//!   retired, the lowest-numbered spare adopts its slot, and the membership
//!   **epoch** is bumped so every rank (and every seeded fault policy keyed
//!   on wire traffic) can tell the regimes apart.
//! * [`frames`] carves a **control-frame** tag space out of the wire-tag
//!   scheme, disjoint by construction from the reliable layer's data and
//!   acknowledgement tags, for the heartbeat liveness protocol. Control
//!   frames deliberately bypass the reliable layer's sequence accounting
//!   (see `ReliableComm::isend_control`): losing one must never trigger a
//!   retransmission storm, and sending one must never shift a data stream's
//!   sequence numbers.
//!
//! Membership epochs are **not** the reliable layer's wire epochs: a wire
//! epoch ([`crate::ReliableConfig::epoch`]) counts *attempts* (checkpoint
//! restarts and substitutions alike) so retransmit streams never alias
//! across attempts, while a membership epoch counts *promotions* — it only
//! moves when the assignment table changes. A run that restarts twice
//! without losing a node bumps the wire epoch twice and the membership
//! epoch not at all.
//!
//! The failure-detector split mirrors ULFM-style MPI fault tolerance:
//! heartbeats are the in-band *suspicion* signal each rank can observe
//! locally, while the authoritative *verdict* that a node is dead comes
//! from the runtime (in this repository, the simulated backends, which know
//! a killed rank's comm state; on a real cluster, the MPI runtime's revoke
//! notification). The iteration engine in `ptycho-core` acts on verdicts at
//! consistency-barrier boundaries, where every surviving rank's checkpoint
//! provably refers to the same iteration.

use std::collections::VecDeque;

/// The identity of a physical node (process), as opposed to the *slot*
/// (logical rank / tile index) it currently occupies. Node ids are stable
/// for the lifetime of a reconstruction; slots are re-assigned when a node
/// dies and a spare adopts its tile.
pub type NodeId = usize;

/// The control-frame corner of the wire-tag space.
///
/// The reliable layer encodes data frames as `| ack:1 | epoch:8 | seq:24 |
/// tag:24 |` (bits 0..56 plus bit 63). Control frames set bit 62, which no
/// data or acknowledgement tag can ever carry, so the two families cannot
/// alias regardless of payload tag, sequence number or wire epoch.
pub mod frames {
    /// The bit marking a control frame (heartbeats, membership signalling).
    pub const CONTROL_BIT: u64 = 1 << 62;

    /// Bits available for the iteration index inside a heartbeat tag.
    const ITERATION_BITS: u32 = 40;
    /// Bits available for the membership epoch inside a heartbeat tag.
    const EPOCH_BITS: u32 = 14;
    /// Bits available for the attempt (wire) epoch inside a heartbeat tag.
    const ATTEMPT_BITS: u32 = 8;

    /// Encodes a heartbeat frame's wire tag:
    /// `| 0:1 | control:1 | attempt epoch:8 | membership epoch:14 | iteration:40 |`.
    ///
    /// Scoping the tag by attempt epoch, membership epoch *and* iteration
    /// means a heartbeat can only ever match the exact liveness probe it
    /// answers: a stale beat from before a promotion can never be mistaken
    /// for a fresh one, and — because the attempt epoch (the reliable
    /// layer's wire epoch) is unique per attempt — a recorded trace's
    /// `(from, to, tag, seq)` keys stay disjoint across attempts even when
    /// the membership table did not change (a restart without a death), so
    /// accumulated traces replay decision-for-decision.
    pub fn heartbeat_tag(attempt_epoch: u8, membership_epoch: u64, iteration: u64) -> u64 {
        assert!(
            membership_epoch < (1 << EPOCH_BITS),
            "membership epoch {membership_epoch} exceeds the {EPOCH_BITS}-bit heartbeat space"
        );
        assert!(
            iteration < (1 << ITERATION_BITS),
            "iteration {iteration} exceeds the {ITERATION_BITS}-bit heartbeat space"
        );
        CONTROL_BIT
            | ((attempt_epoch as u64) << (ITERATION_BITS + EPOCH_BITS))
            | (membership_epoch << ITERATION_BITS)
            | iteration
    }

    /// The attempt-epoch space is 8 bits wide, matching the reliable
    /// layer's wire epoch ([`crate::ReliableConfig::epoch`]); recovery
    /// drivers must not run more attempts than this.
    pub const MAX_ATTEMPT_EPOCH: u64 = (1 << ATTEMPT_BITS) - 1;

    /// True when `tag` is a control frame (heartbeat / membership signal).
    pub fn is_control(tag: u64) -> bool {
        tag & CONTROL_BIT != 0
    }
}

/// Errors from membership-table updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// A node needed replacing but the spare pool is empty.
    SparesExhausted {
        /// The dead node that could not be replaced.
        dead_node: NodeId,
    },
    /// The node is not currently assigned to any slot (already dead, a
    /// spare, or unknown), so it cannot be substituted.
    NotAssigned {
        /// The offending node id.
        node: NodeId,
    },
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::SparesExhausted { dead_node } => write!(
                f,
                "node {dead_node} died permanently and the spare pool is exhausted"
            ),
            MembershipError::NotAssigned { node } => {
                write!(f, "node {node} is not assigned to any slot")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// The epoch-numbered rank-membership table: which node occupies each slot,
/// which nodes are standing by as spares, and which are dead.
///
/// One instance is shared (read-only) by every rank of an attempt; the
/// recovery driver mutates it between attempts, at consistency-barrier
/// boundaries, and bumps [`MembershipView::epoch`] on every promotion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipView {
    epoch: u64,
    /// `assignment[slot]` is the node currently running that slot's tile.
    assignment: Vec<NodeId>,
    /// Standby nodes, promoted lowest-id first.
    spares: VecDeque<NodeId>,
    /// Nodes retired by a failure-detector verdict, in verdict order.
    dead: Vec<NodeId>,
}

impl MembershipView {
    /// A fresh table: nodes `0..slots` each own their slot, nodes
    /// `slots..slots + spares` stand by in the spare pool, epoch 0.
    pub fn new(slots: usize, spares: usize) -> Self {
        assert!(slots > 0, "need at least one slot");
        Self {
            epoch: 0,
            assignment: (0..slots).collect(),
            spares: (slots..slots + spares).collect(),
            dead: Vec::new(),
        }
    }

    /// Rebuilds a table from its persisted parts — the inverse of reading
    /// [`MembershipView::epoch`] / [`MembershipView::assignment`] /
    /// [`MembershipView::spare_nodes`] / [`MembershipView::dead_nodes`].
    /// Used by the durability layer to restore the membership state a killed
    /// process had committed, substitutions included, so a resumed run
    /// neither re-promotes an already-promoted spare nor re-runs a dead node.
    ///
    /// # Panics
    /// Panics when the parts are inconsistent: an empty assignment, or a
    /// node appearing in more than one of assignment/spares/dead.
    pub fn from_parts(
        epoch: u64,
        assignment: Vec<NodeId>,
        spares: Vec<NodeId>,
        dead: Vec<NodeId>,
    ) -> Self {
        assert!(!assignment.is_empty(), "need at least one slot");
        let mut seen = std::collections::HashSet::new();
        for &node in assignment.iter().chain(spares.iter()).chain(dead.iter()) {
            assert!(
                seen.insert(node),
                "node {node} appears in more than one membership role"
            );
        }
        Self {
            epoch,
            assignment,
            spares: spares.into(),
            dead,
        }
    }

    /// Number of tile slots (logical ranks).
    pub fn slots(&self) -> usize {
        self.assignment.len()
    }

    /// The membership epoch: bumped once per promotion, never otherwise.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The slot → node assignment table.
    pub fn assignment(&self) -> &[NodeId] {
        &self.assignment
    }

    /// The node currently occupying `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn node_for_slot(&self, slot: usize) -> NodeId {
        self.assignment[slot]
    }

    /// The slot a node currently occupies, if any.
    pub fn slot_of_node(&self, node: NodeId) -> Option<usize> {
        self.assignment.iter().position(|&n| n == node)
    }

    /// Number of spares still standing by.
    pub fn spares_remaining(&self) -> usize {
        self.spares.len()
    }

    /// The standby nodes in promotion order (lowest-id first).
    pub fn spare_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.spares.iter().copied()
    }

    /// Nodes retired by failure-detector verdicts, in verdict order.
    pub fn dead_nodes(&self) -> &[NodeId] {
        &self.dead
    }

    /// True when the node has been declared dead.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Every node the view knows about: assigned, standby and dead.
    pub fn total_nodes(&self) -> usize {
        self.assignment.len() + self.spares.len() + self.dead.len()
    }

    /// Acts on a failure-detector verdict: retires `dead_node`, promotes the
    /// lowest-numbered spare into its slot, and bumps the epoch. Returns the
    /// `(slot, replacement)` pair so the caller can hand the adopted slot's
    /// checkpoint to the replacement.
    ///
    /// Fails with [`MembershipError::SparesExhausted`] when the pool is
    /// empty (the node is still marked dead — the verdict stands even when
    /// it cannot be healed) and [`MembershipError::NotAssigned`] when the
    /// node holds no slot.
    pub fn substitute(&mut self, dead_node: NodeId) -> Result<(usize, NodeId), MembershipError> {
        let slot = self
            .slot_of_node(dead_node)
            .ok_or(MembershipError::NotAssigned { node: dead_node })?;
        let Some(replacement) = self.spares.pop_front() else {
            self.dead.push(dead_node);
            return Err(MembershipError::SparesExhausted { dead_node });
        };
        self.dead.push(dead_node);
        self.assignment[slot] = replacement;
        self.epoch += 1;
        Ok((slot, replacement))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::reliable::{wire_ack_tag, wire_data_tag};

    #[test]
    fn fresh_view_assigns_identity_and_parks_spares() {
        let view = MembershipView::new(4, 2);
        assert_eq!(view.slots(), 4);
        assert_eq!(view.epoch(), 0);
        assert_eq!(view.assignment(), &[0, 1, 2, 3]);
        assert_eq!(view.spares_remaining(), 2);
        assert_eq!(view.total_nodes(), 6);
        assert_eq!(view.slot_of_node(3), Some(3));
        assert_eq!(view.slot_of_node(4), None, "spares hold no slot");
    }

    #[test]
    fn substitution_promotes_lowest_spare_and_bumps_epoch() {
        let mut view = MembershipView::new(4, 2);
        let (slot, replacement) = view.substitute(2).expect("a spare is available");
        assert_eq!((slot, replacement), (2, 4));
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.assignment(), &[0, 1, 4, 3]);
        assert!(view.is_dead(2));
        assert_eq!(view.spares_remaining(), 1);
        assert_eq!(view.slot_of_node(4), Some(2));
        // The dead node cannot be substituted twice.
        assert_eq!(
            view.substitute(2),
            Err(MembershipError::NotAssigned { node: 2 })
        );
    }

    #[test]
    fn exhausted_pool_reports_typed_error_and_keeps_the_verdict() {
        let mut view = MembershipView::new(2, 1);
        view.substitute(0).expect("first death is healed");
        let err = view.substitute(1).expect_err("pool is now empty");
        assert_eq!(err, MembershipError::SparesExhausted { dead_node: 1 });
        assert!(view.is_dead(1), "the verdict stands even unhealed");
        assert_eq!(view.epoch(), 1, "no promotion, no epoch bump");
    }

    #[test]
    fn heartbeat_tags_never_alias_reliable_traffic() {
        // Exhaustive-ish sweep: control frames must be disjoint from every
        // data and ack tag the reliable layer can produce.
        let hb = frames::heartbeat_tag(1, 3, 17);
        assert!(frames::is_control(hb));
        for base in [0u64, 0x10, 0xff_ffff] {
            for seq in [0u64, 1, (1 << 24) - 1] {
                for epoch in [0u8, 1, 255] {
                    assert!(!frames::is_control(wire_data_tag(base, seq, epoch)));
                    assert!(!frames::is_control(wire_ack_tag(base, seq, epoch)));
                }
            }
        }
        // Distinct attempt epochs, membership epochs and iterations all give
        // distinct tags.
        assert_ne!(
            frames::heartbeat_tag(0, 0, 5),
            frames::heartbeat_tag(1, 0, 5)
        );
        assert_ne!(
            frames::heartbeat_tag(0, 0, 5),
            frames::heartbeat_tag(0, 1, 5)
        );
        assert_ne!(
            frames::heartbeat_tag(0, 0, 5),
            frames::heartbeat_tag(0, 0, 6)
        );
        // The attempt epoch occupies its own bits even at the extremes.
        assert_ne!(
            frames::heartbeat_tag(255, (1 << 14) - 1, 0),
            frames::heartbeat_tag(254, (1 << 14) - 1, 0)
        );
    }

    #[test]
    #[should_panic(expected = "heartbeat space")]
    fn oversized_heartbeat_epoch_is_rejected() {
        frames::heartbeat_tag(0, 1 << 14, 0);
    }
}
