//! Property-based tests for the membership and fleet-lease invariants.
//!
//! Arbitrary operation sequences are driven against [`MembershipView`] (one
//! job's slot → node table with per-job spares) and [`FleetView`] (the
//! service-wide lease table), pinning the invariants the job engine's
//! correctness rests on:
//!
//! * no node is ever leased to two jobs at once (exclusivity),
//! * a substitution or lease never resurrects a dead node,
//! * every successful mutation bumps the epoch by exactly one and failed
//!   operations never move it (strict monotonicity),
//! * node count is conserved across arbitrary lease/release/retire and
//!   substitute sequences.

use proptest::prelude::*;
use ptycho_cluster::{FleetError, FleetView, JobQueue, MembershipView};
use std::collections::BTreeSet;

/// One symbolic fleet operation; indices are drawn from small ranges and
/// mapped onto jobs/nodes modulo the current population, so every sequence
/// is meaningful regardless of what preceded it.
#[derive(Clone, Copy, Debug)]
enum FleetOp {
    /// Lease `1 + (count % 3)` nodes to job `job % 8`.
    Lease { job: u64, count: usize },
    /// Release job `job % 8`.
    Release { job: u64 },
    /// Retire the `pick`-th currently leased node, if any.
    Retire { pick: usize },
    /// Draw one spare for job `job % 8`.
    DrawSpare { job: u64 },
}

fn fleet_op() -> impl Strategy<Value = FleetOp> {
    (0u32..4, 0u64..8, 0usize..8).prop_map(|(kind, job, pick)| match kind {
        0 => FleetOp::Lease { job, count: pick },
        1 => FleetOp::Release { job },
        2 => FleetOp::Retire { pick },
        _ => FleetOp::DrawSpare { job },
    })
}

/// Every node leased by some job, with exclusivity checked on the way.
fn leased_nodes(fleet: &FleetView, jobs: u64) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    for job in 0..jobs {
        for node in fleet.leased_to(job) {
            assert!(seen.insert(node), "node {node} leased to two jobs at once");
            assert_eq!(fleet.lessee(node), Some(job));
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fleet_invariants_hold_for_arbitrary_op_sequences(
        total in 1usize..12,
        ops in proptest::collection::vec(fleet_op(), 0..40),
    ) {
        let mut fleet = FleetView::new(total);
        let mut ever_dead: BTreeSet<usize> = BTreeSet::new();
        let mut last_epoch = fleet.epoch();
        for op in ops {
            let epoch_before = fleet.epoch();
            let mutated = match op {
                FleetOp::Lease { job, count } => {
                    let job = job % 8;
                    let count = 1 + count % 3;
                    match fleet.lease(job, count) {
                        Ok(nodes) => {
                            prop_assert_eq!(nodes.len(), count);
                            for &node in &nodes {
                                prop_assert!(
                                    !ever_dead.contains(&node),
                                    "lease resurrected dead node {}", node
                                );
                                prop_assert_eq!(fleet.lessee(node), Some(job));
                            }
                            true
                        }
                        Err(FleetError::NotEnoughFree { requested, available, .. }) => {
                            prop_assert_eq!(requested, count);
                            prop_assert!(available < count);
                            false
                        }
                        Err(other) => {
                            prop_assert!(false, "unexpected lease error: {}", other);
                            false
                        }
                    }
                }
                FleetOp::Release { job } => !fleet.release(job % 8).is_empty(),
                FleetOp::Retire { pick } => {
                    let leased: Vec<usize> =
                        leased_nodes(&fleet, 8).into_iter().collect();
                    if leased.is_empty() {
                        false
                    } else {
                        let node = leased[pick % leased.len()];
                        prop_assert!(fleet.retire(node).is_ok());
                        ever_dead.insert(node);
                        prop_assert!(fleet.is_dead(node));
                        true
                    }
                }
                FleetOp::DrawSpare { job } => {
                    let job = job % 8;
                    match fleet.draw_spare(job) {
                        Some(node) => {
                            prop_assert!(!ever_dead.contains(&node));
                            prop_assert_eq!(fleet.lessee(node), Some(job));
                            true
                        }
                        None => false,
                    }
                }
            };
            // Epoch: +1 per successful mutation, untouched otherwise.
            let expected = if mutated { epoch_before + 1 } else { epoch_before };
            prop_assert_eq!(fleet.epoch(), expected);
            prop_assert!(fleet.epoch() >= last_epoch, "epoch went backwards");
            last_epoch = fleet.epoch();
            // Conservation: free + leased + dead always covers the fleet.
            prop_assert!(fleet.is_conserved());
            prop_assert_eq!(
                fleet.free_count() + fleet.leased_count() + fleet.dead_count(),
                total
            );
            // Dead nodes never reappear anywhere.
            let leased = leased_nodes(&fleet, 8);
            for node in &ever_dead {
                prop_assert!(!leased.contains(node));
                prop_assert!(fleet.is_dead(*node));
            }
            prop_assert_eq!(ever_dead.len(), fleet.dead_count());
        }
    }

    #[test]
    fn membership_substitutions_never_resurrect_and_bump_epoch_once(
        slots in 1usize..6,
        spares in 0usize..6,
        kills in proptest::collection::vec(0usize..6, 0..8),
    ) {
        let mut view = MembershipView::new(slots, spares);
        let total = view.total_nodes();
        let mut epoch = view.epoch();
        prop_assert_eq!(epoch, 0);
        for pick in kills {
            // Kill some currently assigned node (dead or spare nodes are
            // not valid verdicts — the engine only reports assigned ones).
            let node = view.assignment()[pick % view.slots()];
            let before = view.epoch();
            match view.substitute(node) {
                Ok((slot, replacement)) => {
                    // The replacement adopts exactly the dead node's slot.
                    prop_assert_eq!(view.node_for_slot(slot), replacement);
                    prop_assert!(replacement != node);
                    prop_assert!(!view.is_dead(replacement));
                    prop_assert!(view.is_dead(node));
                    // The dead node holds no slot anymore...
                    prop_assert_eq!(view.slot_of_node(node), None);
                    // ...and the epoch moved by exactly one.
                    prop_assert_eq!(view.epoch(), before + 1);
                }
                Err(_) => {
                    // Spare pool exhausted: the verdict stands (the node is
                    // marked dead) but no promotion happens and the epoch
                    // does not move. The engine aborts the run here, so the
                    // view sees no further operations.
                    prop_assert_eq!(view.epoch(), before);
                    prop_assert_eq!(view.spares_remaining(), 0);
                    prop_assert!(view.is_dead(node));
                    break;
                }
            }
            prop_assert!(view.epoch() >= epoch);
            epoch = view.epoch();
            // Conservation: assigned + spares + dead is the fixed node set.
            prop_assert_eq!(view.total_nodes(), total);
            // No dead node is ever assigned to any slot.
            for &assigned in view.assignment() {
                prop_assert!(!view.is_dead(assigned));
            }
            // Assignment stays a set (no node in two slots).
            let unique: BTreeSet<usize> = view.assignment().iter().copied().collect();
            prop_assert_eq!(unique.len(), view.slots());
        }
    }

    #[test]
    fn queue_admission_is_priority_then_fifo(
        jobs in proptest::collection::vec((-5i32..5, 1usize..4), 1..12),
    ) {
        let mut queue = JobQueue::new();
        for (id, &(priority, slots)) in jobs.iter().enumerate() {
            queue.push(id as u64, priority, slots);
        }
        // Drain with unlimited capacity: admission order must be exactly
        // the submission order sorted by (priority desc, submission asc).
        let mut drained = Vec::new();
        while let Some(entry) = queue.pop_admissible(usize::MAX) {
            drained.push((entry.priority, entry.job));
        }
        prop_assert_eq!(drained.len(), jobs.len());
        let mut expected: Vec<(i32, u64)> = jobs
            .iter()
            .enumerate()
            .map(|(id, &(priority, _))| (priority, id as u64))
            .collect();
        expected.sort_by_key(|&(priority, id)| (std::cmp::Reverse(priority), id));
        prop_assert_eq!(drained, expected);
    }
}
