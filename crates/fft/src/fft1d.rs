//! Radix-2 decimation-in-time FFT plans for power-of-two lengths.

use crate::Complex64;
use std::f64::consts::PI;

/// A reusable plan for 1D FFTs of a fixed power-of-two length.
///
/// The plan caches the bit-reversal permutation and *per-stage* twiddle
/// tables for both directions, so repeated transforms (the common case in the
/// multi-slice model, which transforms every slice of every probe — the
/// hottest loop in the repository) pay only the O(N log N) butterfly work,
/// with no per-butterfly direction branch, strided table walk or conjugation.
/// All methods are in-place over `&mut [Complex64]` — this is the
/// zero-allocation entry point.
#[derive(Clone, Debug)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversed index for every position.
    bit_rev: Vec<u32>,
    /// Forward twiddles `e^{-2πik/N}`, one contiguous table per butterfly
    /// stage (stage `s` holds `2^s` entries), so the innermost loop walks
    /// them sequentially.
    forward_stages: Vec<Vec<Complex64>>,
    /// The same tables conjugated (exact), for the inverse direction.
    inverse_stages: Vec<Vec<Complex64>>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`.
    ///
    /// # Panics
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "FFT length must be non-zero");
        assert!(
            len.is_power_of_two(),
            "FFT length must be a power of two, got {len}"
        );
        let bits = len.trailing_zeros();
        let bit_rev = (0..len as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // For len == 1 the shift above would be wrong; special-case it.
        let bit_rev = if len == 1 { vec![0] } else { bit_rev };
        // Base table `e^{-2πik/N}` for `k in 0..N/2`; the per-stage tables
        // index into it (stage of size `s` uses stride `N/s`), so the stage
        // entries are bit-identical to the strided lookups they replace.
        let twiddles: Vec<Complex64> = (0..len / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / len as f64))
            .collect();
        let mut forward_stages: Vec<Vec<Complex64>> = Vec::new();
        let mut size = 2usize;
        while size <= len {
            let half = size / 2;
            let stride = len / size;
            forward_stages.push((0..half).map(|k| twiddles[k * stride]).collect());
            size *= 2;
        }
        let inverse_stages: Vec<Vec<Complex64>> = forward_stages
            .iter()
            .map(|stage| stage.iter().map(|tw| tw.conj()).collect())
            .collect();
        Self {
            len,
            bit_rev,
            forward_stages,
            inverse_stages,
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True only for the degenerate length-0 plan (which cannot be constructed);
    /// present to satisfy the `len/is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place forward transform (unnormalised).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Forward);
    }

    /// In-place inverse transform (normalised by `1/N`).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
        let scale = 1.0 / self.len as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// In-place inverse transform *without* the `1/N` normalisation.
    ///
    /// Useful when a forward/inverse pair brackets an elementwise operation and
    /// the caller wants to fold the normalisation into that operation.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
    }

    fn transform(&self, data: &mut [Complex64], direction: Direction) {
        assert_eq!(
            data.len(),
            self.len,
            "FFT plan length {} does not match data length {}",
            self.len,
            data.len()
        );
        let n = self.len;
        if n == 1 {
            return;
        }

        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }

        // Iterative Cooley-Tukey butterflies. Each stage walks its
        // precomputed twiddle table sequentially; the split/zip iteration
        // lets the compiler drop the bounds checks from the innermost loop.
        let stages = match direction {
            Direction::Forward => &self.forward_stages,
            Direction::Inverse => &self.inverse_stages,
        };
        let mut size = 2usize;
        for stage in stages {
            for chunk in data.chunks_exact_mut(size) {
                let (lo, hi) = chunk.split_at_mut(size / 2);
                for ((a, b), tw) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                    let t = *b * *tw;
                    let u = *a;
                    *a = u + t;
                    *b = u - t;
                }
            }
            size *= 2;
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// Convenience one-shot forward FFT (builds a throwaway plan).
pub fn fft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).forward(data);
}

/// Convenience one-shot inverse FFT (builds a throwaway plan).
pub fn ifft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut data = vec![Complex64::new(3.0, -2.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -2.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -2.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 16;
        let plan = FftPlan::new(n);
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        plan.forward(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 8;
        let plan = FftPlan::new(n);
        let mut data = vec![Complex64::ONE; n];
        plan.forward(&mut data);
        assert!((data[0] - Complex64::from_real(n as f64)).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let k0 = 5;
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        plan.forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "bin {k} should be empty, got {v:?}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
                .collect();
            let mut fast = input.clone();
            plan.forward(&mut fast);
            let slow = dft::dft(&input);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        let n = 64;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 1.3).cos(), (i as f64 * 0.11).sin()))
            .collect();
        let mut fast = input.clone();
        plan.inverse(&mut fast);
        let slow = dft::idft(&input);
        assert_close(&fast, &slow, 1e-9 * n as f64);
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 256;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i * i % 97) as f64 / 97.0, (i % 13) as f64 / 13.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 / 3.0).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = input.clone();
        plan.forward(&mut spec);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (n - i) as f64))
            .collect();
        let alpha = Complex64::new(2.0, -1.0);

        let mut lhs: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * alpha + *y).collect();
        plan.forward(&mut lhs);

        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * alpha + *y).collect();

        assert_close(&lhs, &rhs, 1e-8);
    }

    #[test]
    fn unnormalized_inverse_differs_by_n() {
        let n = 16;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n).map(|i| Complex64::from_real(i as f64)).collect();
        let mut a = input.clone();
        let mut b = input.clone();
        plan.inverse(&mut a);
        plan.inverse_unnormalized(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.scale(n as f64) - *y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn one_shot_helpers_roundtrip() {
        let input: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let mut data = input.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_close(&data, &input, 1e-10);
    }
}
