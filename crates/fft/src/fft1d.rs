//! Radix-2 decimation-in-time FFT plans for power-of-two lengths.

use crate::simd::{self, SimdLevel};
use crate::Complex64;
use std::f64::consts::PI;

/// A reusable plan for 1D FFTs of a fixed power-of-two length.
///
/// The plan caches the bit-reversal permutation and *per-stage* twiddle
/// tables for both directions, so repeated transforms (the common case in the
/// multi-slice model, which transforms every slice of every probe — the
/// hottest loop in the repository) pay only the O(N log N) butterfly work,
/// with no per-butterfly direction branch, strided table walk or conjugation.
/// All methods are in-place over `&mut [Complex64]` — this is the
/// zero-allocation entry point.
#[derive(Clone, Debug)]
pub struct FftPlan {
    len: usize,
    /// Bit-reversed index for every position.
    bit_rev: Vec<u32>,
    /// Forward twiddles `e^{-2πik/N}`, one contiguous table per butterfly
    /// stage (stage `s` holds `2^s` entries), so the innermost loop walks
    /// them sequentially.
    forward_stages: Vec<Vec<Complex64>>,
    /// The same tables conjugated (exact), for the inverse direction.
    inverse_stages: Vec<Vec<Complex64>>,
    /// The SIMD tier the butterfly loop dispatches to, fixed at construction
    /// (see [`SimdLevel::detect`]).
    level: SimdLevel,
}

impl FftPlan {
    /// Creates a plan for transforms of length `len`, dispatching the
    /// butterfly loop at the best SIMD tier this machine supports.
    ///
    /// # Panics
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize) -> Self {
        Self::with_simd_level(len, SimdLevel::detect())
    }

    /// Creates a plan pinned to a specific SIMD tier — the bench/test entry
    /// point for comparing tiers on one machine. Prefer [`FftPlan::new`].
    ///
    /// # Panics
    /// Panics if `len` is invalid or `level` is not available on this
    /// machine/build (e.g. `Avx2` without the `simd` feature).
    pub fn with_simd_level(len: usize, level: SimdLevel) -> Self {
        assert!(
            level.is_available(),
            "SIMD level {level:?} is not available on this machine/build"
        );
        assert!(len > 0, "FFT length must be non-zero");
        assert!(
            len.is_power_of_two(),
            "FFT length must be a power of two, got {len}"
        );
        let bits = len.trailing_zeros();
        let bit_rev = (0..len as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // For len == 1 the shift above would be wrong; special-case it.
        let bit_rev = if len == 1 { vec![0] } else { bit_rev };
        // Base table `e^{-2πik/N}` for `k in 0..N/2`; the per-stage tables
        // index into it (stage of size `s` uses stride `N/s`), so the stage
        // entries are bit-identical to the strided lookups they replace.
        let twiddles: Vec<Complex64> = (0..len / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / len as f64))
            .collect();
        let mut forward_stages: Vec<Vec<Complex64>> = Vec::new();
        let mut size = 2usize;
        while size <= len {
            let half = size / 2;
            let stride = len / size;
            forward_stages.push((0..half).map(|k| twiddles[k * stride]).collect());
            size *= 2;
        }
        let inverse_stages: Vec<Vec<Complex64>> = forward_stages
            .iter()
            .map(|stage| stage.iter().map(|tw| tw.conj()).collect())
            .collect();
        Self {
            len,
            bit_rev,
            forward_stages,
            inverse_stages,
            level,
        }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The SIMD tier this plan's butterflies run at.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// True only for the degenerate length-0 plan (which cannot be constructed);
    /// present to satisfy the `len/is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place forward transform (unnormalised).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Forward);
    }

    /// In-place inverse transform (normalised by `1/N`).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
        let scale = 1.0 / self.len as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// In-place inverse transform *without* the `1/N` normalisation.
    ///
    /// Useful when a forward/inverse pair brackets an elementwise operation and
    /// the caller wants to fold the normalisation into that operation.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64]) {
        self.transform(data, Direction::Inverse);
    }

    fn transform(&self, data: &mut [Complex64], direction: Direction) {
        assert_eq!(
            data.len(),
            self.len,
            "FFT plan length {} does not match data length {}",
            self.len,
            data.len()
        );
        if self.len == 1 {
            return;
        }

        self.permute(data);

        // Iterative Cooley-Tukey butterflies. Each stage walks its
        // precomputed twiddle table sequentially; the kernel is dispatched
        // once per stage at the tier fixed at plan construction (see the
        // `simd` module for the per-tier numerics contract).
        let stages = match direction {
            Direction::Forward => &self.forward_stages,
            Direction::Inverse => &self.inverse_stages,
        };
        let mut size = 2usize;
        for stage in stages {
            simd::butterfly_pass(self.level, data, size, stage);
            size *= 2;
        }
    }

    /// Applies the bit-reversal permutation — shared with the pruned partial
    /// plans, which interleave their own stage loop.
    pub(crate) fn permute(&self, data: &mut [Complex64]) {
        for i in 0..self.len {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    /// Per-stage twiddle tables for the given direction (stage `s` holds
    /// `2^s` entries) — shared with the pruned partial plans.
    pub(crate) fn stages(&self, forward: bool) -> &[Vec<Complex64>] {
        if forward {
            &self.forward_stages
        } else {
            &self.inverse_stages
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// Convenience one-shot forward FFT (builds a throwaway plan).
pub fn fft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).forward(data);
}

/// Convenience one-shot inverse FFT (builds a throwaway plan).
pub fn ifft(data: &mut [Complex64]) {
    FftPlan::new(data.len()).inverse(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut data = vec![Complex64::new(3.0, -2.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -2.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -2.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 16;
        let plan = FftPlan::new(n);
        let mut data = vec![Complex64::ZERO; n];
        data[0] = Complex64::ONE;
        plan.forward(&mut data);
        for v in &data {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 8;
        let plan = FftPlan::new(n);
        let mut data = vec![Complex64::ONE; n];
        plan.forward(&mut data);
        assert!((data[0] - Complex64::from_real(n as f64)).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let k0 = 5;
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        plan.forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "bin {k} should be empty, got {v:?}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 16, 64, 128] {
            let plan = FftPlan::new(n);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
                .collect();
            let mut fast = input.clone();
            plan.forward(&mut fast);
            let slow = dft::dft(&input);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        let n = 64;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 1.3).cos(), (i as f64 * 0.11).sin()))
            .collect();
        let mut fast = input.clone();
        plan.inverse(&mut fast);
        let slow = dft::idft(&input);
        assert_close(&fast, &slow, 1e-9 * n as f64);
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 256;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i * i % 97) as f64 / 97.0, (i % 13) as f64 / 13.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 / 3.0).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
        let mut spec = input.clone();
        plan.forward(&mut spec);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (n - i) as f64))
            .collect();
        let alpha = Complex64::new(2.0, -1.0);

        let mut lhs: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * alpha + *y).collect();
        plan.forward(&mut lhs);

        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let rhs: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x * alpha + *y).collect();

        assert_close(&lhs, &rhs, 1e-8);
    }

    #[test]
    fn unnormalized_inverse_differs_by_n() {
        let n = 16;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n).map(|i| Complex64::from_real(i as f64)).collect();
        let mut a = input.clone();
        let mut b = input.clone();
        plan.inverse(&mut a);
        plan.inverse_unnormalized(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.scale(n as f64) - *y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn wrong_length_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex64::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn sse2_plan_bit_identical_to_scalar_plan() {
        if !SimdLevel::Sse2.is_available() {
            return;
        }
        for &n in &[2usize, 8, 64, 256, 1024] {
            let scalar_plan = FftPlan::with_simd_level(n, SimdLevel::Scalar);
            let sse2_plan = FftPlan::with_simd_level(n, SimdLevel::Sse2);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.83).sin(), (i as f64 * 0.19).cos()))
                .collect();
            let mut a = input.clone();
            let mut b = input.clone();
            scalar_plan.forward(&mut a);
            sse2_plan.forward(&mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
            scalar_plan.inverse(&mut a);
            sse2_plan.inverse(&mut b);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn avx2_plan_matches_scalar_within_documented_ulp_bound() {
        if !SimdLevel::Avx2.is_available() {
            return;
        }
        for &n in &[4usize, 16, 256, 1024] {
            let scalar_plan = FftPlan::with_simd_level(n, SimdLevel::Scalar);
            let avx2_plan = FftPlan::with_simd_level(n, SimdLevel::Avx2);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.83).sin(), (i as f64 * 0.19).cos()))
                .collect();
            let mut a = input.clone();
            let mut b = input.clone();
            scalar_plan.forward(&mut a);
            avx2_plan.forward(&mut b);
            // The documented bound from the `simd` module: 8·log2(n)·ε·M.
            let max_mag = a.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
            let tol = 8.0 * (n as f64).log2() * f64::EPSILON * max_mag.max(1.0);
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (*x - *y).abs() <= tol,
                    "n={n}: {x:?} vs {y:?} (tol {tol:e})"
                );
            }
        }
    }

    #[test]
    fn detected_level_roundtrip_recovers_signal() {
        let n = 512;
        let plan = FftPlan::new(n);
        assert_eq!(plan.simd_level(), SimdLevel::detect());
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i % 37) as f64 / 37.0, (i % 11) as f64 / 11.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn unavailable_level_panics() {
        if SimdLevel::Avx2.is_available() {
            // Can't demonstrate on this machine; fake the expected panic so
            // the #[should_panic] contract still holds.
            panic!("SIMD level Avx2 is not available on this machine/build");
        }
        let _ = FftPlan::with_simd_level(8, SimdLevel::Avx2);
    }

    #[test]
    fn one_shot_helpers_roundtrip() {
        let input: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let mut data = input.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_close(&data, &input, 1e-10);
    }
}
