//! 2D fast Fourier transforms over [`Array2<Complex64>`](ptycho_array::Array2).
//!
//! The 2D transform is computed as a row pass followed by a column pass
//! (implemented as transpose → row pass → transpose so that both passes stream
//! through contiguous memory). A Rayon-parallel driver is provided for the
//! large fields of the forward model; the paper's CUDA kernels parallelise the
//! same way across GPU threads.

use crate::{CArray2, Complex64, FftPlan};
use ptycho_array::Array2;
use rayon::prelude::*;

/// A reusable plan for 2D FFTs of a fixed `(rows, cols)` shape (both powers of
/// two).
#[derive(Clone, Debug)]
pub struct Fft2Plan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2Plan {
    /// Creates a plan for `rows x cols` transforms.
    ///
    /// # Panics
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_plan: FftPlan::new(cols),
            col_plan: FftPlan::new(rows),
        }
    }

    /// `(rows, cols)` shape the plan was built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Forward 2D transform (unnormalised), serial driver.
    pub fn forward(&self, field: &CArray2) -> CArray2 {
        self.transform(field, true, false)
    }

    /// Inverse 2D transform (normalised by `1/(rows·cols)`), serial driver.
    pub fn inverse(&self, field: &CArray2) -> CArray2 {
        self.transform(field, false, false)
    }

    /// Forward 2D transform using Rayon to parallelise across rows/columns.
    pub fn forward_par(&self, field: &CArray2) -> CArray2 {
        self.transform(field, true, true)
    }

    /// Inverse 2D transform using Rayon to parallelise across rows/columns.
    pub fn inverse_par(&self, field: &CArray2) -> CArray2 {
        self.transform(field, false, true)
    }

    fn transform(&self, field: &CArray2, forward: bool, parallel: bool) -> CArray2 {
        assert_eq!(
            field.shape(),
            (self.rows, self.cols),
            "Fft2Plan shape {:?} does not match field shape {:?}",
            (self.rows, self.cols),
            field.shape()
        );

        // Row pass.
        let mut data = field.clone();
        Self::row_pass(&mut data, &self.row_plan, forward, parallel);

        // Column pass via transpose so both passes stream contiguous rows. The
        // inverse row/column passes each apply 1/len along their own axis, so
        // the combined inverse normalisation of 1/(rows*cols) needs no extra step.
        let mut transposed = data.transposed();
        Self::row_pass(&mut transposed, &self.col_plan, forward, parallel);
        transposed.transposed()
    }

    fn row_pass(data: &mut CArray2, plan: &FftPlan, forward: bool, parallel: bool) {
        let cols = data.cols();
        let buf = data.as_mut_slice();
        let apply = |row: &mut [Complex64]| {
            if forward {
                plan.forward(row);
            } else {
                plan.inverse(row);
            }
        };
        if parallel {
            buf.par_chunks_mut(cols).for_each(apply);
        } else {
            buf.chunks_mut(cols).for_each(apply);
        }
    }
}

/// One-shot forward 2D FFT (builds a throwaway plan).
pub fn fft2(field: &CArray2) -> CArray2 {
    Fft2Plan::new(field.rows(), field.cols()).forward(field)
}

/// One-shot inverse 2D FFT (builds a throwaway plan).
pub fn ifft2(field: &CArray2) -> CArray2 {
    Fft2Plan::new(field.rows(), field.cols()).inverse(field)
}

/// Circularly shifts the zero-frequency component to the centre of the array.
///
/// For even dimensions `fftshift` and [`ifftshift`] coincide; both are provided
/// for readability at call sites.
pub fn fftshift<T: Clone + Default>(field: &Array2<T>) -> Array2<T> {
    roll(field, (field.rows() / 2) as i64, (field.cols() / 2) as i64)
}

/// Inverse of [`fftshift`].
pub fn ifftshift<T: Clone + Default>(field: &Array2<T>) -> Array2<T> {
    roll(
        field,
        (field.rows() - field.rows() / 2) as i64,
        (field.cols() - field.cols() / 2) as i64,
    )
}

/// Circularly rolls the array contents by `(drow, dcol)` (positive = down/right).
pub fn roll<T: Clone + Default>(field: &Array2<T>, drow: i64, dcol: i64) -> Array2<T> {
    let rows = field.rows() as i64;
    let cols = field.cols() as i64;
    if rows == 0 || cols == 0 {
        return field.clone();
    }
    Array2::from_fn(field.rows(), field.cols(), |r, c| {
        let sr = (r as i64 - drow).rem_euclid(rows) as usize;
        let sc = (c as i64 - dcol).rem_euclid(cols) as usize;
        field[(sr, sc)].clone()
    })
}

/// The squared magnitude of every element (diffraction intensity).
pub fn intensity(field: &CArray2) -> Array2<f64> {
    field.map(|v| v.norm_sqr())
}

/// The magnitude of every element (diffraction amplitude).
pub fn amplitude(field: &CArray2) -> Array2<f64> {
    field.map(|v| v.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn test_field(rows: usize, cols: usize) -> CArray2 {
        Array2::from_fn(rows, cols, |r, c| {
            Complex64::new(
                ((r * 13 + c * 7) as f64 * 0.13).sin(),
                ((r * 5 + c * 3) as f64 * 0.29).cos(),
            )
        })
    }

    /// Reference 2D DFT built from the naive 1D DFT.
    fn dft2_reference(field: &CArray2) -> CArray2 {
        let (rows, cols) = field.shape();
        // Rows first.
        let mut row_passed = Array2::full(rows, cols, Complex64::ZERO);
        for r in 0..rows {
            let spectrum = dft::dft(field.row(r));
            for c in 0..cols {
                row_passed[(r, c)] = spectrum[c];
            }
        }
        // Then columns.
        let mut out = Array2::full(rows, cols, Complex64::ZERO);
        for c in 0..cols {
            let column: Vec<Complex64> = (0..rows).map(|r| row_passed[(r, c)]).collect();
            let spectrum = dft::dft(&column);
            for r in 0..rows {
                out[(r, c)] = spectrum[r];
            }
        }
        out
    }

    fn assert_fields_close(a: &CArray2, b: &CArray2, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_reference_dft2() {
        let field = test_field(8, 16);
        let fast = fft2(&field);
        let slow = dft2_reference(&field);
        assert_fields_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let field = test_field(16, 8);
        let back = ifft2(&fft2(&field));
        assert_fields_close(&back, &field, 1e-10);
    }

    #[test]
    fn parallel_matches_serial() {
        let field = test_field(32, 32);
        let plan = Fft2Plan::new(32, 32);
        assert_fields_close(&plan.forward_par(&field), &plan.forward(&field), 1e-12);
        assert_fields_close(&plan.inverse_par(&field), &plan.inverse(&field), 1e-12);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut field = Array2::full(8, 8, Complex64::ZERO);
        field[(0, 0)] = Complex64::ONE;
        let spectrum = fft2(&field);
        for v in spectrum.as_slice() {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_2d() {
        let field = test_field(16, 16);
        let spectrum = fft2(&field);
        let spatial: f64 = field.as_slice().iter().map(|v| v.norm_sqr()).sum();
        let spectral: f64 = spectrum
            .as_slice()
            .iter()
            .map(|v| v.norm_sqr())
            .sum::<f64>()
            / (16.0 * 16.0);
        assert!((spatial - spectral).abs() < 1e-8 * spatial.max(1.0));
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let mut field = Array2::full(8, 8, Complex64::ZERO);
        field[(0, 0)] = Complex64::ONE;
        let shifted = fftshift(&field);
        assert!((shifted[(4, 4)] - Complex64::ONE).abs() < 1e-15);
        assert!(shifted[(0, 0)].abs() < 1e-15);
    }

    #[test]
    fn fftshift_ifftshift_roundtrip_even_and_odd() {
        for &(rows, cols) in &[(8usize, 8usize), (7, 9), (6, 5)] {
            let field: Array2<f64> = Array2::from_fn(rows, cols, |r, c| (r * cols + c) as f64);
            let back = ifftshift(&fftshift(&field));
            assert_eq!(back, field, "roundtrip failed for {rows}x{cols}");
        }
    }

    #[test]
    fn roll_wraps_around() {
        let field: Array2<i32> = Array2::from_fn(3, 3, |r, c| (r * 3 + c) as i32);
        let rolled = roll(&field, 1, 1);
        assert_eq!(rolled[(0, 0)], field[(2, 2)]);
        assert_eq!(rolled[(1, 1)], field[(0, 0)]);
        let back = roll(&rolled, -1, -1);
        assert_eq!(back, field);
    }

    #[test]
    fn intensity_and_amplitude() {
        let field = Array2::full(2, 2, Complex64::new(3.0, 4.0));
        let i = intensity(&field);
        let a = amplitude(&field);
        assert!(i.iter().all(|&v| (v - 25.0).abs() < 1e-12));
        assert!(a.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "does not match field shape")]
    fn plan_shape_mismatch_panics() {
        let plan = Fft2Plan::new(8, 8);
        let field = Array2::full(4, 4, Complex64::ZERO);
        let _ = plan.forward(&field);
    }
}
