//! 2D fast Fourier transforms over [`Array2<Complex64>`](ptycho_array::Array2).
//!
//! The 2D transform is computed as a row pass followed by a column pass
//! (implemented as transpose → row pass → transpose so that both passes stream
//! through contiguous memory). A Rayon-parallel driver is provided for the
//! large fields of the forward model; the paper's CUDA kernels parallelise the
//! same way across GPU threads.
//!
//! # In-place transforms and workspaces
//!
//! The hot path of the reconstruction (one FFT pair per slice per probe
//! location) must not allocate. [`Fft2Plan::forward_in_place`] /
//! [`Fft2Plan::inverse_in_place`] transform a field in its own storage,
//! ping-ponging the column pass through a caller-owned [`Fft2Scratch`]
//! transpose buffer, so a warmed-up transform performs zero heap allocations.
//! The by-value methods ([`Fft2Plan::forward`] and friends) are thin wrappers
//! that clone the input and build a throwaway scratch — convenient for cold
//! paths, tests and examples.

use crate::simd::{self, SimdLevel};
use crate::{CArray2, Complex64, FftPlan};
use ptycho_array::Array2;
use rayon::prelude::*;

/// Minimum number of elements (`rows × cols`) before the `*_par` drivers
/// actually fan out across Rayon workers.
///
/// Tuning methodology (re-measured for ISSUE 8; keys in
/// `BENCH_baseline.json` / `benches/fft.rs`): the crossover is where the
/// per-row task grows large enough to amortise the fixed worker hand-off
/// cost, so it is found by comparing `fft_2d/serial/{n}` against
/// `fft_2d/rayon_parallel/{n}` on a multi-core host. The committed
/// multi-core scalar measurements put parity at 256 px (2.415 ms parallel vs
/// 2.392 ms serial; at 128 px parallel *loses*, 491 µs vs 468 µs). The SIMD
/// build roughly halves the arithmetic per row (fresh 1-CPU-runner
/// measurements: `fft_simd/avx2_256` 945 µs vs `fft_simd/scalar_256`
/// 1.90 ms) while the hand-off cost is unchanged, which pushes the parity
/// point up by about one power-of-two size — hence the higher threshold
/// under `--features simd`. Single-core runners cannot observe the
/// crossover at all (the vendored Rayon runs inline when
/// `available_parallelism() == 1`), so the nightly runner-native baseline
/// refresh is the place to revisit both values.
#[cfg(not(feature = "simd"))]
pub const PARALLEL_MIN_ELEMS: usize = 256 * 256;
/// SIMD builds: see the methodology note on the scalar definition above.
#[cfg(feature = "simd")]
pub const PARALLEL_MIN_ELEMS: usize = 512 * 512;

/// A reusable plan for 2D FFTs of a fixed `(rows, cols)` shape (both powers of
/// two).
#[derive(Clone, Debug)]
pub struct Fft2Plan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
    /// SIMD tier shared by the row/column plans and the blocked transpose.
    level: SimdLevel,
}

/// Caller-owned workspace for the in-place 2D transforms: one `rows × cols`
/// transpose (ping-pong) buffer, allocated once and reused for every
/// transform of the matching plan.
#[derive(Clone, Debug)]
pub struct Fft2Scratch {
    rows: usize,
    cols: usize,
    /// The ping-pong buffer — shared with the pruned partial plans.
    pub(crate) buf: Vec<Complex64>,
}

impl Fft2Scratch {
    /// Allocates a scratch buffer for `rows × cols` transforms (the
    /// [`crate::partial::PartialFft2Plan`] entry point; dense-plan users
    /// normally go through [`Fft2Scratch::for_plan`]).
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            buf: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Allocates a scratch buffer sized for `plan`.
    pub fn for_plan(plan: &Fft2Plan) -> Self {
        let (rows, cols) = plan.shape();
        Self::new(rows, cols)
    }

    /// The `(rows, cols)` plan shape this scratch was sized for.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl Fft2Plan {
    /// Creates a plan for `rows x cols` transforms, dispatching butterflies
    /// and transposes at the best SIMD tier this machine supports.
    ///
    /// # Panics
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_simd_level(rows, cols, SimdLevel::detect())
    }

    /// Creates a plan pinned to a specific SIMD tier (bench/test entry
    /// point). Prefer [`Fft2Plan::new`].
    ///
    /// # Panics
    /// Panics if a dimension is invalid or `level` is unavailable.
    pub fn with_simd_level(rows: usize, cols: usize, level: SimdLevel) -> Self {
        Self {
            rows,
            cols,
            row_plan: FftPlan::with_simd_level(cols, level),
            col_plan: FftPlan::with_simd_level(rows, level),
            level,
        }
    }

    /// `(rows, cols)` shape the plan was built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The SIMD tier this plan's kernels run at.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// Forward 2D transform (unnormalised), serial driver. Thin by-value
    /// wrapper over [`Self::forward_in_place`] (clones the input and builds a
    /// throwaway scratch; hot paths should hold a [`Fft2Scratch`] instead).
    pub fn forward(&self, field: &CArray2) -> CArray2 {
        self.transform(field, true, false)
    }

    /// Inverse 2D transform (normalised by `1/(rows·cols)`), serial driver.
    /// Thin by-value wrapper over [`Self::inverse_in_place`].
    pub fn inverse(&self, field: &CArray2) -> CArray2 {
        self.transform(field, false, false)
    }

    /// Forward 2D transform using Rayon to parallelise across rows/columns
    /// (serial below [`PARALLEL_MIN_ELEMS`]).
    pub fn forward_par(&self, field: &CArray2) -> CArray2 {
        self.transform(field, true, true)
    }

    /// Inverse 2D transform using Rayon to parallelise across rows/columns
    /// (serial below [`PARALLEL_MIN_ELEMS`]).
    pub fn inverse_par(&self, field: &CArray2) -> CArray2 {
        self.transform(field, false, true)
    }

    /// In-place forward 2D transform (unnormalised): zero heap allocations,
    /// the column pass ping-pongs through `scratch`.
    pub fn forward_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.transform_in_place(field, scratch, true, false);
    }

    /// In-place inverse 2D transform (normalised by `1/(rows·cols)`): zero
    /// heap allocations.
    pub fn inverse_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.transform_in_place(field, scratch, false, false);
    }

    /// In-place forward transform with the Rayon row driver (serial below
    /// [`PARALLEL_MIN_ELEMS`]).
    pub fn forward_par_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.transform_in_place(field, scratch, true, true);
    }

    /// In-place inverse transform with the Rayon row driver (serial below
    /// [`PARALLEL_MIN_ELEMS`]).
    pub fn inverse_par_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.transform_in_place(field, scratch, false, true);
    }

    /// Allocates a scratch workspace sized for this plan (alias for
    /// [`Fft2Scratch::for_plan`]).
    pub fn make_scratch(&self) -> Fft2Scratch {
        Fft2Scratch::for_plan(self)
    }

    fn transform(&self, field: &CArray2, forward: bool, parallel: bool) -> CArray2 {
        let mut out = field.clone();
        let mut scratch = Fft2Scratch::for_plan(self);
        self.transform_in_place(&mut out, &mut scratch, forward, parallel);
        out
    }

    fn transform_in_place(
        &self,
        field: &mut CArray2,
        scratch: &mut Fft2Scratch,
        forward: bool,
        parallel: bool,
    ) {
        assert_eq!(
            field.shape(),
            (self.rows, self.cols),
            "Fft2Plan shape {:?} does not match field shape {:?}",
            (self.rows, self.cols),
            field.shape()
        );
        assert_eq!(
            scratch.shape(),
            (self.rows, self.cols),
            "Fft2Scratch shape {:?} does not match plan shape {:?}",
            scratch.shape(),
            (self.rows, self.cols)
        );
        // Below the measured crossover the parallel driver only pays
        // hand-off overhead; fall back to the serial path (see
        // [`PARALLEL_MIN_ELEMS`]).
        let parallel = parallel && self.rows * self.cols >= PARALLEL_MIN_ELEMS;

        // Row pass, in the field's own storage.
        Self::row_pass(
            field.as_mut_slice(),
            self.cols,
            &self.row_plan,
            forward,
            parallel,
        );

        // Column pass via transpose so both passes stream contiguous rows,
        // ping-ponging through the scratch buffer instead of allocating two
        // transposed copies. The inverse row/column passes each apply 1/len
        // along their own axis, so the combined inverse normalisation of
        // 1/(rows*cols) needs no extra step.
        simd::transpose_into(
            self.level,
            field.as_slice(),
            self.rows,
            self.cols,
            &mut scratch.buf,
        );
        Self::row_pass(
            &mut scratch.buf,
            self.rows,
            &self.col_plan,
            forward,
            parallel,
        );
        simd::transpose_into(
            self.level,
            &scratch.buf,
            self.cols,
            self.rows,
            field.as_mut_slice(),
        );
    }

    fn row_pass(buf: &mut [Complex64], cols: usize, plan: &FftPlan, forward: bool, parallel: bool) {
        let apply = |row: &mut [Complex64]| {
            if forward {
                plan.forward(row);
            } else {
                plan.inverse(row);
            }
        };
        if parallel {
            buf.par_chunks_mut(cols).for_each(apply);
        } else {
            buf.chunks_mut(cols).for_each(apply);
        }
    }
}

/// One-shot forward 2D FFT (builds a throwaway plan).
pub fn fft2(field: &CArray2) -> CArray2 {
    Fft2Plan::new(field.rows(), field.cols()).forward(field)
}

/// One-shot inverse 2D FFT (builds a throwaway plan).
pub fn ifft2(field: &CArray2) -> CArray2 {
    Fft2Plan::new(field.rows(), field.cols()).inverse(field)
}

/// One-shot in-place forward 2D FFT (builds a throwaway plan and scratch).
pub fn fft2_in_place(field: &mut CArray2) {
    let plan = Fft2Plan::new(field.rows(), field.cols());
    plan.forward_in_place(field, &mut plan.make_scratch());
}

/// One-shot in-place inverse 2D FFT (builds a throwaway plan and scratch).
pub fn ifft2_in_place(field: &mut CArray2) {
    let plan = Fft2Plan::new(field.rows(), field.cols());
    plan.inverse_in_place(field, &mut plan.make_scratch());
}

/// Circularly shifts the zero-frequency component to the centre of the array.
///
/// For even dimensions `fftshift` and [`ifftshift`] coincide; both are provided
/// for readability at call sites.
pub fn fftshift<T: Clone + Default>(field: &Array2<T>) -> Array2<T> {
    roll(field, (field.rows() / 2) as i64, (field.cols() / 2) as i64)
}

/// Inverse of [`fftshift`].
pub fn ifftshift<T: Clone + Default>(field: &Array2<T>) -> Array2<T> {
    roll(
        field,
        (field.rows() - field.rows() / 2) as i64,
        (field.cols() - field.cols() / 2) as i64,
    )
}

/// Circularly rolls the array contents by `(drow, dcol)` (positive = down/right).
pub fn roll<T: Clone + Default>(field: &Array2<T>, drow: i64, dcol: i64) -> Array2<T> {
    let rows = field.rows() as i64;
    let cols = field.cols() as i64;
    if rows == 0 || cols == 0 {
        return field.clone();
    }
    Array2::from_fn(field.rows(), field.cols(), |r, c| {
        let sr = (r as i64 - drow).rem_euclid(rows) as usize;
        let sc = (c as i64 - dcol).rem_euclid(cols) as usize;
        field[(sr, sc)].clone()
    })
}

/// The squared magnitude of every element (diffraction intensity).
pub fn intensity(field: &CArray2) -> Array2<f64> {
    field.map(|v| v.norm_sqr())
}

/// The magnitude of every element (diffraction amplitude).
pub fn amplitude(field: &CArray2) -> Array2<f64> {
    field.map(|v| v.abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft;

    fn test_field(rows: usize, cols: usize) -> CArray2 {
        Array2::from_fn(rows, cols, |r, c| {
            Complex64::new(
                ((r * 13 + c * 7) as f64 * 0.13).sin(),
                ((r * 5 + c * 3) as f64 * 0.29).cos(),
            )
        })
    }

    /// Reference 2D DFT built from the naive 1D DFT.
    fn dft2_reference(field: &CArray2) -> CArray2 {
        let (rows, cols) = field.shape();
        // Rows first.
        let mut row_passed = Array2::full(rows, cols, Complex64::ZERO);
        for r in 0..rows {
            let spectrum = dft::dft(field.row(r));
            for c in 0..cols {
                row_passed[(r, c)] = spectrum[c];
            }
        }
        // Then columns.
        let mut out = Array2::full(rows, cols, Complex64::ZERO);
        for c in 0..cols {
            let column: Vec<Complex64> = (0..rows).map(|r| row_passed[(r, c)]).collect();
            let spectrum = dft::dft(&column);
            for r in 0..rows {
                out[(r, c)] = spectrum[r];
            }
        }
        out
    }

    fn assert_fields_close(a: &CArray2, b: &CArray2, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn matches_reference_dft2() {
        let field = test_field(8, 16);
        let fast = fft2(&field);
        let slow = dft2_reference(&field);
        assert_fields_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let field = test_field(16, 8);
        let back = ifft2(&fft2(&field));
        assert_fields_close(&back, &field, 1e-10);
    }

    #[test]
    fn parallel_matches_serial() {
        let field = test_field(32, 32);
        let plan = Fft2Plan::new(32, 32);
        assert_fields_close(&plan.forward_par(&field), &plan.forward(&field), 1e-12);
        assert_fields_close(&plan.inverse_par(&field), &plan.inverse(&field), 1e-12);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut field = Array2::full(8, 8, Complex64::ZERO);
        field[(0, 0)] = Complex64::ONE;
        let spectrum = fft2(&field);
        for v in spectrum.as_slice() {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_2d() {
        let field = test_field(16, 16);
        let spectrum = fft2(&field);
        let spatial: f64 = field.as_slice().iter().map(|v| v.norm_sqr()).sum();
        let spectral: f64 = spectrum
            .as_slice()
            .iter()
            .map(|v| v.norm_sqr())
            .sum::<f64>()
            / (16.0 * 16.0);
        assert!((spatial - spectral).abs() < 1e-8 * spatial.max(1.0));
    }

    #[test]
    fn fftshift_moves_dc_to_center() {
        let mut field = Array2::full(8, 8, Complex64::ZERO);
        field[(0, 0)] = Complex64::ONE;
        let shifted = fftshift(&field);
        assert!((shifted[(4, 4)] - Complex64::ONE).abs() < 1e-15);
        assert!(shifted[(0, 0)].abs() < 1e-15);
    }

    #[test]
    fn fftshift_ifftshift_roundtrip_even_and_odd() {
        for &(rows, cols) in &[(8usize, 8usize), (7, 9), (6, 5)] {
            let field: Array2<f64> = Array2::from_fn(rows, cols, |r, c| (r * cols + c) as f64);
            let back = ifftshift(&fftshift(&field));
            assert_eq!(back, field, "roundtrip failed for {rows}x{cols}");
        }
    }

    #[test]
    fn roll_wraps_around() {
        let field: Array2<i32> = Array2::from_fn(3, 3, |r, c| (r * 3 + c) as i32);
        let rolled = roll(&field, 1, 1);
        assert_eq!(rolled[(0, 0)], field[(2, 2)]);
        assert_eq!(rolled[(1, 1)], field[(0, 0)]);
        let back = roll(&rolled, -1, -1);
        assert_eq!(back, field);
    }

    #[test]
    fn intensity_and_amplitude() {
        let field = Array2::full(2, 2, Complex64::new(3.0, 4.0));
        let i = intensity(&field);
        let a = amplitude(&field);
        assert!(i.iter().all(|&v| (v - 25.0).abs() < 1e-12));
        assert!(a.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "does not match field shape")]
    fn plan_shape_mismatch_panics() {
        let plan = Fft2Plan::new(8, 8);
        let field = Array2::full(4, 4, Complex64::ZERO);
        let _ = plan.forward(&field);
    }

    #[test]
    fn in_place_is_bit_identical_to_by_value() {
        for &(rows, cols) in &[(8usize, 8usize), (8, 16), (16, 8)] {
            let field = test_field(rows, cols);
            let plan = Fft2Plan::new(rows, cols);
            let mut scratch = plan.make_scratch();

            let by_value = plan.forward(&field);
            let mut in_place = field.clone();
            plan.forward_in_place(&mut in_place, &mut scratch);
            for (a, b) in by_value.as_slice().iter().zip(in_place.as_slice()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }

            plan.inverse_in_place(&mut in_place, &mut scratch);
            let back = plan.inverse(&by_value);
            for (a, b) in back.as_slice().iter().zip(in_place.as_slice()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn in_place_scratch_is_reusable_across_transforms() {
        let plan = Fft2Plan::new(16, 16);
        let mut scratch = plan.make_scratch();
        let field = test_field(16, 16);
        let mut data = field.clone();
        for _ in 0..3 {
            plan.forward_in_place(&mut data, &mut scratch);
            plan.inverse_in_place(&mut data, &mut scratch);
        }
        assert_fields_close(&data, &field, 1e-9);
    }

    #[test]
    fn par_in_place_matches_serial_in_place() {
        let plan = Fft2Plan::new(32, 32);
        let field = test_field(32, 32);
        let mut scratch = plan.make_scratch();
        let mut serial = field.clone();
        plan.forward_in_place(&mut serial, &mut scratch);
        let mut parallel = field.clone();
        plan.forward_par_in_place(&mut parallel, &mut scratch);
        assert_fields_close(&serial, &parallel, 1e-12);
    }

    #[test]
    fn parallel_branch_above_threshold_is_bit_identical_to_serial() {
        // N×N == PARALLEL_MIN_ELEMS: the smallest size at which the
        // `*_par` drivers genuinely take the Rayon branch instead of the
        // serial fallback — without this test the parallel row pass would
        // have no coverage at all (every smaller test is auto-serialised).
        // The threshold is feature-dependent (see its methodology comment),
        // so the test size tracks it.
        #[cfg(not(feature = "simd"))]
        const N: usize = 256;
        #[cfg(feature = "simd")]
        const N: usize = 512;
        const _: () = assert!(N * N >= PARALLEL_MIN_ELEMS);
        let plan = Fft2Plan::new(N, N);
        let field = test_field(N, N);
        let mut scratch = plan.make_scratch();

        let mut serial = field.clone();
        plan.forward_in_place(&mut serial, &mut scratch);
        let mut parallel = field.clone();
        plan.forward_par_in_place(&mut parallel, &mut scratch);
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        plan.inverse_par_in_place(&mut parallel, &mut scratch);
        plan.inverse_in_place(&mut serial, &mut scratch);
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_fields_close(&parallel, &field, 1e-9);
    }

    #[test]
    fn sse2_2d_plan_bit_identical_to_scalar_2d_plan() {
        if !SimdLevel::Sse2.is_available() {
            return;
        }
        for &(rows, cols) in &[(8usize, 8usize), (16, 32), (64, 64)] {
            let field = test_field(rows, cols);
            let scalar_plan = Fft2Plan::with_simd_level(rows, cols, SimdLevel::Scalar);
            let sse2_plan = Fft2Plan::with_simd_level(rows, cols, SimdLevel::Sse2);
            let mut a = field.clone();
            let mut b = field.clone();
            scalar_plan.forward_in_place(&mut a, &mut scalar_plan.make_scratch());
            sse2_plan.forward_in_place(&mut b, &mut sse2_plan.make_scratch());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn avx2_2d_roundtrip_matches_scalar_roundtrip_within_tolerance() {
        if !SimdLevel::Avx2.is_available() {
            return;
        }
        let (rows, cols) = (64usize, 64usize);
        let field = test_field(rows, cols);
        let avx2_plan = Fft2Plan::with_simd_level(rows, cols, SimdLevel::Avx2);
        assert_eq!(avx2_plan.simd_level(), SimdLevel::Avx2);
        let mut scratch = avx2_plan.make_scratch();
        let mut data = field.clone();
        avx2_plan.forward_in_place(&mut data, &mut scratch);
        avx2_plan.inverse_in_place(&mut data, &mut scratch);
        assert_fields_close(&data, &field, 1e-10);
    }

    #[test]
    fn one_shot_in_place_helpers_roundtrip() {
        let field = test_field(8, 8);
        let mut data = field.clone();
        fft2_in_place(&mut data);
        ifft2_in_place(&mut data);
        assert_fields_close(&data, &field, 1e-10);
    }

    #[test]
    #[should_panic(expected = "Fft2Scratch shape")]
    fn mismatched_scratch_panics() {
        let plan = Fft2Plan::new(8, 8);
        let mut scratch = Fft2Plan::new(4, 4).make_scratch();
        let mut field = Array2::full(8, 8, Complex64::ZERO);
        plan.forward_in_place(&mut field, &mut scratch);
    }
}
