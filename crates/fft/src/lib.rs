//! Complex arithmetic and fast Fourier transforms for ptychography.
//!
//! The multi-slice forward model `G` of the Maximum-Likelihood reconstruction
//! (Eqn. 1 of the paper) evaluates a Fourier transform and an inverse Fourier
//! transform per object slice per probe location; the paper's implementation
//! uses cuFFT on V100 GPUs. This crate is the CPU substitute: a from-scratch,
//! dependency-free (apart from Rayon for intra-rank parallelism) complex FFT
//! library sized for the 2D fields that ptychography manipulates.
//!
//! # Contents
//!
//! * [`Complex64`] — a minimal double-precision complex number.
//! * [`FftPlan`] — a cached-twiddle radix-2 plan for power-of-two 1D
//!   transforms. Its `forward`/`inverse` methods are *in-place* over
//!   `&mut [Complex64]` — they are the zero-allocation entry points.
//! * [`fft2d`] — forward/inverse 2D transforms over [`ptycho_array::Array2`],
//!   with serial and Rayon row-parallel drivers, in-place variants over a
//!   reusable [`fft2d::Fft2Scratch`] workspace (the hot-path API), plus
//!   `fftshift`/`ifftshift`.
//! * [`simd`] — the butterfly/transpose kernel tiers ([`SimdLevel`]): scalar
//!   everywhere, plus SSE2 and AVX2+FMA `core::arch` kernels behind the
//!   **`simd`** cargo feature, selected at plan construction by runtime CPU
//!   detection. The per-tier numerics contract (bit-identity for SSE2,
//!   documented ULP bound for AVX2) lives in that module's docs.
//! * [`partial`] — pruned partial transforms ([`PartialFftPlan`],
//!   [`PartialFft2Plan`]) that skip butterflies for inputs known to be zero
//!   (probe compact support) or outputs nobody reads (detector ROI), exactly —
//!   every butterfly they do execute is the same arithmetic the dense plan
//!   would have performed.
//! * [`dft`] — a naive O(N²) reference DFT used only by tests and benches.
//!
//! # Conventions
//!
//! The forward transform is unnormalised; the inverse transform divides by the
//! length, so `ifft(fft(x)) == x`. This matches the convention of FFTW/cuFFT
//! (`FFTW_FORWARD` / `FFTW_BACKWARD` with `1/N` applied on the inverse), which
//! is what the reconstruction maths in `ptycho-sim` assumes.
//!
//! # Example
//!
//! ```
//! use ptycho_fft::{Complex64, FftPlan};
//!
//! let plan = FftPlan::new(8);
//! let signal: Vec<Complex64> = (0..8).map(|i| Complex64::new(i as f64, 0.0)).collect();
//! let mut spectrum = signal.clone();
//! plan.forward(&mut spectrum);
//! plan.inverse(&mut spectrum);
//! for (a, b) in signal.iter().zip(&spectrum) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]
// The crate is `forbid(unsafe_code)` except when the `simd` feature is on:
// the `core::arch` intrinsics in the `simd` module are the only unsafe code,
// and that module alone carries the allowance — everything else stays denied.
#![deny(unsafe_code)]
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]

mod complex;
pub mod dft;
mod fft1d;
pub mod fft2d;
pub mod partial;
pub mod simd;

pub use complex::Complex64;
pub use fft1d::{fft, ifft, FftPlan};
pub use partial::{PartialFft2Plan, PartialFftPlan};
pub use simd::SimdLevel;

/// Alias used throughout the workspace for complex-valued images.
pub type CArray2 = ptycho_array::Array2<Complex64>;

/// Alias used throughout the workspace for complex-valued volumes.
pub type CArray3 = ptycho_array::Array3<Complex64>;
