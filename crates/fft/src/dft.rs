//! Naive O(N²) discrete Fourier transform.
//!
//! This module is the *reference implementation* that the fast transforms are
//! validated against in tests and benchmarked against in `ptycho-bench`. It is
//! never used on the reconstruction hot path.

use crate::Complex64;
use std::f64::consts::PI;

/// Forward DFT (unnormalised): `X[k] = Σ_n x[n]·e^{-2πikn/N}`.
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    transform(input, -1.0)
}

/// Inverse DFT (normalised by `1/N`): `x[n] = (1/N)·Σ_k X[k]·e^{+2πikn/N}`.
pub fn idft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = transform(input, 1.0);
    if n > 0 {
        let scale = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(scale);
        }
    }
    out
}

fn transform(input: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (i, x) in input.iter().enumerate() {
            let angle = sign * 2.0 * PI * (k * i) as f64 / n as f64;
            acc += *x * Complex64::cis(angle);
        }
        *out_k = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(dft(&[]).is_empty());
        assert!(idft(&[]).is_empty());
    }

    #[test]
    fn impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 5];
        x[0] = Complex64::ONE;
        let spectrum = dft(&x);
        for v in &spectrum {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_arbitrary_length() {
        // The DFT reference supports non-power-of-two lengths, unlike FftPlan.
        let x: Vec<Complex64> = (0..7)
            .map(|i| Complex64::new(i as f64, (7 - i) as f64))
            .collect();
        let back = idft(&dft(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn dc_component_is_sum() {
        let x: Vec<Complex64> = (1..=4).map(|i| Complex64::from_real(i as f64)).collect();
        let spectrum = dft(&x);
        assert!((spectrum[0] - Complex64::from_real(10.0)).abs() < 1e-12);
    }
}
