//! Explicit SIMD kernels for the radix-2 butterfly loop and the blocked
//! transpose, with runtime dispatch.
//!
//! # Dispatch tiers
//!
//! * [`SimdLevel::Scalar`] — the portable loop, identical to the pre-SIMD
//!   code. The only tier on non-x86_64 targets or when the `simd` feature is
//!   disabled.
//! * [`SimdLevel::Sse2`] — one `Complex64` per `__m128d`. SSE2 is part of the
//!   x86_64 baseline, so this tier needs no runtime check. The complex
//!   multiply is expressed as the *same* IEEE operations in the same order as
//!   the scalar `Mul` impl (two multiplies and an add/subtract per component;
//!   the subtract is an add of the negation, which IEEE 754 defines as exact),
//!   so this tier is **bit-identical** to scalar and is pinned with `to_bits`
//!   identity tests.
//! * [`SimdLevel::Avx2`] — two `Complex64` per `__m256d`, selected at plan
//!   construction via `is_x86_feature_detected!("avx2")` + `("fma")`. The
//!   complex multiply uses `vfmaddsub231pd`, which fuses the multiply and the
//!   add/subtract into one rounding. No accumulation is *reordered* — each
//!   butterfly still computes `t = b·w; a' = a + t; b' = a − t` — but the
//!   fused product drops one rounding per component, so results differ from
//!   scalar by bounded rounding noise and are pinned with ULP-bounded tests
//!   instead (see [`ULP-bound`](#ulp-bound) below).
//!
//! # ULP bound
//!
//! For the AVX2/FMA tier, each butterfly output component differs from its
//! scalar counterpart by at most one rounding of the fused product, i.e. a
//! relative perturbation of at most `2ε` per stage survived. An FFT of length
//! `n` runs `log2(n)` stages, so the accumulated difference is bounded by
//! `|simd − scalar| ≤ 4·log2(n)·ε·M` where `M = max|scalar output|` over the
//! transform and `ε = f64::EPSILON`. Tests assert the doubled budget
//! `8·log2(n)·ε·M` to stay robust to the (pessimistic) worst-case analysis
//! while still catching any real kernel bug, which shows up orders of
//! magnitude above that line.

// The intrinsics in the x86 module below are the one sanctioned use of
// `unsafe` in this crate (the crate root carries `deny(unsafe_code)`, and
// `forbid(unsafe_code)` whenever the `simd` feature is off). Safety rests on
// two invariants, both enforced here: every kernel is only dispatched after
// its CPU feature is statically (SSE2) or dynamically (AVX2+FMA) confirmed,
// and every pointer stays inside the bounds of the slices passed in
// (`Complex64` is `#[repr(C)]`, so a `&[Complex64]` is exactly a dense
// `re, im` f64 sequence).
#![cfg_attr(feature = "simd", allow(unsafe_code))]

use crate::Complex64;

/// The instruction-set tier a plan's butterfly and transpose kernels run at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loop (always available; bit-identity reference).
    Scalar,
    /// SSE2 `f64x2` kernels, one complex value per vector — bit-identical to
    /// scalar (x86_64 with the `simd` feature only).
    Sse2,
    /// AVX2+FMA `f64x4` kernels, two complex values per vector — ULP-bounded
    /// against scalar (x86_64 with the `simd` feature, runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// The best tier available on this machine. `Scalar` unless the `simd`
    /// feature is enabled and the target is x86_64; `Avx2` only when the CPU
    /// reports both `avx2` and `fma` at runtime.
    pub fn detect() -> Self {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                SimdLevel::Avx2
            } else {
                SimdLevel::Sse2
            }
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        SimdLevel::Scalar
    }

    /// Whether this tier can run on this machine/build.
    pub fn is_available(self) -> bool {
        self <= Self::detect()
    }

    /// Stable lowercase name, used for bench keys (`fft_simd/{label}_{n}`).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Every tier available on this machine, in ascending order (always
    /// starts with `Scalar`).
    pub fn available_levels() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|level| level.is_available())
            .collect()
    }
}

/// One full butterfly stage: splits `data` into `size`-length blocks and
/// applies the butterflies of `stage` (a `size/2`-entry twiddle table) to
/// each, at the given tier.
pub(crate) fn butterfly_pass(
    level: SimdLevel,
    data: &mut [Complex64],
    size: usize,
    stage: &[Complex64],
) {
    debug_assert_eq!(stage.len(), size / 2);
    match level {
        SimdLevel::Scalar => {
            for chunk in data.chunks_exact_mut(size) {
                let (lo, hi) = chunk.split_at_mut(size / 2);
                scalar_range(lo, hi, stage);
            }
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe { x86::sse2_pass(data, size, stage) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { x86::avx2_pass(data, size, stage) },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => {
            for chunk in data.chunks_exact_mut(size) {
                let (lo, hi) = chunk.split_at_mut(size / 2);
                scalar_range(lo, hi, stage);
            }
        }
    }
}

/// Butterflies over an arbitrary aligned sub-range of one block: used by the
/// pruned partial plans, where only a slice of a block's butterflies is
/// needed. `lo`, `hi` and `tw` must have equal lengths and correspond to the
/// same butterfly indices.
pub(crate) fn butterfly_range(
    level: SimdLevel,
    lo: &mut [Complex64],
    hi: &mut [Complex64],
    tw: &[Complex64],
) {
    debug_assert_eq!(lo.len(), hi.len());
    debug_assert_eq!(lo.len(), tw.len());
    match level {
        SimdLevel::Scalar => scalar_range(lo, hi, tw),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe { x86::sse2_range(lo, hi, tw) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { x86::avx2_range(lo, hi, tw) },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => scalar_range(lo, hi, tw),
    }
}

/// Cache-blocked transpose of the `rows × cols` row-major `src` into `dst`
/// (`cols × rows`), at the given tier. Pure data movement — every tier is
/// bit-identical.
pub(crate) fn transpose_into(
    level: SimdLevel,
    src: &[Complex64],
    rows: usize,
    cols: usize,
    dst: &mut [Complex64],
) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    match level {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { x86::avx2_transpose(src, rows, cols, dst) },
        // The SSE2 tier shares the scalar blocked loop: a Complex64 copy is
        // already one 16-byte move, so there is nothing to vectorise below
        // the 2×2 AVX2 micro-kernel.
        _ => transpose_blocked(src, rows, cols, dst),
    }
}

/// Square tile side for the blocked transpose: 16×16 complex values are 4 KiB
/// of source plus 4 KiB of destination, comfortably inside L1 on every
/// current x86 part, while keeping the row stride short enough that the
/// destination writes stay in a handful of cache lines.
const TRANSPOSE_BLOCK: usize = 16;

fn transpose_blocked(src: &[Complex64], rows: usize, cols: usize, dst: &mut [Complex64]) {
    for rb in (0..rows).step_by(TRANSPOSE_BLOCK) {
        let r_end = (rb + TRANSPOSE_BLOCK).min(rows);
        for cb in (0..cols).step_by(TRANSPOSE_BLOCK) {
            let c_end = (cb + TRANSPOSE_BLOCK).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

/// The portable butterfly loop — the exact operation sequence of the pre-SIMD
/// code (`t = b·w; a' = a + t; b' = a − t`), kept as the bit-identity
/// reference for every other tier.
fn scalar_range(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
    for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
        let t = *b * *w;
        let u = *a;
        *a = u + t;
        *b = u - t;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::Complex64;
    use core::arch::x86_64::*;

    /// `[-0.0, 0.0]`: XORing flips the sign of lane 0 only, turning a
    /// two-lane add into `[x0 − y0, x1 + y1]` (IEEE subtraction *is* addition
    /// of the negation, so this is bit-identical to the scalar subtract).
    #[inline(always)]
    unsafe fn addsub_mask() -> __m128d {
        _mm_set_pd(0.0, -0.0)
    }

    /// One complex butterfly in SSE2 registers. Replicates the scalar complex
    /// multiply `(b.re·w.re − b.im·w.im, b.re·w.im + b.im·w.re)` with the
    /// same two multiplies and one add/subtract per lane — bit-identical.
    ///
    /// # Safety
    /// `lp`, `hp`, `wp` must point at least `2·(k+1)` f64s into valid
    /// storage. SSE2 is statically available on x86_64.
    #[inline(always)]
    unsafe fn sse2_butterfly(lp: *mut f64, hp: *mut f64, wp: *const f64, k: usize) {
        let a = _mm_loadu_pd(lp.add(2 * k));
        let b = _mm_loadu_pd(hp.add(2 * k));
        let w = _mm_loadu_pd(wp.add(2 * k));
        let bre = _mm_unpacklo_pd(b, b); // [b.re, b.re]
        let bim = _mm_unpackhi_pd(b, b); // [b.im, b.im]
        let wsw = _mm_shuffle_pd(w, w, 0b01); // [w.im, w.re]
                                              // [b.re·w.re, b.re·w.im] -+ [b.im·w.im, b.im·w.re]
        let prod_im = _mm_xor_pd(_mm_mul_pd(bim, wsw), addsub_mask());
        let t = _mm_add_pd(_mm_mul_pd(bre, w), prod_im);
        _mm_storeu_pd(lp.add(2 * k), _mm_add_pd(a, t));
        _mm_storeu_pd(hp.add(2 * k), _mm_sub_pd(a, t));
    }

    /// # Safety
    /// `lo`, `hi`, `tw` must have equal lengths (checked by the dispatcher).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_range(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let wp = tw.as_ptr() as *const f64;
        for k in 0..lo.len() {
            sse2_butterfly(lp, hp, wp, k);
        }
    }

    /// # Safety
    /// `stage.len() == size / 2` and `size` divides `data.len()` block layout
    /// (checked by the dispatcher).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sse2_pass(data: &mut [Complex64], size: usize, stage: &[Complex64]) {
        let half = size / 2;
        let wp = stage.as_ptr() as *const f64;
        for chunk in data.chunks_exact_mut(size) {
            let lp = chunk.as_mut_ptr() as *mut f64;
            let hp = lp.add(2 * half);
            for k in 0..half {
                sse2_butterfly(lp, hp, wp, k);
            }
        }
    }

    /// Two complex butterflies per iteration in AVX2 registers, with the
    /// multiply + add/subtract fused by `vfmaddsub` (one fewer rounding than
    /// scalar — the ULP-bounded tier).
    ///
    /// # Safety
    /// `lp`, `hp`, `wp` must point at least `4·(k+1)` f64s into valid
    /// storage, and the caller must have confirmed `avx2` + `fma`.
    #[inline(always)]
    unsafe fn avx2_butterfly_pair(lp: *mut f64, hp: *mut f64, wp: *const f64, k: usize) {
        let a = _mm256_loadu_pd(lp.add(4 * k));
        let b = _mm256_loadu_pd(hp.add(4 * k));
        let w = _mm256_loadu_pd(wp.add(4 * k));
        let bre = _mm256_movedup_pd(b); // [b0.re, b0.re, b1.re, b1.re]
        let bim = _mm256_permute_pd(b, 0b1111); // [b0.im, b0.im, b1.im, b1.im]
        let wsw = _mm256_permute_pd(w, 0b0101); // [w0.im, w0.re, w1.im, w1.re]
                                                // even lanes: b.re·w.re − b.im·w.im, odd lanes: b.re·w.im + b.im·w.re
        let t = _mm256_fmaddsub_pd(bre, w, _mm256_mul_pd(bim, wsw));
        _mm256_storeu_pd(lp.add(4 * k), _mm256_add_pd(a, t));
        _mm256_storeu_pd(hp.add(4 * k), _mm256_sub_pd(a, t));
    }

    /// # Safety
    /// `lo`, `hi`, `tw` must have equal lengths, and the caller must have
    /// confirmed `avx2` + `fma` at runtime.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn avx2_range(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
        let n = lo.len();
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let wp = tw.as_ptr() as *const f64;
        let pairs = n / 2;
        for k in 0..pairs {
            avx2_butterfly_pair(lp, hp, wp, k);
        }
        if n % 2 == 1 {
            // Odd tail: one SSE2-width butterfly. Note this makes the AVX2
            // tier's *tail* element bit-identical to scalar — the ULP bound
            // only ever applies to the fused pairs.
            sse2_butterfly(lp, hp, wp, n - 1);
        }
    }

    /// # Safety
    /// `stage.len() == size / 2`; caller confirmed `avx2` + `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn avx2_pass(data: &mut [Complex64], size: usize, stage: &[Complex64]) {
        let half = size / 2;
        let wp = stage.as_ptr() as *const f64;
        if half < 2 {
            // Stage 0 (size 2): one butterfly per block, below vector width.
            for chunk in data.chunks_exact_mut(size) {
                let lp = chunk.as_mut_ptr() as *mut f64;
                sse2_butterfly(lp, lp.add(2 * half), wp, 0);
            }
            return;
        }
        let pairs = half / 2;
        for chunk in data.chunks_exact_mut(size) {
            let lp = chunk.as_mut_ptr() as *mut f64;
            let hp = lp.add(2 * half);
            for k in 0..pairs {
                avx2_butterfly_pair(lp, hp, wp, k);
            }
            if half % 2 == 1 {
                sse2_butterfly(lp, hp, wp, half - 1);
            }
        }
    }

    /// Blocked transpose with a 2×2 complex (4×4 f64) AVX2 micro-kernel: two
    /// 256-bit loads, two cross-lane shuffles, two stores move a 2×2 tile.
    /// Pure data movement — bit-identical to the scalar transpose.
    ///
    /// # Safety
    /// `src.len() == dst.len() == rows·cols` (checked by the dispatcher);
    /// caller confirmed `avx2`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn avx2_transpose(
        src: &[Complex64],
        rows: usize,
        cols: usize,
        dst: &mut [Complex64],
    ) {
        let sp = src.as_ptr() as *const f64;
        let dp = dst.as_mut_ptr() as *mut f64;
        let r2 = rows & !1;
        let c2 = cols & !1;
        for rb in (0..rows).step_by(super::TRANSPOSE_BLOCK) {
            let r_end = (rb + super::TRANSPOSE_BLOCK).min(rows);
            for cb in (0..cols).step_by(super::TRANSPOSE_BLOCK) {
                let c_end = (cb + super::TRANSPOSE_BLOCK).min(cols);
                let mut r = rb;
                while r < r_end.min(r2) {
                    let mut c = cb;
                    while c < c_end.min(c2) {
                        // rows r, r+1 × cols c, c+1 of src.
                        let a = _mm256_loadu_pd(sp.add(2 * (r * cols + c)));
                        let b = _mm256_loadu_pd(sp.add(2 * ((r + 1) * cols + c)));
                        // dst row c gets [src[r][c], src[r+1][c]] …
                        let lo = _mm256_permute2f128_pd(a, b, 0x20);
                        // … and dst row c+1 gets [src[r][c+1], src[r+1][c+1]].
                        let hi = _mm256_permute2f128_pd(a, b, 0x31);
                        _mm256_storeu_pd(dp.add(2 * (c * rows + r)), lo);
                        _mm256_storeu_pd(dp.add(2 * ((c + 1) * rows + r)), hi);
                        c += 2;
                    }
                    // Odd trailing column of this block row.
                    for c in c.max(cb)..c_end {
                        *dst.get_unchecked_mut(c * rows + r) = *src.get_unchecked(r * cols + c);
                        *dst.get_unchecked_mut(c * rows + r + 1) =
                            *src.get_unchecked((r + 1) * cols + c);
                    }
                    r += 2;
                }
                // Odd trailing row of this block.
                for r in r.max(rb)..r_end {
                    for c in cb..c_end {
                        *dst.get_unchecked_mut(c * rows + r) = *src.get_unchecked(r * cols + c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_data(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.61).sin(), (i as f64 * 0.37).cos()))
            .collect()
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(SimdLevel::Scalar.is_available());
        assert_eq!(SimdLevel::available_levels()[0], SimdLevel::Scalar);
        assert!(SimdLevel::detect().is_available());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Sse2.label(), "sse2");
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
    }

    #[test]
    fn sse2_butterflies_bit_identical_to_scalar() {
        if !SimdLevel::Sse2.is_available() {
            return;
        }
        for &(size, blocks) in &[(2usize, 8usize), (8, 4), (16, 2), (64, 1)] {
            let stage = test_data(size / 2);
            let mut scalar = test_data(size * blocks);
            let mut simd = scalar.clone();
            butterfly_pass(SimdLevel::Scalar, &mut scalar, size, &stage);
            butterfly_pass(SimdLevel::Sse2, &mut simd, size, &stage);
            for (a, b) in scalar.iter().zip(&simd) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn avx2_butterflies_within_ulp_budget() {
        if !SimdLevel::Avx2.is_available() {
            return;
        }
        for &(size, blocks) in &[(2usize, 8usize), (4, 4), (8, 4), (16, 2), (64, 1), (6, 2)] {
            let stage = test_data(size / 2);
            let mut scalar = test_data(size * blocks);
            let mut simd = scalar.clone();
            butterfly_pass(SimdLevel::Scalar, &mut scalar, size, &stage);
            butterfly_pass(SimdLevel::Avx2, &mut simd, size, &stage);
            let max_mag = scalar.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
            // A single stage: one fused rounding of budget.
            let tol = 8.0 * f64::EPSILON * max_mag.max(1.0);
            for (a, b) in scalar.iter().zip(&simd) {
                assert!((*a - *b).abs() <= tol, "{a:?} vs {b:?} (tol {tol:e})");
            }
        }
    }

    #[test]
    fn butterfly_range_matches_pass_on_full_range() {
        for level in SimdLevel::available_levels() {
            let size = 32;
            let stage = test_data(size / 2);
            let mut via_pass = test_data(size);
            butterfly_pass(level, &mut via_pass, size, &stage);
            let mut via_range = test_data(size);
            {
                let (lo, hi) = via_range.split_at_mut(size / 2);
                butterfly_range(level, lo, hi, &stage);
            }
            for (a, b) in via_pass.iter().zip(&via_range) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn transpose_all_levels_bit_identical() {
        // Exercise square, rectangular, odd, and sub-block shapes: the AVX2
        // 2×2 micro-kernel has row/column tails on every odd dimension.
        for &(rows, cols) in &[
            (1usize, 1usize),
            (2, 2),
            (3, 5),
            (16, 16),
            (17, 33),
            (32, 8),
            (8, 32),
            (31, 2),
        ] {
            let src = test_data(rows * cols);
            let mut reference = vec![Complex64::ZERO; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    reference[c * rows + r] = src[r * cols + c];
                }
            }
            for level in SimdLevel::available_levels() {
                let mut dst = vec![Complex64::ZERO; rows * cols];
                transpose_into(level, &src, rows, cols, &mut dst);
                for (i, (a, b)) in reference.iter().zip(&dst).enumerate() {
                    assert_eq!(
                        (a.re.to_bits(), a.im.to_bits()),
                        (b.re.to_bits(), b.im.to_bits()),
                        "{level:?} transpose {rows}x{cols} mismatch at {i}"
                    );
                }
            }
        }
    }
}
