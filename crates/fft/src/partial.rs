//! Pruned partial FFTs: skip butterflies that provably do nothing.
//!
//! Ptychography wastes most of a full-grid transform: the probe has compact
//! support (everything outside its window is exactly zero) and the detector
//! only reads a region of interest of the far field. A pruned transform
//! executes only the butterflies that touch non-zero inputs or contribute to
//! requested outputs — the classic "FFT pruning" of Markel (1971), revisited
//! for ptychography by Parada et al. (see `PAPERS.md`, 2408.03532).
//!
//! # Why pruning is *exact*, not approximate
//!
//! After the bit-reversal permutation, the radix-2 DIT stage of block size
//! `size` operates on contiguous blocks, and block `j` (at offset `j·size`)
//! holds the DFT of the input subsequence `x[o], x[o+s], x[o+2s], …` with
//! stride `s = n/size` and offset `o = rev_{log2 s}(j)`.
//!
//! * **Input pruning.** If the non-zero input run `[start, start+len)` misses
//!   every index of that subsequence (i.e. `o` is outside the run's residues
//!   mod `s`), the whole block is the DFT of zeros — zero. Skipping its
//!   butterflies leaves the zeros untouched, which is exactly what computing
//!   them would produce. Every *executed* butterfly performs the identical
//!   arithmetic the dense plan would, so pruned output is **bit-identical**
//!   to dense output (provided the zeros outside the declared support are
//!   positive zeros, which is what [`Complex64::ZERO`] padding writes).
//! * **Output pruning.** By induction over stages (each output of stage `s`
//!   depends on the two stage-`s` positions whose index agrees with it modulo
//!   `half`), producing outputs `[start, start+len)` only requires, at the
//!   stage with half-size `half`, the butterflies whose twiddle index lies in
//!   the wrapped interval `[start mod half, start mod half + len)`. All other
//!   butterflies are skipped and the final values outside the run are
//!   **zeroed**, giving a deterministic contract: inside the run the values
//!   are bit-identical to the dense transform, outside they are exactly zero.
//!
//! Cost: a dense transform runs `(n/2)·log2 n` butterflies; with an input run
//! of length `ℓ` the pruned forward runs `≈ (n/2)·(1 + log2 ℓ)` — the savings
//! grow with `log(n/ℓ)`, matching the asymptotic factor quoted in the paper
//! trail. Output pruning saves the same way from the other end, and both
//! compose per stage.
//!
//! # 2D driver
//!
//! [`PartialFft2Plan`] prunes separably: the forward row pass only visits
//! rows inside the input support (pruning each row by the support columns and
//! the ROI columns), and after the transpose the column pass only visits the
//! ROI columns. The inverse direction treats the ROI as the input support.
//! All skipped work relies on the caller honouring the contract that the
//! field is exactly zero outside the declared support — `Probe::support_padded`
//! in `ptycho-sim` establishes it.

use crate::fft2d::Fft2Scratch;
use crate::simd::{self, SimdLevel};
use crate::{CArray2, Complex64, FftPlan};
use ptycho_array::Rect;

/// A contiguous index run `[start, start + len)`, `len >= 1`.
type Run = (usize, usize);

/// A 1D pruned FFT plan: a dense [`FftPlan`] plus per-stage skip tables for a
/// declared non-zero input run and/or a requested output run.
///
/// Without runs declared it behaves bit-identically to the dense plan.
#[derive(Clone, Debug)]
pub struct PartialFftPlan {
    plan: FftPlan,
    input_run: Option<Run>,
    output_run: Option<Run>,
    /// Forward-direction active blocks per stage (byte offsets of surviving
    /// `size`-sized blocks, in memory order); `None` = all blocks active.
    fwd_blocks: Vec<Option<Vec<u32>>>,
    /// Inverse-direction active blocks per stage, derived from `output_run`
    /// (the inverse consumes the pruned spectrum as its input).
    inv_blocks: Vec<Option<Vec<u32>>>,
    /// Needed butterfly (twiddle-index) wrapped run per stage for output
    /// pruning; `None` = all butterflies needed.
    out_ranges: Vec<Option<(u32, u32)>>,
}

impl PartialFftPlan {
    /// Creates an (un-pruned) plan of length `len` at the detected SIMD tier.
    ///
    /// # Panics
    /// Panics if `len` is zero or not a power of two.
    pub fn new(len: usize) -> Self {
        Self::with_simd_level(len, SimdLevel::detect())
    }

    /// Creates an (un-pruned) plan pinned to a specific SIMD tier.
    pub fn with_simd_level(len: usize, level: SimdLevel) -> Self {
        let plan = FftPlan::with_simd_level(len, level);
        let stages = len.trailing_zeros() as usize;
        Self {
            plan,
            input_run: None,
            output_run: None,
            fwd_blocks: vec![None; stages],
            inv_blocks: vec![None; stages],
            out_ranges: vec![None; stages],
        }
    }

    /// Declares that forward-transform inputs are exactly zero outside
    /// `[start, start + len)` and rebuilds the forward skip tables.
    ///
    /// # Panics
    /// Panics if the run is empty or exceeds the transform length.
    pub fn with_input_run(mut self, start: usize, len: usize) -> Self {
        assert_run(self.plan.len(), start, len);
        self.input_run = Some((start, len));
        self.fwd_blocks = stage_blocks(self.plan.len(), (start, len));
        self
    }

    /// Requests only forward-transform outputs in `[start, start + len)`
    /// (outputs outside the run are zeroed) and rebuilds the output-pruning
    /// tables. The inverse transform treats the same run as its non-zero
    /// *input* region.
    ///
    /// # Panics
    /// Panics if the run is empty or exceeds the transform length.
    pub fn with_output_run(mut self, start: usize, len: usize) -> Self {
        assert_run(self.plan.len(), start, len);
        self.output_run = Some((start, len));
        self.inv_blocks = stage_blocks(self.plan.len(), (start, len));
        self.out_ranges = stage_output_ranges(self.plan.len(), (start, len));
        self
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// True only for the unconstructible length-0 plan (`len/is_empty`
    /// convention).
    pub fn is_empty(&self) -> bool {
        self.plan.len() == 0
    }

    /// The declared non-zero input run, if any.
    pub fn input_run(&self) -> Option<Run> {
        self.input_run
    }

    /// The requested output run, if any.
    pub fn output_run(&self) -> Option<Run> {
        self.output_run
    }

    /// The SIMD tier the executed butterflies dispatch to.
    pub fn simd_level(&self) -> SimdLevel {
        self.plan.simd_level()
    }

    /// Pruned in-place forward transform (unnormalised).
    ///
    /// Inputs must be exactly zero outside the declared input run; with an
    /// output run declared, outputs outside it are set to zero.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(
            data.len(),
            self.plan.len(),
            "partial plan length {} does not match data length {}",
            self.plan.len(),
            data.len()
        );
        if self.plan.len() > 1 {
            self.plan.permute(data);
            self.run_stages(data, true);
        }
        if let Some((start, len)) = self.output_run {
            for v in &mut data[..start] {
                *v = Complex64::ZERO;
            }
            for v in &mut data[start + len..] {
                *v = Complex64::ZERO;
            }
        }
    }

    /// Pruned in-place inverse transform (normalised by `1/N`), for spectra
    /// that are exactly zero outside the declared *output* run (the shape the
    /// pruned forward produces).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(
            data.len(),
            self.plan.len(),
            "partial plan length {} does not match data length {}",
            self.plan.len(),
            data.len()
        );
        if self.plan.len() > 1 {
            self.plan.permute(data);
            self.run_stages(data, false);
        }
        // Same scaling pass as the dense inverse; scaling the untouched
        // zeros is exact, so skipped blocks stay bit-identical.
        let scale = 1.0 / self.plan.len() as f64;
        for v in data.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// The butterfly stage loop with per-stage block skipping (input pruning)
    /// and, in the forward direction, butterfly-range restriction (output
    /// pruning).
    fn run_stages(&self, data: &mut [Complex64], forward: bool) {
        let level = self.plan.simd_level();
        let stages = self.plan.stages(forward);
        let blocks = if forward {
            &self.fwd_blocks
        } else {
            &self.inv_blocks
        };
        let mut size = 2usize;
        for (si, stage) in stages.iter().enumerate() {
            let range = if forward { self.out_ranges[si] } else { None };
            match &blocks[si] {
                None => {
                    if range.is_none() {
                        // Fully dense stage — same whole-pass kernel as FftPlan.
                        simd::butterfly_pass(level, data, size, stage);
                    } else {
                        for chunk in data.chunks_exact_mut(size) {
                            apply_block(level, chunk, stage, range);
                        }
                    }
                }
                Some(offsets) => {
                    for &off in offsets {
                        let chunk = &mut data[off as usize..off as usize + size];
                        apply_block(level, chunk, stage, range);
                    }
                }
            }
            size *= 2;
        }
    }
}

/// Butterflies one block, optionally restricted to a wrapped twiddle-index
/// run (`(k0, klen)` with `klen < half`).
fn apply_block(
    level: SimdLevel,
    chunk: &mut [Complex64],
    stage: &[Complex64],
    range: Option<(u32, u32)>,
) {
    let half = chunk.len() / 2;
    let (lo, hi) = chunk.split_at_mut(half);
    match range {
        None => simd::butterfly_range(level, lo, hi, stage),
        Some((k0, klen)) => {
            let (k0, klen) = (k0 as usize, klen as usize);
            // The wrapped run [k0, k0+klen) mod half splits into at most two
            // contiguous segments.
            let first = klen.min(half - k0);
            simd::butterfly_range(
                level,
                &mut lo[k0..k0 + first],
                &mut hi[k0..k0 + first],
                &stage[k0..k0 + first],
            );
            let rest = klen - first;
            if rest > 0 {
                simd::butterfly_range(level, &mut lo[..rest], &mut hi[..rest], &stage[..rest]);
            }
        }
    }
}

fn assert_run(n: usize, start: usize, len: usize) {
    assert!(len >= 1, "pruning run must be non-empty");
    assert!(
        start + len <= n,
        "pruning run [{start}, {}) exceeds transform length {n}",
        start + len
    );
}

/// Per-stage surviving blocks for a non-zero input run.
///
/// At the stage of block size `size` the decimation stride is `s = n/size`;
/// block `j` covers input offsets `o ≡ rev_{log2 s}(j) (mod s)`. The block
/// survives iff `o` falls in the run's residues mod `s`. When the run covers
/// every residue class (`len >= s`) the table entry is `None` (all blocks).
fn stage_blocks(n: usize, run: Run) -> Vec<Option<Vec<u32>>> {
    let (start, len) = run;
    let mut tables = Vec::with_capacity(n.trailing_zeros() as usize);
    let mut size = 2usize;
    while size <= n {
        let stride = n / size;
        if len >= stride {
            tables.push(None);
        } else {
            // stride > len >= 1, so stride >= 2 and the shift below is valid.
            let bits = stride.trailing_zeros();
            let a = start % stride;
            let mut offsets = Vec::new();
            for j in 0..stride as u32 {
                let o = (j.reverse_bits() >> (32 - bits)) as usize;
                if (o + stride - a) % stride < len {
                    offsets.push(j * size as u32);
                }
            }
            tables.push(Some(offsets));
        }
        size *= 2;
    }
    tables
}

/// Per-stage needed butterfly runs for a requested output run.
///
/// Producing outputs `[start, start+len)` at the stage with half-size `half`
/// requires exactly the butterflies whose twiddle index lies in the wrapped
/// interval starting at `start mod half` of length `min(len, half)`; when
/// that covers everything the entry is `None`.
///
/// The stored run is widened to an even start and even length (at most two
/// extra butterflies per block, which compute dense-correct values at
/// positions nobody reads). This keeps the AVX2 two-butterfly pairing
/// identical to the dense whole-pass kernel — the fused-multiply pairs fall
/// on the same absolute indices — so pruned output stays bit-identical to
/// dense at every SIMD tier, not just the partition-invariant scalar/SSE2
/// ones.
fn stage_output_ranges(n: usize, run: Run) -> Vec<Option<(u32, u32)>> {
    let (start, len) = run;
    let mut ranges = Vec::with_capacity(n.trailing_zeros() as usize);
    let mut size = 2usize;
    while size <= n {
        let half = size / 2;
        let a = start % half.max(1);
        let k0 = a & !1;
        let klen = (len + (a & 1) + 1) & !1;
        if klen >= half {
            ranges.push(None);
        } else {
            ranges.push(Some((k0 as u32, klen as u32)));
        }
        size *= 2;
    }
    ranges
}

/// A 2D pruned FFT plan over `rows × cols` fields: separable row/column
/// pruning from an input support window and/or an output region of interest.
///
/// Built like a dense [`crate::fft2d::Fft2Plan`] but with two optional
/// rectangles:
///
/// * [`with_input_support`](Self::with_input_support) — the field is exactly
///   zero outside this window (the probe's compact support). The forward
///   transform skips the all-zero rows entirely and prunes the early stages
///   of every executed 1D pass. Output is **bit-identical** to the dense
///   transform.
/// * [`with_output_roi`](Self::with_output_roi) — only this window of the
///   spectrum is needed (the detector ROI). Outputs inside the ROI are
///   bit-identical to the dense transform; outputs outside are **zeroed**.
///   The inverse transform treats the ROI as its input support (the shape
///   the pruned forward produces) and writes a dense result.
///
/// Shares [`Fft2Scratch`] with the dense plan, so a worker can drive both
/// from one workspace. All paths stay zero-allocation after construction.
#[derive(Clone, Debug)]
pub struct PartialFft2Plan {
    rows: usize,
    cols: usize,
    /// 1D plan of length `cols`, pruned by the support/ROI column runs.
    row_plan: PartialFftPlan,
    /// 1D plan of length `rows`, pruned by the support/ROI row runs.
    col_plan: PartialFftPlan,
    input_support: Option<Rect>,
    output_roi: Option<Rect>,
    /// Row run of the input support (forward row pass visits only these).
    support_rows: Option<Run>,
    /// Column run of the ROI (forward column pass visits only these).
    roi_cols: Option<Run>,
    /// Row run of the ROI (inverse row pass visits only these).
    roi_rows: Option<Run>,
    level: SimdLevel,
}

impl PartialFft2Plan {
    /// Creates an (un-pruned) plan for `rows × cols` transforms at the
    /// detected SIMD tier. Until a support or ROI is declared it behaves
    /// bit-identically to the dense plan.
    ///
    /// # Panics
    /// Panics if either dimension is zero or not a power of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::with_simd_level(rows, cols, SimdLevel::detect())
    }

    /// Creates an (un-pruned) plan pinned to a specific SIMD tier.
    pub fn with_simd_level(rows: usize, cols: usize, level: SimdLevel) -> Self {
        Self {
            rows,
            cols,
            row_plan: PartialFftPlan::with_simd_level(cols, level),
            col_plan: PartialFftPlan::with_simd_level(rows, level),
            input_support: None,
            output_roi: None,
            support_rows: None,
            roi_cols: None,
            roi_rows: None,
            level,
        }
    }

    /// Declares the window outside which forward-transform inputs are exactly
    /// zero (clamped to the field bounds).
    ///
    /// # Panics
    /// Panics if the clamped window is empty.
    pub fn with_input_support(mut self, support: Rect) -> Self {
        let clamped = support.clamp_to(&Rect::of_shape(self.rows, self.cols));
        assert!(
            !clamped.is_empty(),
            "input support {support:?} does not intersect the {}x{} field",
            self.rows,
            self.cols
        );
        self.input_support = Some(clamped);
        self.rebuild();
        self
    }

    /// Declares the spectrum window actually read by the caller (clamped to
    /// the field bounds); forward outputs outside it are zeroed.
    ///
    /// # Panics
    /// Panics if the clamped window is empty.
    pub fn with_output_roi(mut self, roi: Rect) -> Self {
        let clamped = roi.clamp_to(&Rect::of_shape(self.rows, self.cols));
        assert!(
            !clamped.is_empty(),
            "output ROI {roi:?} does not intersect the {}x{} field",
            self.rows,
            self.cols
        );
        self.output_roi = Some(clamped);
        self.rebuild();
        self
    }

    fn rebuild(&mut self) {
        let mut row_plan = PartialFftPlan::with_simd_level(self.cols, self.level);
        let mut col_plan = PartialFftPlan::with_simd_level(self.rows, self.level);
        self.support_rows = None;
        self.roi_cols = None;
        self.roi_rows = None;
        if let Some(s) = self.input_support {
            let (row_run, col_run) = rect_runs(&s);
            self.support_rows = Some(row_run);
            row_plan = row_plan.with_input_run(col_run.0, col_run.1);
            col_plan = col_plan.with_input_run(row_run.0, row_run.1);
        }
        if let Some(roi) = self.output_roi {
            let (row_run, col_run) = rect_runs(&roi);
            self.roi_rows = Some(row_run);
            self.roi_cols = Some(col_run);
            row_plan = row_plan.with_output_run(col_run.0, col_run.1);
            col_plan = col_plan.with_output_run(row_run.0, row_run.1);
        }
        self.row_plan = row_plan;
        self.col_plan = col_plan;
    }

    /// `(rows, cols)` shape the plan was built for.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The declared input support window, if any.
    pub fn input_support(&self) -> Option<Rect> {
        self.input_support
    }

    /// The declared output ROI, if any.
    pub fn output_roi(&self) -> Option<Rect> {
        self.output_roi
    }

    /// The SIMD tier the executed kernels dispatch to.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// Allocates a scratch workspace compatible with this plan (and with the
    /// dense plan of the same shape).
    pub fn make_scratch(&self) -> Fft2Scratch {
        Fft2Scratch::new(self.rows, self.cols)
    }

    /// Pruned in-place forward transform (unnormalised): zero allocations,
    /// ping-pongs through `scratch` like the dense plan.
    ///
    /// The field must be exactly zero outside the declared input support;
    /// with an ROI declared, outputs outside it are zeroed.
    ///
    /// # Panics
    /// Panics if `field` or `scratch` shapes mismatch the plan.
    pub fn forward_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.check_shapes(field, scratch);
        let (rows, cols) = (self.rows, self.cols);
        // Row pass: only rows that hold non-zero input. Each executed row is
        // input-pruned by the support columns and output-pruned (and zeroed)
        // by the ROI columns.
        {
            let buf = field.as_mut_slice();
            let (r0, rl) = self.support_rows.unwrap_or((0, rows));
            for row in buf[r0 * cols..(r0 + rl) * cols].chunks_mut(cols) {
                self.row_plan.forward(row);
            }
        }
        // Full transpose: rows outside the support and columns outside the
        // ROI are genuinely zero at this point (skipped rows by the support
        // contract, non-ROI columns by the row pass's zeroing), so the
        // transposed scratch is exact everywhere.
        simd::transpose_into(self.level, field.as_slice(), rows, cols, &mut scratch.buf);
        // Column pass over the transposed buffer: with an ROI only its
        // columns are needed — the rest are zero and stay zero. Each executed
        // column is input-pruned by the support rows and output-pruned by the
        // ROI rows.
        {
            let (c0, cl) = self.roi_cols.unwrap_or((0, cols));
            for col in scratch.buf[c0 * rows..(c0 + cl) * rows].chunks_mut(rows) {
                self.col_plan.forward(col);
            }
        }
        simd::transpose_into(self.level, &scratch.buf, cols, rows, field.as_mut_slice());
    }

    /// Pruned in-place inverse transform (normalised by `1/(rows·cols)`), for
    /// spectra that are exactly zero outside the declared ROI — the shape the
    /// pruned forward produces. The result is dense (no output pruning).
    ///
    /// # Panics
    /// Panics if `field` or `scratch` shapes mismatch the plan.
    pub fn inverse_in_place(&self, field: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.check_shapes(field, scratch);
        let (rows, cols) = (self.rows, self.cols);
        // Row pass over the ROI rows only: the other rows are all-zero, and
        // the dense inverse would map them to zero (scaling included), so
        // skipping them is exact. Executed rows are input-pruned by the ROI
        // columns.
        {
            let buf = field.as_mut_slice();
            let (r0, rl) = self.roi_rows.unwrap_or((0, rows));
            for row in buf[r0 * cols..(r0 + rl) * cols].chunks_mut(cols) {
                self.row_plan.inverse(row);
            }
        }
        simd::transpose_into(self.level, field.as_slice(), rows, cols, &mut scratch.buf);
        // Column pass over every column (the inverse output is dense), each
        // input-pruned by the ROI rows. Row and column inverses apply 1/cols
        // and 1/rows respectively — the same split normalisation as the
        // dense plan.
        for col in scratch.buf.chunks_mut(rows) {
            self.col_plan.inverse(col);
        }
        simd::transpose_into(self.level, &scratch.buf, cols, rows, field.as_mut_slice());
    }

    /// By-value pruned forward transform (clones the input, builds throwaway
    /// scratch) — for tests and cold paths.
    pub fn forward(&self, field: &CArray2) -> CArray2 {
        let mut out = field.clone();
        self.forward_in_place(&mut out, &mut self.make_scratch());
        out
    }

    /// By-value pruned inverse transform — for tests and cold paths.
    pub fn inverse(&self, field: &CArray2) -> CArray2 {
        let mut out = field.clone();
        self.inverse_in_place(&mut out, &mut self.make_scratch());
        out
    }

    fn check_shapes(&self, field: &CArray2, scratch: &Fft2Scratch) {
        assert_eq!(
            field.shape(),
            (self.rows, self.cols),
            "PartialFft2Plan shape {:?} does not match field shape {:?}",
            (self.rows, self.cols),
            field.shape()
        );
        assert_eq!(
            scratch.shape(),
            (self.rows, self.cols),
            "Fft2Scratch shape {:?} does not match plan shape {:?}",
            scratch.shape(),
            (self.rows, self.cols)
        );
    }
}

/// `(row run, col run)` of a non-empty in-bounds rectangle.
fn rect_runs(rect: &Rect) -> (Run, Run) {
    (
        (rect.row0 as usize, rect.rows()),
        (rect.col0 as usize, rect.cols()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft2d::Fft2Plan;
    use ptycho_array::Array2;

    fn assert_bits_eq(a: &[Complex64], b: &[Complex64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                (x.re.to_bits(), x.im.to_bits()),
                (y.re.to_bits(), y.im.to_bits()),
                "bit mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn supported_signal(n: usize, start: usize, len: usize) -> Vec<Complex64> {
        let mut data = vec![Complex64::ZERO; n];
        for (k, v) in data[start..start + len].iter_mut().enumerate() {
            *v = Complex64::new(
                ((k * 7 + 3) as f64 * 0.37).sin(),
                ((k * 5 + 1) as f64 * 0.83).cos(),
            );
        }
        data
    }

    #[test]
    fn input_pruned_1d_forward_is_bit_identical_to_dense() {
        for &(n, start, len) in &[
            (8usize, 0usize, 2usize),
            (8, 3, 3),
            (64, 10, 7),
            (64, 60, 4),
            (256, 0, 1),
            (256, 97, 32),
            (1024, 500, 24),
        ] {
            let dense = FftPlan::new(n);
            let pruned = PartialFftPlan::new(n).with_input_run(start, len);
            let input = supported_signal(n, start, len);
            let mut a = input.clone();
            let mut b = input.clone();
            dense.forward(&mut a);
            pruned.forward(&mut b);
            assert_bits_eq(&a, &b);
        }
    }

    #[test]
    fn output_pruned_1d_forward_matches_dense_inside_run_and_zeroes_outside() {
        for &(n, start, len) in &[(16usize, 2usize, 5usize), (64, 0, 16), (256, 200, 50)] {
            let dense = FftPlan::new(n);
            let pruned = PartialFftPlan::new(n).with_output_run(start, len);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.21).sin(), (i as f64 * 0.47).cos()))
                .collect();
            let mut a = input.clone();
            let mut b = input.clone();
            dense.forward(&mut a);
            pruned.forward(&mut b);
            assert_bits_eq(&a[start..start + len], &b[start..start + len]);
            for (i, v) in b.iter().enumerate() {
                if !(start..start + len).contains(&i) {
                    assert_eq!(*v, Complex64::ZERO, "output {i} not zeroed");
                }
            }
        }
    }

    #[test]
    fn combined_input_and_output_pruning_compose() {
        let n = 128;
        let (s0, sl) = (40, 9);
        let (r0, rl) = (64, 20);
        let dense = FftPlan::new(n);
        let pruned = PartialFftPlan::new(n)
            .with_input_run(s0, sl)
            .with_output_run(r0, rl);
        let input = supported_signal(n, s0, sl);
        let mut a = input.clone();
        let mut b = input.clone();
        dense.forward(&mut a);
        pruned.forward(&mut b);
        assert_bits_eq(&a[r0..r0 + rl], &b[r0..r0 + rl]);
    }

    #[test]
    fn pruned_1d_inverse_on_roi_spectrum_is_bit_identical_to_dense() {
        for &(n, start, len) in &[(32usize, 5usize, 6usize), (256, 100, 28)] {
            let dense = FftPlan::new(n);
            let pruned = PartialFftPlan::new(n).with_output_run(start, len);
            // A spectrum that is zero outside the ROI — what the pruned
            // forward produces.
            let spectrum = supported_signal(n, start, len);
            let mut a = spectrum.clone();
            let mut b = spectrum.clone();
            dense.inverse(&mut a);
            pruned.inverse(&mut b);
            assert_bits_eq(&a, &b);
        }
    }

    #[test]
    fn degenerate_full_runs_are_bit_identical_to_dense() {
        let n = 64;
        let dense = FftPlan::new(n);
        let pruned = PartialFftPlan::new(n)
            .with_input_run(0, n)
            .with_output_run(0, n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 1.3).cos(), (i as f64 * 0.7).sin()))
            .collect();
        let mut a = input.clone();
        let mut b = input.clone();
        dense.forward(&mut a);
        pruned.forward(&mut b);
        assert_bits_eq(&a, &b);
        dense.inverse(&mut a);
        pruned.inverse(&mut b);
        assert_bits_eq(&a, &b);
    }

    fn supported_field(rows: usize, cols: usize, support: &Rect) -> CArray2 {
        Array2::from_fn(rows, cols, |r, c| {
            if support.contains(r as i64, c as i64) {
                Complex64::new(
                    ((r * 13 + c * 7) as f64 * 0.13).sin(),
                    ((r * 5 + c * 3) as f64 * 0.29).cos(),
                )
            } else {
                Complex64::ZERO
            }
        })
    }

    #[test]
    fn support_pruned_2d_forward_is_bit_identical_to_dense() {
        for &(rows, cols, support) in &[
            (32usize, 32usize, Rect::new(8, 8, 8, 8)),
            (64, 64, Rect::new(0, 0, 16, 16)),
            (64, 32, Rect::new(50, 20, 14, 12)),
            (16, 64, Rect::new(3, 17, 1, 5)),
        ] {
            let field = supported_field(rows, cols, &support);
            let dense = Fft2Plan::new(rows, cols);
            let pruned = PartialFft2Plan::new(rows, cols).with_input_support(support);
            let a = dense.forward(&field);
            let b = pruned.forward(&field);
            assert_bits_eq(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn roi_pruned_2d_forward_matches_dense_inside_roi_and_zeroes_outside() {
        let (rows, cols) = (32usize, 32usize);
        let roi = Rect::new(4, 6, 12, 10);
        let field = supported_field(rows, cols, &Rect::of_shape(rows, cols));
        let dense = Fft2Plan::new(rows, cols);
        let pruned = PartialFft2Plan::new(rows, cols).with_output_roi(roi);
        let a = dense.forward(&field);
        let b = pruned.forward(&field);
        for r in 0..rows {
            for c in 0..cols {
                if roi.contains(r as i64, c as i64) {
                    let (x, y) = (a[(r, c)], b[(r, c)]);
                    assert_eq!(
                        (x.re.to_bits(), x.im.to_bits()),
                        (y.re.to_bits(), y.im.to_bits())
                    );
                } else {
                    assert_eq!(b[(r, c)], Complex64::ZERO, "({r},{c}) not zeroed");
                }
            }
        }
    }

    #[test]
    fn support_and_roi_pruned_2d_roundtrip_recovers_roi_content() {
        // forward with support+ROI pruning, then pruned inverse: must equal
        // dense forward → zero outside ROI → dense inverse, bitwise.
        let (rows, cols) = (64usize, 64usize);
        let support = Rect::new(16, 16, 16, 16);
        let roi = Rect::new(8, 8, 24, 24);
        let field = supported_field(rows, cols, &support);

        let dense = Fft2Plan::new(rows, cols);
        let pruned = PartialFft2Plan::new(rows, cols)
            .with_input_support(support)
            .with_output_roi(roi);

        let mut reference = dense.forward(&field);
        for r in 0..rows {
            for c in 0..cols {
                if !roi.contains(r as i64, c as i64) {
                    reference[(r, c)] = Complex64::ZERO;
                }
            }
        }
        let pruned_fwd = pruned.forward(&field);
        assert_bits_eq(reference.as_slice(), pruned_fwd.as_slice());

        let dense_back = dense.inverse(&reference);
        let pruned_back = pruned.inverse(&pruned_fwd);
        assert_bits_eq(dense_back.as_slice(), pruned_back.as_slice());
    }

    #[test]
    fn pruned_2d_in_place_shares_scratch_with_dense_plan() {
        let (rows, cols) = (32usize, 32usize);
        let support = Rect::new(4, 4, 8, 8);
        let field = supported_field(rows, cols, &support);
        let dense = Fft2Plan::new(rows, cols);
        let pruned = PartialFft2Plan::new(rows, cols).with_input_support(support);
        let mut scratch = dense.make_scratch();

        let mut a = field.clone();
        dense.forward_in_place(&mut a, &mut scratch);
        let mut b = field.clone();
        pruned.forward_in_place(&mut b, &mut scratch);
        assert_bits_eq(a.as_slice(), b.as_slice());
    }

    #[test]
    fn unpruned_partial_2d_plan_is_bit_identical_to_dense() {
        let (rows, cols) = (16usize, 32usize);
        let field = supported_field(rows, cols, &Rect::of_shape(rows, cols));
        let dense = Fft2Plan::new(rows, cols);
        let pruned = PartialFft2Plan::new(rows, cols);
        assert_bits_eq(
            dense.forward(&field).as_slice(),
            pruned.forward(&field).as_slice(),
        );
        assert_bits_eq(
            dense.inverse(&field).as_slice(),
            pruned.inverse(&field).as_slice(),
        );
    }

    #[test]
    fn pruning_works_at_every_simd_level() {
        let (rows, cols) = (32usize, 32usize);
        let support = Rect::new(10, 12, 6, 9);
        let field = supported_field(rows, cols, &support);
        let reference = PartialFft2Plan::with_simd_level(rows, cols, SimdLevel::Scalar)
            .with_input_support(support)
            .forward(&field);
        for level in SimdLevel::available_levels() {
            let out = PartialFft2Plan::with_simd_level(rows, cols, level)
                .with_input_support(support)
                .forward(&field);
            if level <= SimdLevel::Sse2 {
                assert_bits_eq(reference.as_slice(), out.as_slice());
            } else {
                for (x, y) in reference.as_slice().iter().zip(out.as_slice()) {
                    assert!((*x - *y).abs() < 1e-10, "{x:?} vs {y:?} at {level:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not intersect")]
    fn empty_support_panics() {
        let _ = PartialFft2Plan::new(16, 16).with_input_support(Rect::new(20, 20, 4, 4));
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_run_panics() {
        let _ = PartialFftPlan::new(16).with_input_run(3, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds transform length")]
    fn out_of_bounds_run_panics() {
        let _ = PartialFftPlan::new(16).with_output_run(10, 8);
    }
}
