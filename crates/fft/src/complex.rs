//! A minimal double-precision complex number.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// This type exists so that the workspace has no external numeric dependencies;
/// it implements exactly the operations the FFT kernels, the multi-slice
/// propagation model and the gradient computations require.
// `repr(C)` guarantees the `re, im` field order in memory, so a
// `&[Complex64]` is exactly a dense `re, im, re, im, …` f64 sequence — the
// layout the SIMD butterfly kernels load two lanes at a time.
#[repr(C)]
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}`: the unit-magnitude phase factor used for propagators and
    /// twiddle factors.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `re² + im²` (the measured diffraction intensity).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^{z}`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Reciprocal `1/z`. Returns a non-finite value when `z` is zero, like
    /// scalar division.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// The complex number with the same phase but unit magnitude; zero maps to
    /// zero. Used by the amplitude-projection gradient of the likelihood term.
    #[inline]
    pub fn unit_phase(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            Complex64::ZERO
        } else {
            self.scale(1.0 / a)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Complex division is multiplication by the reciprocal; not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO, Complex64::new(0.0, 0.0));
        assert_eq!(Complex64::ONE.re, 1.0);
        assert_eq!(Complex64::I.im, 1.0);
        assert_eq!(Complex64::from(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z + (-z), Complex64::ZERO));
        assert!(close(z / z, Complex64::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn multiplication_known_value() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        assert!(close(a * b, Complex64::new(-5.0, 10.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.25);
        let b = Complex64::new(-0.5, 3.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn abs_norm_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((Complex64::I.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * 0.39;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex64::new(1.0, 2.0);
        assert!(close(z.conj().conj(), z));
        let prod = z * z.conj();
        assert!((prod.im).abs() < EPS);
        assert!((prod.re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 1.234;
        assert!(close(
            Complex64::new(0.0, theta).exp(),
            Complex64::cis(theta)
        ));
    }

    #[test]
    fn unit_phase_zero_and_nonzero() {
        assert_eq!(Complex64::ZERO.unit_phase(), Complex64::ZERO);
        let z = Complex64::new(-3.0, 4.0);
        let u = z.unit_phase();
        assert!((u.abs() - 1.0).abs() < EPS);
        assert!((u.arg() - z.arg()).abs() < EPS);
    }

    #[test]
    fn assign_operators() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::new(1.0, 0.0);
        z -= Complex64::new(0.0, 1.0);
        z *= Complex64::new(2.0, 0.0);
        z /= Complex64::new(2.0, 0.0);
        assert!(close(z, Complex64::new(2.0, 0.0)));
    }

    #[test]
    fn sum_iterators() {
        let values = [Complex64::new(1.0, 1.0); 4];
        let owned: Complex64 = values.iter().copied().sum();
        let referenced: Complex64 = values.iter().sum();
        assert!(close(owned, Complex64::new(4.0, 4.0)));
        assert!(close(referenced, owned));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(2.0, -6.0);
        assert!(close(z * 0.5, Complex64::new(1.0, -3.0)));
        assert!(close(z / 2.0, Complex64::new(1.0, -3.0)));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{:?}", Complex64::new(1.0, -2.0)), "1-2i");
    }
}
