//! Property-based tests for the FFT kernels.

use proptest::prelude::*;
use ptycho_array::{Array2, Rect};
use ptycho_fft::fft2d::{fft2, fftshift, ifft2, ifftshift, Fft2Plan};
use ptycho_fft::{dft, Complex64, FftPlan, PartialFft2Plan, SimdLevel};

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

fn pow2_len() -> impl Strategy<Value = usize> {
    (0u32..8).prop_map(|e| 1usize << e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_is_identity(len in pow2_len()) {
        let data = (0..len)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect::<Vec<_>>();
        let plan = FftPlan::new(len);
        let mut work = data.clone();
        plan.forward(&mut work);
        plan.inverse(&mut work);
        for (a, b) in work.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_dft_random_input(exp in 1u32..7, values in complex_vec(64)) {
        let len = 1usize << exp;
        let data: Vec<Complex64> = values.into_iter().cycle().take(len).collect();
        let plan = FftPlan::new(len);
        let mut fast = data.clone();
        plan.forward(&mut fast);
        let slow = dft::dft(&data);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6 * len as f64);
        }
    }

    #[test]
    fn parseval_holds(exp in 1u32..8) {
        let len = 1usize << exp;
        let data: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new((i as f64 * 0.11).sin() * 3.0, (i as f64 * 0.03).cos()))
            .collect();
        let plan = FftPlan::new(len);
        let mut spec = data.clone();
        plan.forward(&mut spec);
        let e_time: f64 = data.iter().map(|v| v.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / len as f64;
        prop_assert!((e_time - e_freq).abs() < 1e-7 * e_time.max(1.0));
    }

    #[test]
    fn fft_is_linear(exp in 1u32..6, alpha_re in -5.0f64..5.0, alpha_im in -5.0f64..5.0) {
        let len = 1usize << exp;
        let alpha = Complex64::new(alpha_re, alpha_im);
        let a: Vec<Complex64> = (0..len).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let b: Vec<Complex64> = (0..len).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let plan = FftPlan::new(len);

        let mut combined: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x * alpha + *y).collect();
        plan.forward(&mut combined);

        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);

        for ((l, x), y) in combined.iter().zip(&fa).zip(&fb) {
            prop_assert!((*l - (*x * alpha + *y)).abs() < 1e-6 * len as f64);
        }
    }

    #[test]
    fn fft2_roundtrip(rexp in 0u32..5, cexp in 0u32..5) {
        let rows = 1usize << rexp;
        let cols = 1usize << cexp;
        let field = Array2::from_fn(rows, cols, |r, c| {
            Complex64::new((r as f64 * 0.9 + c as f64 * 0.3).sin(), (r as f64 - c as f64) * 0.01)
        });
        let back = ifft2(&fft2(&field));
        for (a, b) in back.as_slice().iter().zip(field.as_slice()) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft2_parallel_equals_serial(rexp in 1u32..5, cexp in 1u32..5) {
        let rows = 1usize << rexp;
        let cols = 1usize << cexp;
        let field = Array2::from_fn(rows, cols, |r, c| {
            Complex64::new((r * cols + c) as f64, ((r + c) % 7) as f64)
        });
        let plan = Fft2Plan::new(rows, cols);
        let serial = plan.forward(&field);
        let parallel = plan.forward_par(&field);
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            prop_assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_roundtrip_any_shape(rows in 1usize..12, cols in 1usize..12) {
        let field: Array2<f64> = Array2::from_fn(rows, cols, |r, c| (r * cols + c) as f64);
        prop_assert_eq!(ifftshift(&fftshift(&field)), field.clone());
        prop_assert_eq!(fftshift(&ifftshift(&field)), field);
    }

    #[test]
    fn partial_fft2_equals_dense_bitwise_on_supported_input(
        rexp in 2u32..7, cexp in 2u32..7,
        r0_seed in 0usize..1024, rl_seed in 0usize..1024,
        c0_seed in 0usize..1024, cl_seed in 0usize..1024,
    ) {
        let rows = 1usize << rexp;
        let cols = 1usize << cexp;
        // Arbitrary non-empty support window, derived from the seeds by
        // modular clamping so every seed combination is valid.
        let r0 = r0_seed % rows;
        let rl = 1 + rl_seed % (rows - r0);
        let c0 = c0_seed % cols;
        let cl = 1 + cl_seed % (cols - c0);
        let support = Rect::new(r0 as i64, c0 as i64, rl as i64, cl as i64);

        let field = Array2::from_fn(rows, cols, |r, c| {
            if support.contains(r as i64, c as i64) {
                Complex64::new((r as f64 * 0.9 + c as f64 * 0.3).sin(), (r as f64 - c as f64) * 0.01)
            } else {
                Complex64::ZERO
            }
        });
        let dense = Fft2Plan::new(rows, cols).forward(&field);
        let pruned = PartialFft2Plan::new(rows, cols)
            .with_input_support(support)
            .forward(&field);
        for (a, b) in dense.as_slice().iter().zip(pruned.as_slice()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn partial_fft2_roi_matches_dense_inside_and_zero_outside(
        rexp in 2u32..6, cexp in 2u32..6,
        r0_seed in 0usize..1024, rl_seed in 0usize..1024,
        c0_seed in 0usize..1024, cl_seed in 0usize..1024,
    ) {
        let rows = 1usize << rexp;
        let cols = 1usize << cexp;
        let r0 = r0_seed % rows;
        let rl = 1 + rl_seed % (rows - r0);
        let c0 = c0_seed % cols;
        let cl = 1 + cl_seed % (cols - c0);
        let roi = Rect::new(r0 as i64, c0 as i64, rl as i64, cl as i64);

        let field = Array2::from_fn(rows, cols, |r, c| {
            Complex64::new(((r * 3 + c) as f64 * 0.17).cos(), ((r + c * 5) as f64 * 0.41).sin())
        });
        let dense = Fft2Plan::new(rows, cols).forward(&field);
        let pruned = PartialFft2Plan::new(rows, cols)
            .with_output_roi(roi)
            .forward(&field);
        for r in 0..rows {
            for c in 0..cols {
                let (a, b) = (dense[(r, c)], pruned[(r, c)]);
                if roi.contains(r as i64, c as i64) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                } else {
                    prop_assert_eq!(b, Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn simd_roundtrip_matches_scalar_roundtrip_within_ulp_bound(exp in 1u32..11) {
        let len = 1usize << exp;
        let data: Vec<Complex64> = (0..len)
            .map(|i| Complex64::new((i as f64 * 0.61).sin(), (i as f64 * 0.23).cos()))
            .collect();
        let scalar_plan = FftPlan::with_simd_level(len, SimdLevel::Scalar);
        let mut reference = data.clone();
        scalar_plan.forward(&mut reference);
        scalar_plan.inverse(&mut reference);
        let max_mag = reference.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        // The documented per-transform bound from the `simd` module docs is
        // 4·log2(n)·ε·M; a roundtrip chains two transforms, so double it,
        // then double again for test headroom (the same budget the unit
        // tests use).
        let tol = 16.0 * (len as f64).log2().max(1.0) * f64::EPSILON * max_mag.max(1.0);
        for level in SimdLevel::available_levels() {
            let plan = FftPlan::with_simd_level(len, level);
            let mut work = data.clone();
            plan.forward(&mut work);
            plan.inverse(&mut work);
            for (a, b) in work.iter().zip(&reference) {
                if level <= SimdLevel::Sse2 {
                    // Scalar and SSE2 are bit-identical by contract.
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                } else {
                    prop_assert!((*a - *b).abs() <= tol, "{a:?} vs {b:?} at {level:?} (tol {tol:e})");
                }
            }
        }
    }

    #[test]
    fn complex_field_axioms(are in -50.0f64..50.0, aim in -50.0f64..50.0,
                            bre in -50.0f64..50.0, bim in -50.0f64..50.0,
                            cre in -50.0f64..50.0, cim in -50.0f64..50.0) {
        let a = Complex64::new(are, aim);
        let b = Complex64::new(bre, bim);
        let c = Complex64::new(cre, cim);
        // Commutativity and distributivity (within floating-point tolerance).
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
        prop_assert!(((a * (b + c)) - (a * b + a * c)).abs() < 1e-6);
        // Conjugation is multiplicative.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6);
    }
}
