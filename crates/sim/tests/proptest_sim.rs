//! Property-based tests for the physics substrate: scans, probes, the
//! multi-slice model and the likelihood gradient.

use proptest::prelude::*;
use ptycho_array::Array3;
use ptycho_fft::Complex64;
use ptycho_sim::gradient::{probe_gradient, probe_loss};
use ptycho_sim::multislice::MultisliceModel;
use ptycho_sim::physics::{electron_wavelength_pm, ImagingGeometry};
use ptycho_sim::probe::{Probe, ProbeConfig};
use ptycho_sim::scan::{ScanConfig, ScanPattern};

fn test_model(window: usize, slices: usize, defocus: f64) -> MultisliceModel {
    let probe = Probe::new(ProbeConfig {
        window_px: window,
        geometry: ImagingGeometry {
            pixel_size_pm: 50.0,
            defocus_pm: defocus,
            ..ImagingGeometry::paper()
        },
        total_intensity: 1.0,
    });
    MultisliceModel::new(probe, slices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wavelength_is_positive_and_decreasing(energy_kev in 20.0f64..1000.0) {
        let lambda = electron_wavelength_pm(energy_kev * 1e3);
        let lambda_higher = electron_wavelength_pm((energy_kev + 50.0) * 1e3);
        prop_assert!(lambda > 0.0);
        prop_assert!(lambda_higher < lambda);
    }

    #[test]
    fn scan_patterns_have_consistent_geometry(rows in 1usize..8, cols in 1usize..8,
                                              step in 2.0f64..24.0) {
        let config = ScanConfig {
            rows,
            cols,
            step_px: step,
            origin_px: (30.0, 30.0),
            window_px: 16,
            probe_radius_px: 8.0,
        };
        let pattern = ScanPattern::generate(config);
        prop_assert_eq!(pattern.len(), rows * cols);
        // Raster order: indices increase along columns first.
        for (i, loc) in pattern.locations().iter().enumerate() {
            prop_assert_eq!(loc.index, i);
            prop_assert_eq!(loc.grid_pos, (i / cols, i % cols));
            prop_assert_eq!(loc.window.shape(), (16, 16));
        }
        // Overlap ratio is within [0, 1] and decreases with the step size.
        let ratio = config.overlap_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn probe_normalisation_holds_for_any_dose(dose in 0.1f64..50.0, window_exp in 4u32..7) {
        let probe = Probe::new(ProbeConfig {
            window_px: 1 << window_exp,
            geometry: ImagingGeometry {
                pixel_size_pm: 50.0,
                defocus_pm: 10_000.0,
                ..ImagingGeometry::paper()
            },
            total_intensity: dose,
        });
        prop_assert!((probe.total_intensity() - dose).abs() < 1e-9 * dose.max(1.0));
        prop_assert!(probe.radius_px() > 0.0);
    }

    #[test]
    fn forward_model_conserves_energy_for_phase_objects(slices in 1usize..4,
                                                        strength in 0.0f64..0.8) {
        // Pure phase objects and unitary propagation preserve the beam energy.
        let model = test_model(16, slices, 8_000.0);
        let object = Array3::from_fn(slices, 16, 16, |s, r, c| {
            Complex64::cis(strength * ((r * 3 + c * 5 + s) as f64 * 0.21).sin())
        });
        let pass = model.forward(&object);
        let exit_energy: f64 = pass.incident.last().unwrap().as_slice().iter()
            .map(|v| v.norm_sqr()).sum();
        let probe_energy = model.probe().total_intensity();
        prop_assert!((exit_energy - probe_energy).abs() < 1e-9 * probe_energy);
    }

    #[test]
    fn loss_is_nonnegative_and_zero_only_at_match(strength in 0.05f64..0.5) {
        let model = test_model(16, 2, 8_000.0);
        let truth = Array3::from_fn(2, 16, 16, |s, r, c| {
            Complex64::cis(strength * ((r + 2 * c + 3 * s) as f64 * 0.17).cos())
        });
        let measured = model.simulate_amplitude(&truth);
        let perfect = probe_loss(&model, &truth, &measured);
        prop_assert!(perfect >= 0.0);
        prop_assert!(perfect < 1e-15);

        let flat = Array3::full(2, 16, 16, Complex64::ONE);
        let mismatched = probe_loss(&model, &flat, &measured);
        prop_assert!(mismatched >= 0.0);
        prop_assert!(mismatched >= perfect);
    }

    #[test]
    fn gradient_descent_direction_reduces_loss(strength in 0.1f64..0.4, seed in 0u64..32) {
        // A single small step along the negative gradient never increases the
        // loss (first-order descent property).
        let model = test_model(16, 2, 8_000.0);
        let truth = Array3::from_fn(2, 16, 16, |s, r, c| {
            Complex64::cis(strength * ((r * 7 + c * 11 + s + seed as usize) as f64 * 0.13).sin())
        });
        let measured = model.simulate_amplitude(&truth);
        let guess = Array3::full(2, 16, 16, Complex64::ONE);
        let result = probe_gradient(&model, &guess, &measured);
        if result.loss > 1e-12 {
            let step = 1e-4 * ptycho_sim::suggested_step(&model);
            let mut updated = guess.clone();
            ptycho_sim::apply_gradient_step(&mut updated, &result.gradient, step);
            let new_loss = probe_loss(&model, &updated, &measured);
            prop_assert!(new_loss <= result.loss * (1.0 + 1e-9),
                "tiny descent step increased the loss: {} -> {}", result.loss, new_loss);
        }
    }
}
