//! Datasets: simulated acquisition at laptop scale, plus the paper-scale
//! geometry presets of Table I that drive the memory and performance models.

use crate::gradient::probe_loss;
use crate::multislice::MultisliceModel;
use crate::noise::{apply_poisson_noise, intensity_to_amplitude};
use crate::physics::ImagingGeometry;
use crate::probe::{Probe, ProbeConfig};
use crate::scan::{ProbeLocation, ScanConfig, ScanPattern};
use crate::specimen::{Specimen, SpecimenConfig};
use ptycho_array::{Array2, Rect};
use ptycho_fft::{CArray3, Complex64};

/// Bytes per complex voxel (two `f64`s), used consistently by the memory model.
pub const BYTES_PER_COMPLEX: usize = 16;
/// Bytes per real measurement value (`f32` on the detector, as in the paper's
/// implementation which stores measurements in single precision).
pub const BYTES_PER_MEASUREMENT: usize = 4;

/// The *geometry* of a dataset — everything the scaling and memory models need,
/// without any pixel data. Table I of the paper in code form.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of probe locations (N in Eqn. 1).
    pub probe_locations: usize,
    /// Scan grid (rows, cols) whose product is `probe_locations`.
    pub scan_grid: (usize, usize),
    /// Detector size in pixels per side (diffraction patterns are square).
    pub detector_px: usize,
    /// Reconstruction size: (slices, rows, cols).
    pub reconstruction: (usize, usize, usize),
    /// Voxel size in picometres: (x, y, z).
    pub voxel_size_pm: (f64, f64, f64),
    /// Imaging geometry used for acquisition.
    pub geometry: ImagingGeometry,
}

impl DatasetSpec {
    /// The small Lead Titanate dataset of Table I: 4158 probe locations,
    /// 1024² detector, 1536²×100 reconstruction at 10×10×125 pm³ voxels.
    pub fn lead_titanate_small() -> Self {
        Self {
            name: "Lead Titanate small".to_string(),
            probe_locations: 4158,
            scan_grid: (63, 66),
            detector_px: 1024,
            reconstruction: (100, 1536, 1536),
            voxel_size_pm: (10.0, 10.0, 125.0),
            geometry: ImagingGeometry::paper(),
        }
    }

    /// The large Lead Titanate dataset of Table I: 16632 probe locations,
    /// 1024² detector, 3072²×100 reconstruction at 10×10×125 pm³ voxels.
    pub fn lead_titanate_large() -> Self {
        Self {
            name: "Lead Titanate large".to_string(),
            probe_locations: 16632,
            scan_grid: (126, 132),
            detector_px: 1024,
            reconstruction: (100, 3072, 3072),
            voxel_size_pm: (10.0, 10.0, 125.0),
            geometry: ImagingGeometry::paper(),
        }
    }

    /// Total number of measurement values (`1024 × 1024 × N` in Table I).
    pub fn measurement_values(&self) -> usize {
        self.detector_px * self.detector_px * self.probe_locations
    }

    /// Total measurement storage in bytes.
    pub fn measurement_bytes(&self) -> usize {
        self.measurement_values() * BYTES_PER_MEASUREMENT
    }

    /// Total number of voxels in the reconstruction.
    pub fn voxel_count(&self) -> usize {
        let (d, r, c) = self.reconstruction;
        d * r * c
    }

    /// Total reconstruction storage in bytes (complex voxels).
    pub fn reconstruction_bytes(&self) -> usize {
        self.voxel_count() * BYTES_PER_COMPLEX
    }

    /// Lateral size of the reconstruction in pixels (rows == cols for both
    /// paper datasets).
    pub fn lateral_px(&self) -> usize {
        self.reconstruction.1
    }

    /// Number of object slices.
    pub fn slices(&self) -> usize {
        self.reconstruction.0
    }

    /// Margin between the image edge and the first probe centre, in pixels:
    /// the defocused probe (and a little slack) must stay inside the
    /// reconstruction.
    pub fn scan_margin_px(&self) -> f64 {
        1.5 * self.probe_radius_px()
    }

    /// Scan step in pixels, derived from the reconstruction extent and grid:
    /// the probe centres cover the image up to [`Self::scan_margin_px`] on
    /// each side.
    pub fn scan_step_px(&self) -> f64 {
        let (rows, cols) = self.scan_grid;
        let usable = self.lateral_px() as f64 - 2.0 * self.scan_margin_px();
        (usable / (rows.max(cols) as f64 - 1.0)).max(1.0)
    }

    /// The probe-location circle radius in pixels (defocus spread).
    pub fn probe_radius_px(&self) -> f64 {
        self.geometry.probe_radius_px()
    }

    /// Linear probe overlap ratio, `1 − step/(2·radius)`, clamped to `[0, 1]`.
    /// Both paper datasets sit far above the 70% threshold quoted in Sec. II-A.
    pub fn overlap_ratio(&self) -> f64 {
        (1.0 - self.scan_step_px() / (2.0 * self.probe_radius_px())).clamp(0.0, 1.0)
    }

    /// Probe locations whose circle centre falls inside each tile of a
    /// `grid × grid` decomposition — the average count per tile, used by the
    /// memory model.
    pub fn avg_locations_per_tile(&self, grid: usize) -> f64 {
        self.probe_locations as f64 / (grid * grid) as f64
    }
}

/// Configuration for synthesising a laptop-scale dataset that exercises every
/// code path of the reconstruction (acquisition through the same forward model
/// used for reconstruction, optional Poisson noise).
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Lateral object size in pixels (square).
    pub object_px: usize,
    /// Number of object slices.
    pub slices: usize,
    /// Scan grid (rows, cols).
    pub scan_grid: (usize, usize),
    /// Probe window in pixels (power of two).
    pub window_px: usize,
    /// Poisson dose scale; `None` means noiseless data.
    pub dose: Option<f64>,
    /// Probe defocus in picometres; larger values spread the probe into the
    /// large overlapping circles of the paper's high-overlap regime.
    pub defocus_pm: f64,
    /// RNG seed for specimen and noise.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            object_px: 128,
            slices: 2,
            scan_grid: (4, 4),
            window_px: 32,
            dose: None,
            defocus_pm: 12_000.0,
            seed: 11,
        }
    }
}

impl SyntheticConfig {
    /// The tiny configuration used by fast unit tests.
    pub fn tiny() -> Self {
        Self {
            object_px: 96,
            slices: 2,
            scan_grid: (3, 3),
            window_px: 32,
            dose: None,
            defocus_pm: 12_000.0,
            seed: 5,
        }
    }

    /// The geometry the `quickstart` example runs: a 6×6 raster with 45 nm
    /// defocus spreading each probe into a ~24 px circle, giving the >70%
    /// probe overlap of the paper's acquisitions (the example prints ~73%).
    /// Shared with the regression test that pins this overlap, so the
    /// example and its test cannot drift apart.
    pub fn quickstart() -> Self {
        Self {
            object_px: 128,
            slices: 2,
            scan_grid: (6, 6),
            window_px: 64,
            dose: None,
            defocus_pm: 45_000.0,
            seed: 42,
        }
    }
}

/// One newly arrived scan position with its measurement — the unit of live
/// ingestion. A beamline streams these as the acquisition progresses;
/// [`Dataset::ingest`] splices them into a dataset between reconstruction
/// iterations.
#[derive(Clone, Debug)]
pub struct ScanFrame {
    /// The probe location, carrying its acquisition index.
    pub location: ProbeLocation,
    /// The measured diffraction amplitude at that location.
    pub measurement: Array2<f64>,
}

/// A fully synthesised dataset: ground-truth specimen, probe, scan pattern and
/// per-probe-location diffraction amplitudes.
#[derive(Clone, Debug)]
pub struct Dataset {
    spec_name: String,
    /// The configuration the acquisition was synthesised from — retained so
    /// a resumed process can re-synthesise the identical dataset from the
    /// persisted job spec alone.
    synthetic: SyntheticConfig,
    specimen: Specimen,
    model: MultisliceModel,
    scan: ScanPattern,
    /// Measured diffraction amplitudes `|y_i|`, one per probe location, in
    /// acquisition order.
    measurements: Vec<Array2<f64>>,
}

impl Dataset {
    /// Simulates acquisition of a synthetic dataset.
    pub fn synthesize(config: SyntheticConfig) -> Self {
        let geometry = ImagingGeometry {
            pixel_size_pm: 50.0,
            defocus_pm: config.defocus_pm,
            ..ImagingGeometry::paper()
        };
        let specimen = Specimen::generate(SpecimenConfig {
            shape_px: (config.object_px, config.object_px),
            slices: config.slices,
            geometry,
            seed: config.seed,
            ..SpecimenConfig::default()
        });
        let probe = Probe::new(ProbeConfig {
            window_px: config.window_px,
            geometry,
            total_intensity: 1.0,
        });
        let scan = ScanPattern::generate(ScanConfig::covering(
            config.object_px,
            config.object_px,
            config.scan_grid.0,
            config.scan_grid.1,
            config.window_px,
            probe.radius_px(),
        ));
        let model = MultisliceModel::new(probe, config.slices);

        let truth = specimen.transmission();
        let mut measurements = Vec::with_capacity(scan.len());
        for (i, loc) in scan.locations().iter().enumerate() {
            let patch = extract_patch(truth, &loc.window);
            let pass = model.forward(&patch);
            let amplitude = match config.dose {
                None => pass.amplitude(),
                Some(dose) => {
                    let noisy =
                        apply_poisson_noise(&pass.intensity(), dose, config.seed ^ (i as u64));
                    intensity_to_amplitude(&noisy)
                }
            };
            measurements.push(amplitude);
        }

        Self {
            spec_name: format!(
                "synthetic {}x{} / {} slices / {} probes",
                config.object_px,
                config.object_px,
                config.slices,
                scan.len()
            ),
            synthetic: config,
            specimen,
            model,
            scan,
            measurements,
        }
    }

    /// Human-readable description of the dataset.
    pub fn name(&self) -> &str {
        &self.spec_name
    }

    /// The configuration this dataset was synthesised from.
    pub fn synthetic_config(&self) -> SyntheticConfig {
        self.synthetic
    }

    /// The dataset restricted to its first `n` probe locations — what a
    /// streamed acquisition looks like before the tail has arrived. The
    /// remaining frames ([`Dataset::frames_after`]) can later be spliced
    /// back with [`Dataset::ingest`], rebuilding this dataset exactly.
    ///
    /// # Panics
    /// Panics if `n` exceeds the number of scanned locations.
    pub fn with_scan_prefix(mut self, n: usize) -> Self {
        self.scan = self.scan.prefix(n);
        self.measurements.truncate(n);
        self
    }

    /// The frames after the first `n` — the stream a live acquisition would
    /// deliver to a run started on [`Dataset::with_scan_prefix`]`(n)`.
    pub fn frames_after(&self, n: usize) -> Vec<ScanFrame> {
        self.scan.locations()[n..]
            .iter()
            .map(|&location| ScanFrame {
                measurement: self.measurements[location.index].clone(),
                location,
            })
            .collect()
    }

    /// Splices newly arrived frames into the dataset. Frames must continue
    /// acquisition order ([`ScanPattern::push`] enforces contiguity), so the
    /// dataset after ingesting `frames_after(n)` into `with_scan_prefix(n)`
    /// is bit-identical to the original — which is what lets a streamed
    /// reconstruction converge to the same volume as a batch one.
    pub fn ingest(&mut self, frames: impl IntoIterator<Item = ScanFrame>) {
        for frame in frames {
            self.scan.push(frame.location);
            self.measurements.push(frame.measurement);
        }
    }

    /// The ground-truth specimen the data was simulated from.
    pub fn specimen(&self) -> &Specimen {
        &self.specimen
    }

    /// The bound multi-slice model (probe + propagation).
    pub fn model(&self) -> &MultisliceModel {
        &self.model
    }

    /// The scan pattern.
    pub fn scan(&self) -> &ScanPattern {
        &self.scan
    }

    /// Measured amplitudes in acquisition order.
    pub fn measurements(&self) -> &[Array2<f64>] {
        &self.measurements
    }

    /// The measurement for one probe location.
    pub fn measurement(&self, location: &ProbeLocation) -> &Array2<f64> {
        &self.measurements[location.index]
    }

    /// Shape of the reconstruction volume `(slices, rows, cols)`.
    pub fn object_shape(&self) -> (usize, usize, usize) {
        self.specimen.transmission().shape()
    }

    /// The standard initial guess: unit transmission everywhere.
    pub fn initial_guess(&self) -> CArray3 {
        self.specimen.flat_like()
    }

    /// The total Maximum-Likelihood cost `F(V)` of Eqn. (1) for a candidate
    /// reconstruction, summed over every probe location.
    pub fn total_cost(&self, object: &CArray3) -> f64 {
        self.scan
            .locations()
            .iter()
            .map(|loc| {
                let patch = extract_patch(object, &loc.window);
                probe_loss(&self.model, &patch, self.measurement(loc))
            })
            .sum()
    }
}

/// Extracts the (slices, window, window) object patch covered by a probe
/// window; cells outside the object are vacuum (unit transmission).
pub fn extract_patch(object: &CArray3, window: &Rect) -> CArray3 {
    object.extract_region_with_fill(*window, Complex64::ONE)
}

/// Adds a patch-shaped gradient into a full-volume gradient accumulator at the
/// probe window position (the scatter step of Eqn. 2).
pub fn scatter_patch(accumulator: &mut CArray3, window: &Rect, patch: &CArray3) {
    accumulator.add_region(*window, patch);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_sizes() {
        let spec = DatasetSpec::lead_titanate_small();
        assert_eq!(spec.probe_locations, 4158);
        assert_eq!(spec.scan_grid.0 * spec.scan_grid.1, 4158);
        assert_eq!(spec.measurement_values(), 1024 * 1024 * 4158);
        assert_eq!(spec.voxel_count(), 1536 * 1536 * 100);
        assert_eq!(spec.voxel_size_pm, (10.0, 10.0, 125.0));
    }

    #[test]
    fn table1_large_sizes() {
        let spec = DatasetSpec::lead_titanate_large();
        assert_eq!(spec.probe_locations, 16632);
        assert_eq!(spec.scan_grid.0 * spec.scan_grid.1, 16632);
        assert_eq!(spec.measurement_values(), 1024 * 1024 * 16632);
        assert_eq!(spec.voxel_count(), 3072 * 3072 * 100);
        // The large dataset is 4x the small one both in probes and voxels.
        let small = DatasetSpec::lead_titanate_small();
        assert_eq!(spec.probe_locations, 4 * small.probe_locations);
        assert_eq!(spec.voxel_count(), 4 * small.voxel_count());
    }

    #[test]
    fn paper_datasets_have_high_overlap() {
        for spec in [
            DatasetSpec::lead_titanate_small(),
            DatasetSpec::lead_titanate_large(),
        ] {
            assert!(
                spec.overlap_ratio() > 0.7,
                "{} overlap ratio {} should exceed the 70% threshold",
                spec.name,
                spec.overlap_ratio()
            );
        }
    }

    #[test]
    fn paper_datasets_pin_the_86_87_percent_overlap() {
        // Regression test for the overlap-ratio audit: the paper quotes
        // 86-87% probe overlap for both Lead Titanate datasets, and Table I
        // renders the ratio as a whole percentage. Pin both the numeric range
        // and the rendered value so neither the scan-step derivation nor the
        // ratio formula can silently drift.
        for (spec, expected_percent) in [
            (DatasetSpec::lead_titanate_small(), "87"),
            (DatasetSpec::lead_titanate_large(), "86"),
        ] {
            let ratio = spec.overlap_ratio();
            assert!(
                (0.85..0.88).contains(&ratio),
                "{}: overlap ratio {ratio} outside the paper's 86-87% band",
                spec.name
            );
            let rendered = format!("{:.0}", ratio * 100.0);
            assert_eq!(
                rendered, expected_percent,
                "{}: Table I would render {rendered}%, paper says {expected_percent}%",
                spec.name
            );
        }
    }

    #[test]
    fn synthetic_dataset_shapes() {
        let ds = Dataset::synthesize(SyntheticConfig::tiny());
        assert_eq!(ds.scan().len(), 9);
        assert_eq!(ds.measurements().len(), 9);
        assert_eq!(ds.object_shape(), (2, 96, 96));
        for m in ds.measurements() {
            assert_eq!(m.shape(), (32, 32));
        }
    }

    #[test]
    fn ground_truth_has_zero_cost_noiseless() {
        let ds = Dataset::synthesize(SyntheticConfig::tiny());
        let truth = ds.specimen().transmission().clone();
        let cost = ds.total_cost(&truth);
        assert!(cost < 1e-14, "got {cost}");
    }

    #[test]
    fn initial_guess_has_positive_cost() {
        let ds = Dataset::synthesize(SyntheticConfig::tiny());
        let flat = ds.initial_guess();
        assert!(ds.total_cost(&flat) > 1e-6);
    }

    #[test]
    fn noise_increases_ground_truth_cost() {
        let mut config = SyntheticConfig::tiny();
        config.dose = Some(1000.0);
        let noisy = Dataset::synthesize(config);
        let truth = noisy.specimen().transmission().clone();
        let cost = noisy.total_cost(&truth);
        assert!(
            cost > 1e-10,
            "noisy data should not fit exactly, got {cost}"
        );
    }

    #[test]
    fn extract_and_scatter_roundtrip() {
        let ds = Dataset::synthesize(SyntheticConfig::tiny());
        let loc = ds.scan().locations()[4];
        let truth = ds.specimen().transmission();
        let patch = extract_patch(truth, &loc.window);
        assert_eq!(patch.shape(), (2, 32, 32));

        let (d, r, c) = ds.object_shape();
        let mut acc = ptycho_array::Array3::full(d, r, c, Complex64::ZERO);
        scatter_patch(&mut acc, &loc.window, &patch);
        // The scattered energy equals the patch energy over the in-bounds part.
        let clipped = loc.window.intersect(&acc.plane_bounds());
        assert_eq!(clipped, loc.window, "tiny scan windows stay in bounds");
        let acc_energy: f64 = acc.iter().map(|v| v.norm_sqr()).sum();
        let patch_energy: f64 = patch.iter().map(|v| v.norm_sqr()).sum();
        assert!((acc_energy - patch_energy).abs() < 1e-9);
    }

    #[test]
    fn measurements_are_deterministic() {
        let a = Dataset::synthesize(SyntheticConfig::tiny());
        let b = Dataset::synthesize(SyntheticConfig::tiny());
        for (x, y) in a.measurements().iter().zip(b.measurements()) {
            assert_eq!(x, y);
        }
    }
}
