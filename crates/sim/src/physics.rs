//! Electron-optics constants and unit helpers.
//!
//! The paper's datasets are acquired (in simulation) at 200 keV with a 30 mrad
//! probe-forming aperture, 25 nm defocus, 10 pm lateral voxel size and 125 pm
//! slice thickness. This module converts those experimental knobs into the
//! dimensionless quantities the wave-optics code needs (wavelength in
//! picometres, spatial-frequency cutoffs in cycles per pixel).

/// Planck constant times speed of light, in eV·pm (h·c ≈ 1.2398 MeV·pm).
const HC_EV_PM: f64 = 1.239_841_984e6;

/// Electron rest energy in eV.
const ELECTRON_REST_ENERGY_EV: f64 = 510_998.95;

/// Relativistically corrected electron wavelength in picometres for an
/// accelerating voltage given in electron-volts.
///
/// `λ = hc / sqrt(E·(E + 2·m0c²))` with `E` the kinetic energy.
///
/// At 200 keV this evaluates to ≈ 2.508 pm, the value used for the paper's
/// datasets.
pub fn electron_wavelength_pm(energy_ev: f64) -> f64 {
    assert!(energy_ev > 0.0, "electron energy must be positive");
    HC_EV_PM / (energy_ev * (energy_ev + 2.0 * ELECTRON_REST_ENERGY_EV)).sqrt()
}

/// The interaction parameter σ (radians per volt per picometre of thickness),
/// used to turn a projected electrostatic potential into a phase shift.
///
/// `σ = 2π m e λ / h²` with the relativistic mass; expressed here through the
/// wavelength and energies to avoid raw SI constants.
pub fn interaction_parameter(energy_ev: f64) -> f64 {
    let lambda = electron_wavelength_pm(energy_ev);
    let gamma = 1.0 + energy_ev / ELECTRON_REST_ENERGY_EV;
    // 2π / (λ·E_total) · (γ / (1 + γ)) has the right limiting behaviour; the
    // absolute scale only matters relative to the synthetic potential strength.
    2.0 * std::f64::consts::PI * gamma / (lambda * energy_ev * (1.0 + gamma))
}

/// Geometry of the imaging experiment, tying physical units to pixels.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImagingGeometry {
    /// Accelerating voltage in electron-volts (the paper: 200 keV).
    pub energy_ev: f64,
    /// Lateral sampling of the reconstruction in picometres per pixel
    /// (the paper: 10 pm).
    pub pixel_size_pm: f64,
    /// Slice thickness along the beam in picometres (the paper: 125 pm).
    pub slice_thickness_pm: f64,
    /// Probe-forming aperture semi-angle in milliradians (the paper: 30 mrad).
    pub aperture_mrad: f64,
    /// Probe defocus in picometres (the paper: 25 nm = 25000 pm).
    pub defocus_pm: f64,
}

impl Default for ImagingGeometry {
    fn default() -> Self {
        Self::paper()
    }
}

impl ImagingGeometry {
    /// The geometry used for both Lead Titanate datasets in the paper.
    pub fn paper() -> Self {
        Self {
            energy_ev: 200_000.0,
            pixel_size_pm: 10.0,
            slice_thickness_pm: 125.0,
            aperture_mrad: 30.0,
            defocus_pm: 25_000.0,
        }
    }

    /// Electron wavelength in picometres.
    pub fn wavelength_pm(&self) -> f64 {
        electron_wavelength_pm(self.energy_ev)
    }

    /// The aperture cutoff expressed as a spatial frequency in cycles per
    /// picometre: `k_max = α / λ`.
    pub fn aperture_cutoff_per_pm(&self) -> f64 {
        (self.aperture_mrad * 1e-3) / self.wavelength_pm()
    }

    /// The aperture cutoff as a fraction of the Nyquist frequency of the
    /// reconstruction grid (0.5 cycles per pixel). Values above 1 mean the
    /// aperture is not resolvable at this pixel size.
    pub fn aperture_cutoff_fraction_of_nyquist(&self) -> f64 {
        let k_max_per_pixel = self.aperture_cutoff_per_pm() * self.pixel_size_pm;
        k_max_per_pixel / 0.5
    }

    /// Physical radius of the geometric probe-location circle in picometres:
    /// the defocused probe spreads to roughly `defocus · α`.
    pub fn probe_radius_pm(&self) -> f64 {
        self.defocus_pm * self.aperture_mrad * 1e-3
    }

    /// The same probe radius in reconstruction pixels.
    pub fn probe_radius_px(&self) -> f64 {
        self.probe_radius_pm() / self.pixel_size_pm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_200kev_matches_textbook_value() {
        // 2.5079 pm is the standard relativistic value for 200 kV.
        let lambda = electron_wavelength_pm(200_000.0);
        assert!((lambda - 2.508).abs() < 0.01, "got {lambda}");
    }

    #[test]
    fn wavelength_decreases_with_energy() {
        assert!(electron_wavelength_pm(300_000.0) < electron_wavelength_pm(200_000.0));
        assert!(electron_wavelength_pm(200_000.0) < electron_wavelength_pm(80_000.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_energy_panics() {
        let _ = electron_wavelength_pm(0.0);
    }

    #[test]
    fn interaction_parameter_positive_and_decreasing() {
        let s200 = interaction_parameter(200_000.0);
        let s300 = interaction_parameter(300_000.0);
        assert!(s200 > 0.0);
        assert!(s300 < s200, "higher energy interacts more weakly");
    }

    #[test]
    fn paper_geometry_probe_radius() {
        let g = ImagingGeometry::paper();
        // 25 nm defocus x 30 mrad = 750 pm radius = 75 px at 10 pm/px.
        assert!((g.probe_radius_pm() - 750.0).abs() < 1e-9);
        assert!((g.probe_radius_px() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn aperture_cutoff_resolvable_at_paper_sampling() {
        let g = ImagingGeometry::paper();
        let fraction = g.aperture_cutoff_fraction_of_nyquist();
        assert!(fraction > 0.0 && fraction < 1.0, "got {fraction}");
    }
}
