//! The per-probe-location likelihood cost and its image gradient.
//!
//! Eqn. (2) of the paper writes the total image gradient as the sum of the
//! individual gradients `∂f_i/∂V`, each of which is "significant only within
//! the probe location circle i". This module computes one such individual
//! gradient by the adjoint (back-propagation) of the multi-slice model: it is
//! the quantity the Gradient Decomposition method tessellates into tiles and
//! accumulates in overlap regions.
//!
//! The object variable is the per-slice complex transmission function; the
//! gradient returned here is the Wirtinger derivative `∂f_i/∂conj(t_s)`, so a
//! gradient-descent update is `t_s ← t_s − α · grad_s`.

use crate::multislice::{ForwardPass, MultisliceModel, SimWorkspace};
use ptycho_array::{Array2, Array3};
use ptycho_fft::{CArray3, Complex64};

/// The result of evaluating one probe location: the scalar data-fidelity cost
/// and the gradient with respect to the object patch.
#[derive(Clone, Debug)]
pub struct GradientResult {
    /// The squared-error cost `f_i(V) = Σ_k (|y_k| − |G_k|)²`.
    pub loss: f64,
    /// Gradient with respect to the object transmission patch, shape
    /// `(slices, window, window)`.
    pub gradient: CArray3,
}

/// Computes the data-fidelity cost for one probe location without the gradient.
pub fn probe_loss(
    model: &MultisliceModel,
    object_patch: &CArray3,
    measured_amplitude: &Array2<f64>,
) -> f64 {
    let pass = model.forward(object_patch);
    loss_from_pass(&pass, measured_amplitude)
}

fn loss_from_pass(pass: &ForwardPass, measured_amplitude: &Array2<f64>) -> f64 {
    assert_eq!(
        pass.far_field.shape(),
        measured_amplitude.shape(),
        "measurement shape {:?} does not match simulation {:?}",
        measured_amplitude.shape(),
        pass.far_field.shape()
    );
    pass.far_field
        .as_slice()
        .iter()
        .zip(measured_amplitude.as_slice())
        .map(|(d, m)| {
            let s = d.abs();
            (s - m) * (s - m)
        })
        .sum()
}

/// Computes the cost *and* the gradient `∂f_i/∂conj(t)` for one probe location
/// by back-propagating through the multi-slice model.
///
/// By-value wrapper over [`probe_gradient_into`] — it allocates a fresh
/// [`SimWorkspace`] and gradient volume per call. Hot loops should hold both
/// and call `probe_gradient_into` directly.
pub fn probe_gradient(
    model: &MultisliceModel,
    object_patch: &CArray3,
    measured_amplitude: &Array2<f64>,
) -> GradientResult {
    let n = model.window_px();
    let mut ws = SimWorkspace::for_model(model);
    let mut gradient = Array3::full(model.slices(), n, n, Complex64::ZERO);
    let loss = probe_gradient_into(
        model,
        object_patch,
        measured_amplitude,
        &mut ws,
        &mut gradient,
    );
    GradientResult { loss, gradient }
}

/// The allocation-free core of [`probe_gradient`]: evaluates the forward
/// model and its adjoint entirely inside `ws`'s reusable buffers and writes
/// the gradient into the caller-owned `gradient` volume (shape
/// `(slices, window, window)`). Returns the probe loss.
///
/// # Panics
/// Panics if any shape does not match the model.
pub fn probe_gradient_into(
    model: &MultisliceModel,
    object_patch: &CArray3,
    measured_amplitude: &Array2<f64>,
    ws: &mut SimWorkspace,
    gradient: &mut CArray3,
) -> f64 {
    let n = model.window_px();
    assert_eq!(
        gradient.shape(),
        (model.slices(), n, n),
        "gradient shape {:?} does not match model (slices={}, window={})",
        gradient.shape(),
        model.slices(),
        n
    );
    model.forward_with(object_patch, ws);

    let SimWorkspace {
        incident,
        far_field,
        back,
        fft_scratch,
    } = ws;
    assert_eq!(
        far_field.shape(),
        measured_amplitude.shape(),
        "measurement shape {:?} does not match simulation {:?}",
        measured_amplitude.shape(),
        far_field.shape()
    );

    // Loss and ∂L/∂conj(D) for the amplitude-matching loss:
    // (|D| − y) · D / |D|, written straight into the back-propagation buffer.
    let mut loss = 0.0;
    for ((b, d), y) in back
        .as_mut_slice()
        .iter_mut()
        .zip(far_field.as_slice())
        .zip(measured_amplitude.as_slice())
    {
        let a = d.abs();
        loss += (a - y) * (a - y);
        *b = if a == 0.0 {
            Complex64::ZERO
        } else {
            d.scale((a - y) / a)
        };
    }

    // Back through the far-field FFT: the adjoint of the unnormalised forward
    // transform is the unnormalised inverse transform. F^H = N · F^{-1}; the
    // plan's inverse applies 1/N per axis, so multiply back by the element
    // count. With a detector ROI the residual is exactly zero outside it
    // (the pruned far field is zero there, and the loss formula maps zero
    // amplitude to a zero residual), so the pruned inverse — which treats the
    // ROI as its input support — is bit-identical to the dense one.
    match model.far_partial() {
        Some(partial) => partial.inverse_in_place(back, fft_scratch),
        None => model.plan().fft().inverse_in_place(back, fft_scratch),
    }
    let scale = (n * n) as f64;
    back.map_inplace(|v| *v = v.scale(scale));

    // Back through the slices in reverse order.
    for s in (0..model.slices()).rev() {
        // `back` currently holds ∂L/∂conj(psi_{s+1}); pull it through the
        // propagator to get ∂L/∂conj(a_s) where a_s = t_s ⊙ psi_s.
        model.plan().propagate_adjoint_in_place(back, fft_scratch);
        let psi_s = incident[s].as_slice();
        let t_s = object_patch.slice_data(s);
        // ∂L/∂conj(t_s) = ∂L/∂conj(a_s) ⊙ conj(psi_s)
        for ((g, d_a), p) in gradient
            .slice_data_mut(s)
            .iter_mut()
            .zip(back.as_slice())
            .zip(psi_s)
        {
            *g = *d_a * p.conj();
        }
        // ∂L/∂conj(psi_s) = ∂L/∂conj(a_s) ⊙ conj(t_s)
        for (d_a, t) in back.as_mut_slice().iter_mut().zip(t_s) {
            *d_a *= t.conj();
        }
    }
    loss
}

/// A well-scaled gradient-descent step size for the given model, following the
/// ePIE normalisation: the amplitude loss has curvature of order
/// `window² · max|p|²` with respect to the transmission, so its reciprocal is a
/// stable step. Multiply by a relaxation factor in `(0, 1]` for extra safety.
pub fn suggested_step(model: &MultisliceModel) -> f64 {
    let n = model.window_px();
    let max_probe_intensity = model
        .probe()
        .field()
        .as_slice()
        .iter()
        .map(|v| v.norm_sqr())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    1.0 / ((n * n) as f64 * max_probe_intensity)
}

/// Scales a gradient by a step size and subtracts it from the object patch:
/// the `V_k ← V_k − α·∂f_i/∂V_k` update of Algorithm 1 (steps 8 and 15).
pub fn apply_gradient_step(object_patch: &mut CArray3, gradient: &CArray3, step: f64) {
    assert_eq!(object_patch.shape(), gradient.shape(), "shape mismatch");
    for (t, g) in object_patch.iter_mut().zip(gradient.iter()) {
        *t -= g.scale(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physics::ImagingGeometry;
    use crate::probe::{Probe, ProbeConfig};

    fn small_model(slices: usize) -> MultisliceModel {
        let probe = Probe::new(ProbeConfig {
            window_px: 16,
            geometry: ImagingGeometry {
                pixel_size_pm: 50.0,
                defocus_pm: 5_000.0,
                ..ImagingGeometry::paper()
            },
            total_intensity: 1.0,
        });
        MultisliceModel::new(probe, slices)
    }

    fn phase_object(slices: usize, n: usize, strength: f64) -> CArray3 {
        Array3::from_fn(slices, n, n, |s, r, c| {
            Complex64::cis(strength * ((r + 2 * c + s) as f64 * 0.37).sin())
        })
    }

    #[test]
    fn loss_is_zero_for_perfect_match() {
        let model = small_model(2);
        let object = phase_object(2, 16, 0.2);
        let measured = model.simulate_amplitude(&object);
        let loss = probe_loss(&model, &object, &measured);
        assert!(loss < 1e-18, "got {loss}");
    }

    #[test]
    fn loss_positive_for_mismatch() {
        let model = small_model(2);
        let object = phase_object(2, 16, 0.2);
        let measured = model.simulate_amplitude(&object);
        let wrong = phase_object(2, 16, 0.5);
        assert!(probe_loss(&model, &wrong, &measured) > 1e-8);
    }

    #[test]
    fn gradient_is_zero_at_the_optimum() {
        let model = small_model(2);
        let object = phase_object(2, 16, 0.2);
        let measured = model.simulate_amplitude(&object);
        let result = probe_gradient(&model, &object, &measured);
        let max_grad = result
            .gradient
            .iter()
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_grad < 1e-9,
            "gradient at optimum should vanish, got {max_grad}"
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = small_model(2);
        let truth = phase_object(2, 16, 0.3);
        let measured = model.simulate_amplitude(&truth);
        let guess = phase_object(2, 16, 0.1);
        let result = probe_gradient(&model, &guess, &measured);

        let eps = 1e-6;
        // Probe a handful of voxels in both the real and imaginary directions.
        for &(s, r, c) in &[(0usize, 8usize, 8usize), (1, 4, 11), (0, 12, 5)] {
            let g = result.gradient[(s, r, c)];

            let mut perturbed = guess.clone();
            perturbed[(s, r, c)] += Complex64::new(eps, 0.0);
            let d_re = (probe_loss(&model, &perturbed, &measured) - result.loss) / eps;

            let mut perturbed = guess.clone();
            perturbed[(s, r, c)] += Complex64::new(0.0, eps);
            let d_im = (probe_loss(&model, &perturbed, &measured) - result.loss) / eps;

            // dL = 2·Re(g·conj(dt)): real perturbation → 2·Re(g), imaginary → 2·Im(g).
            assert!(
                (d_re - 2.0 * g.re).abs() < 1e-3 * (1.0 + d_re.abs()),
                "re mismatch at ({s},{r},{c}): fd={d_re}, grad={}",
                2.0 * g.re
            );
            assert!(
                (d_im - 2.0 * g.im).abs() < 1e-3 * (1.0 + d_im.abs()),
                "im mismatch at ({s},{r},{c}): fd={d_im}, grad={}",
                2.0 * g.im
            );
        }
    }

    #[test]
    fn gradient_into_matches_by_value_bit_exactly() {
        let model = small_model(2);
        let truth = phase_object(2, 16, 0.3);
        let measured = model.simulate_amplitude(&truth);
        let guess = phase_object(2, 16, 0.1);

        let by_value = probe_gradient(&model, &guess, &measured);

        let mut ws = SimWorkspace::for_model(&model);
        let mut gradient = Array3::full(2, 16, 16, Complex64::ONE);
        // Run twice through the same buffers: reuse must not change results.
        let _ = probe_gradient_into(&model, &truth, &measured, &mut ws, &mut gradient);
        let loss = probe_gradient_into(&model, &guess, &measured, &mut ws, &mut gradient);

        assert_eq!(loss.to_bits(), by_value.loss.to_bits());
        for (a, b) in by_value.gradient.iter().zip(gradient.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let model = small_model(3);
        let truth = phase_object(3, 16, 0.3);
        let measured = model.simulate_amplitude(&truth);
        let mut guess = Array3::full(3, 16, 16, Complex64::ONE);

        let before = probe_loss(&model, &guess, &measured);
        let step = 0.5 * suggested_step(&model);
        for _ in 0..10 {
            let result = probe_gradient(&model, &guess, &measured);
            apply_gradient_step(&mut guess, &result.gradient, step);
        }
        let after = probe_loss(&model, &guess, &measured);
        assert!(
            after < before * 0.9,
            "descent should reduce the loss: before={before}, after={after}"
        );
    }

    #[test]
    fn gradient_concentrated_under_probe() {
        // The paper's key locality property: the individual gradient is
        // significant only inside the probe-location circle.
        let model = small_model(1);
        let truth = phase_object(1, 16, 0.4);
        let measured = model.simulate_amplitude(&truth);
        let guess = Array3::full(1, 16, 16, Complex64::ONE);
        let result = probe_gradient(&model, &guess, &measured);

        let probe_intensity = model.probe().field().map(|v| v.norm_sqr());
        // Split pixels into "illuminated" (top 50% of probe intensity) and
        // "dark" (bottom 10%), compare mean gradient magnitudes.
        let mut illuminated = Vec::new();
        let mut dark = Vec::new();
        let mut intensities: Vec<f64> = probe_intensity.as_slice().to_vec();
        intensities.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let hi = intensities[(intensities.len() as f64 * 0.5) as usize];
        let lo = intensities[(intensities.len() as f64 * 0.1) as usize];
        for (r, c, p) in probe_intensity.indexed_iter() {
            let g = result.gradient[(0, r, c)].abs();
            if *p >= hi {
                illuminated.push(g);
            } else if *p <= lo {
                dark.push(g);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&illuminated) > 5.0 * mean(&dark),
            "gradient should be concentrated under the probe: bright={}, dark={}",
            mean(&illuminated),
            mean(&dark)
        );
    }

    #[test]
    fn pruned_model_gradient_is_bit_identical_to_dense_on_padded_probe() {
        let pruned = small_model(2).with_probe_support_threshold(1e-6);
        // Dense reference over the same padded probe.
        let dense = crate::multislice::MultisliceModel::new(pruned.probe().clone(), 2);
        let truth = phase_object(2, 16, 0.3);
        let measured = dense.simulate_amplitude(&truth);
        let guess = phase_object(2, 16, 0.1);
        let a = probe_gradient(&dense, &guess, &measured);
        let b = probe_gradient(&pruned, &guess, &measured);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        for (x, y) in a.gradient.iter().zip(b.gradient.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn roi_model_gradient_matches_finite_differences() {
        use ptycho_array::Rect;
        // With a detector ROI the loss only responds to the spectrum inside
        // the ROI (the rest contributes a constant), and the pruned adjoint
        // must still be the exact gradient of that loss.
        let model = small_model(2).with_detector_roi(Rect::new(4, 4, 8, 8));
        let truth = phase_object(2, 16, 0.3);
        let measured = model.simulate_amplitude(&truth);
        let guess = phase_object(2, 16, 0.1);
        let result = probe_gradient(&model, &guess, &measured);

        let eps = 1e-6;
        for &(s, r, c) in &[(0usize, 8usize, 8usize), (1, 4, 11)] {
            let g = result.gradient[(s, r, c)];

            let mut perturbed = guess.clone();
            perturbed[(s, r, c)] += Complex64::new(eps, 0.0);
            let d_re = (probe_loss(&model, &perturbed, &measured) - result.loss) / eps;

            let mut perturbed = guess.clone();
            perturbed[(s, r, c)] += Complex64::new(0.0, eps);
            let d_im = (probe_loss(&model, &perturbed, &measured) - result.loss) / eps;

            assert!(
                (d_re - 2.0 * g.re).abs() < 1e-3 * (1.0 + d_re.abs()),
                "re mismatch at ({s},{r},{c}): fd={d_re}, grad={}",
                2.0 * g.re
            );
            assert!(
                (d_im - 2.0 * g.im).abs() < 1e-3 * (1.0 + d_im.abs()),
                "im mismatch at ({s},{r},{c}): fd={d_im}, grad={}",
                2.0 * g.im
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match simulation")]
    fn mismatched_measurement_shape_panics() {
        let model = small_model(1);
        let object = phase_object(1, 16, 0.1);
        let bad = Array2::<f64>::zeros(8, 8);
        let _ = probe_loss(&model, &object, &bad);
    }
}
