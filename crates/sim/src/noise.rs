//! Poisson counting noise for simulated data acquisition.
//!
//! Detectors count electrons, so measured diffraction intensities follow a
//! Poisson distribution whose mean is the noiseless intensity scaled by the
//! dose. The Maximum-Likelihood methods the paper builds on are specifically
//! preferred over Fourier deconvolution because they tolerate this noise at
//! low dose (Sec. II-B).

use ptycho_array::Array2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one Poisson-distributed sample with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation for
/// large means; both are adequate for simulation purposes.
pub fn poisson_sample(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut product: f64 = rng.gen();
        while product > limit {
            k += 1;
            product *= rng.gen::<f64>();
        }
        k as f64
    } else {
        // Normal approximation N(mean, mean), clamped at zero.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + z * mean.sqrt()).max(0.0).round()
    }
}

/// Applies Poisson noise to a diffraction *intensity* pattern.
///
/// `dose_scale` converts intensity units to expected electron counts; the
/// returned pattern is rescaled back to the original units so that noiseless
/// and noisy data are directly comparable.
pub fn apply_poisson_noise(intensity: &Array2<f64>, dose_scale: f64, seed: u64) -> Array2<f64> {
    assert!(dose_scale > 0.0, "dose_scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    intensity.map(|&v| {
        let counts = poisson_sample(&mut rng, v.max(0.0) * dose_scale);
        counts / dose_scale
    })
}

/// Converts a noisy intensity pattern to the amplitude (`sqrt`) domain used by
/// the reconstruction cost.
pub fn intensity_to_amplitude(intensity: &Array2<f64>) -> Array2<f64> {
    intensity.map(|&v| v.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_gives_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(poisson_sample(&mut rng, 0.0), 0.0);
        assert_eq!(poisson_sample(&mut rng, -3.0), 0.0);
    }

    #[test]
    fn sample_mean_tracks_parameter_small() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| poisson_sample(&mut rng, mean)).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - mean).abs() < 0.2, "got {sample_mean}");
    }

    #[test]
    fn sample_mean_tracks_parameter_large() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let mean = 500.0;
        let total: f64 = (0..n).map(|_| poisson_sample(&mut rng, mean)).sum();
        let sample_mean = total / n as f64;
        assert!((sample_mean - mean).abs() < 5.0, "got {sample_mean}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let intensity = Array2::from_fn(8, 8, |r, c| (r * 8 + c) as f64);
        let a = apply_poisson_noise(&intensity, 10.0, 42);
        let b = apply_poisson_noise(&intensity, 10.0, 42);
        let c = apply_poisson_noise(&intensity, 10.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn high_dose_approaches_noiseless() {
        let intensity = Array2::full(16, 16, 4.0);
        let noisy = apply_poisson_noise(&intensity, 1e6, 7);
        let max_rel_err = noisy
            .as_slice()
            .iter()
            .map(|&v| ((v - 4.0) / 4.0).abs())
            .fold(0.0f64, f64::max);
        assert!(max_rel_err < 0.02, "got {max_rel_err}");
    }

    #[test]
    fn low_dose_is_noisier_than_high_dose() {
        let intensity = Array2::full(32, 32, 1.0);
        let noisy_low = apply_poisson_noise(&intensity, 5.0, 11);
        let noisy_high = apply_poisson_noise(&intensity, 5000.0, 11);
        let var = |img: &Array2<f64>| {
            let m = img.sum() / img.len() as f64;
            img.as_slice()
                .iter()
                .map(|v| (v - m) * (v - m))
                .sum::<f64>()
                / img.len() as f64
        };
        assert!(var(&noisy_low) > 10.0 * var(&noisy_high));
    }

    #[test]
    fn amplitude_conversion_clamps_negative() {
        let intensity = Array2::from_vec(1, 3, vec![4.0, 0.0, -1.0]);
        let amp = intensity_to_amplitude(&intensity);
        assert_eq!(amp.as_slice(), &[2.0, 0.0, 0.0]);
    }
}
