//! The multi-slice forward model `G` (Eqn. 1, ref. [14]).
//!
//! For one probe location the model takes the probe wavefunction and the
//! object patch covered by the probe window and alternates two operations per
//! slice: *transmission* (multiply by the slice's complex transmission
//! function) and *propagation* (Fresnel free-space propagation to the next
//! slice, a diagonal operator in the Fourier domain). The far-field diffraction
//! pattern is the Fourier transform of the exit wave; its magnitude is compared
//! against the measured magnitude in the Maximum-Likelihood cost.
//!
//! This is the computational kernel whose `N log N` FFT cost the paper
//! identifies as the source of super-linear strong scaling (Sec. VI-C).

use crate::probe::Probe;
use ptycho_array::{Array2, Rect};
use ptycho_fft::fft2d::{Fft2Plan, Fft2Scratch};
use ptycho_fft::{CArray2, CArray3, Complex64, PartialFft2Plan};
use std::f64::consts::PI;

/// Precomputed Fresnel propagator and FFT plan for a probe window.
#[derive(Clone, Debug)]
pub struct PropagationPlan {
    window_px: usize,
    fft: Fft2Plan,
    /// Fresnel transfer function `H(k) = exp(-iπλΔz|k|²)` in unshifted layout.
    transfer: CArray2,
    /// `conj(H)`, precomputed so the adjoint propagation allocates nothing.
    conj_transfer: CArray2,
}

impl PropagationPlan {
    /// Builds the propagator for a square window of `window_px` pixels with
    /// the given wavelength, pixel size and slice spacing (all in picometres).
    pub fn new(window_px: usize, wavelength_pm: f64, pixel_size_pm: f64, slice_dz_pm: f64) -> Self {
        assert!(window_px.is_power_of_two(), "window must be a power of two");
        let n = window_px;
        let dk = 1.0 / (n as f64 * pixel_size_pm);
        let transfer = Array2::from_fn(n, n, |r, c| {
            let fr = if r <= n / 2 {
                r as f64
            } else {
                r as f64 - n as f64
            };
            let fc = if c <= n / 2 {
                c as f64
            } else {
                c as f64 - n as f64
            };
            let k2 = (fr * dk) * (fr * dk) + (fc * dk) * (fc * dk);
            Complex64::cis(-PI * wavelength_pm * slice_dz_pm * k2)
        });
        let conj_transfer = transfer.map(|v| v.conj());
        Self {
            window_px,
            fft: Fft2Plan::new(n, n),
            transfer,
            conj_transfer,
        }
    }

    /// Window size in pixels.
    pub fn window_px(&self) -> usize {
        self.window_px
    }

    /// The FFT plan shared by propagation and far-field formation.
    pub fn fft(&self) -> &Fft2Plan {
        &self.fft
    }

    /// Propagates a wave by one slice spacing (by-value wrapper over
    /// [`Self::propagate_in_place`]).
    pub fn propagate(&self, wave: &CArray2) -> CArray2 {
        let mut out = wave.clone();
        let mut scratch = self.fft.make_scratch();
        self.propagate_in_place(&mut out, &mut scratch);
        out
    }

    /// Adjoint (= inverse, since `|H| = 1`) propagation by one slice spacing
    /// (by-value wrapper over [`Self::propagate_adjoint_in_place`]).
    pub fn propagate_adjoint(&self, wave: &CArray2) -> CArray2 {
        let mut out = wave.clone();
        let mut scratch = self.fft.make_scratch();
        self.propagate_adjoint_in_place(&mut out, &mut scratch);
        out
    }

    /// Propagates a wave by one slice spacing in place: forward FFT,
    /// elementwise transfer multiply, inverse FFT, all in `wave`'s storage.
    /// Zero heap allocations.
    pub fn propagate_in_place(&self, wave: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.fft.forward_in_place(wave, scratch);
        wave.zip_apply(&self.transfer, |w, h| *w *= *h);
        self.fft.inverse_in_place(wave, scratch);
    }

    /// In-place adjoint propagation (uses the precomputed `conj(H)`). Zero
    /// heap allocations.
    pub fn propagate_adjoint_in_place(&self, wave: &mut CArray2, scratch: &mut Fft2Scratch) {
        self.fft.forward_in_place(wave, scratch);
        wave.zip_apply(&self.conj_transfer, |w, h| *w *= *h);
        self.fft.inverse_in_place(wave, scratch);
    }

    /// In-place propagation whose forward FFT is the pruned `partial` plan —
    /// used for the entry slice, where the wave still has the probe's compact
    /// support. The inverse stays dense (propagation spreads the wave).
    /// Zero heap allocations.
    pub fn propagate_pruned_in_place(
        &self,
        wave: &mut CArray2,
        scratch: &mut Fft2Scratch,
        partial: &PartialFft2Plan,
    ) {
        partial.forward_in_place(wave, scratch);
        wave.zip_apply(&self.transfer, |w, h| *w *= *h);
        self.fft.inverse_in_place(wave, scratch);
    }
}

/// Reusable per-worker buffers for the forward model and its adjoint: the
/// incident-wave stack (`slices + 1` probe-window fields), the far-field
/// spectrum, the back-propagation wave and the FFT transpose scratch.
///
/// Allocate one per worker ([`SimWorkspace::for_model`]) and thread it
/// through [`MultisliceModel::forward_with`] /
/// [`crate::gradient::probe_gradient_into`]; after the first call every
/// evaluation reuses the same memory — the steady-state reconstruction loop
/// performs zero heap allocations.
#[derive(Clone, Debug)]
pub struct SimWorkspace {
    pub(crate) incident: Vec<CArray2>,
    pub(crate) far_field: CArray2,
    pub(crate) back: CArray2,
    pub(crate) fft_scratch: Fft2Scratch,
}

impl SimWorkspace {
    /// Allocates a workspace sized for `model`'s window and slice count.
    pub fn for_model(model: &MultisliceModel) -> Self {
        let n = model.window_px();
        let zero = Array2::full(n, n, Complex64::ZERO);
        Self {
            incident: vec![zero.clone(); model.slices() + 1],
            far_field: zero.clone(),
            back: zero,
            fft_scratch: model.plan().fft().make_scratch(),
        }
    }

    /// The far-field diffraction wave `D = FFT(exit)` of the latest
    /// [`MultisliceModel::forward_with`] call.
    pub fn far_field(&self) -> &CArray2 {
        &self.far_field
    }

    /// The incident wave at the entrance of slice `s` (the last entry,
    /// `s == slices`, is the exit wave) of the latest forward pass.
    pub fn incident(&self, s: usize) -> &CArray2 {
        &self.incident[s]
    }

    /// Number of slices this workspace was sized for.
    pub fn slices(&self) -> usize {
        self.incident.len() - 1
    }

    /// Probe-window side length this workspace was sized for.
    pub fn window_px(&self) -> usize {
        self.far_field.rows()
    }
}

/// Everything the forward pass produced, retained for the adjoint pass.
#[derive(Clone, Debug)]
pub struct ForwardPass {
    /// The incident wave at the entrance of every slice (`psi_s` before
    /// transmission), length `slices + 1`; the last entry is the exit wave.
    pub incident: Vec<CArray2>,
    /// The far-field diffraction wave `D = FFT(exit)`.
    pub far_field: CArray2,
}

impl ForwardPass {
    /// The simulated diffraction amplitude `|G(p_i, V)|`.
    pub fn amplitude(&self) -> Array2<f64> {
        self.far_field.map(|v| v.abs())
    }

    /// The simulated diffraction intensity `|G(p_i, V)|²`.
    pub fn intensity(&self) -> Array2<f64> {
        self.far_field.map(|v| v.norm_sqr())
    }
}

/// The multi-slice model bound to a probe and a propagation plan.
///
/// By default every transform is dense. Two opt-in builders swap hot
/// transforms for pruned [`PartialFft2Plan`]s (see the `ptycho_fft::partial`
/// docs for the exactness argument):
///
/// * [`with_probe_support_threshold`](Self::with_probe_support_threshold) —
///   zero-pads the probe outside its compact-support window and prunes the
///   entry slice's forward FFT by that window (bit-identical output).
/// * [`with_detector_roi`](Self::with_detector_roi) — prunes the far-field
///   transform to the detector's region of interest (bit-identical inside
///   the ROI, exact zeros outside — the pixels the detector never reads).
#[derive(Clone, Debug)]
pub struct MultisliceModel {
    probe: Probe,
    plan: PropagationPlan,
    slices: usize,
    /// Probe compact-support window, when support pruning is enabled.
    probe_support: Option<Rect>,
    /// Detector region of interest, when ROI pruning is enabled (clamped).
    detector_roi: Option<Rect>,
    /// Pruned forward-FFT plan for the entry slice's propagation (the wave
    /// still has the probe's support there).
    entry_partial: Option<PartialFft2Plan>,
    /// Pruned plan for the far-field transform (output pruned to the ROI)
    /// and its adjoint in the gradient's backpropagation.
    far_partial: Option<PartialFft2Plan>,
}

impl MultisliceModel {
    /// Creates a model for `slices` object slices using the probe's imaging
    /// geometry for the propagator.
    pub fn new(probe: Probe, slices: usize) -> Self {
        assert!(slices > 0, "need at least one slice");
        let geom = probe.config().geometry;
        let plan = PropagationPlan::new(
            probe.window_px(),
            geom.wavelength_pm(),
            geom.pixel_size_pm,
            geom.slice_thickness_pm,
        );
        Self {
            probe,
            plan,
            slices,
            probe_support: None,
            detector_roi: None,
            entry_partial: None,
            far_partial: None,
        }
    }

    /// Enables probe-support pruning: the probe field is zeroed outside the
    /// bounding box of pixels with intensity ≥ `rel_threshold` × peak (kept
    /// bit-identical inside), and the entry slice's forward FFT skips the
    /// butterflies that provably touch only those zeros.
    ///
    /// `rel_threshold <= 0` selects the full window — the padded probe and
    /// the pruned transform are then bit-identical to the defaults.
    pub fn with_probe_support_threshold(mut self, rel_threshold: f64) -> Self {
        let support = self.probe.support_window(rel_threshold);
        self.probe = self.probe.support_padded(&support);
        let n = self.probe.window_px();
        self.entry_partial = Some(
            PartialFft2Plan::with_simd_level(n, n, self.plan.fft.simd_level())
                .with_input_support(support),
        );
        self.probe_support = Some(support);
        self
    }

    /// Enables detector-ROI pruning: the far-field transform only produces
    /// the `roi` window of the spectrum (bit-identical to dense there) and
    /// writes exact zeros elsewhere — the simulated detector reads nothing
    /// outside its region of interest, and the gradient backpropagation
    /// prunes its inverse transform the same way.
    ///
    /// # Panics
    /// Panics if `roi` (clamped to the window) is empty.
    pub fn with_detector_roi(mut self, roi: Rect) -> Self {
        let n = self.probe.window_px();
        let partial =
            PartialFft2Plan::with_simd_level(n, n, self.plan.fft.simd_level()).with_output_roi(roi);
        self.detector_roi = partial.output_roi();
        self.far_partial = Some(partial);
        self
    }

    /// The probe this model simulates.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// The probe compact-support window, when support pruning is enabled.
    pub fn probe_support(&self) -> Option<Rect> {
        self.probe_support
    }

    /// The detector region of interest, when ROI pruning is enabled.
    pub fn detector_roi(&self) -> Option<Rect> {
        self.detector_roi
    }

    /// The pruned far-field plan, when ROI pruning is enabled — the gradient
    /// backpropagation shares it for the adjoint (inverse) transform.
    pub(crate) fn far_partial(&self) -> Option<&PartialFft2Plan> {
        self.far_partial.as_ref()
    }

    /// The propagation plan (FFT + Fresnel transfer function).
    pub fn plan(&self) -> &PropagationPlan {
        &self.plan
    }

    /// Number of object slices the model expects.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Side length of the probe window in pixels.
    pub fn window_px(&self) -> usize {
        self.probe.window_px()
    }

    /// Runs the forward model on an object patch (shape
    /// `(slices, window, window)`), keeping intermediates for the adjoint.
    ///
    /// By-value wrapper over [`Self::forward_with`] — it allocates a fresh
    /// [`SimWorkspace`] per call. Hot loops should hold a workspace and call
    /// `forward_with` directly.
    ///
    /// # Panics
    /// Panics if the patch shape does not match the model.
    pub fn forward(&self, object_patch: &CArray3) -> ForwardPass {
        let mut ws = SimWorkspace::for_model(self);
        self.forward_with(object_patch, &mut ws);
        ForwardPass {
            incident: ws.incident,
            far_field: ws.far_field,
        }
    }

    /// Runs the forward model into a reusable [`SimWorkspace`]: the incident
    /// stack and far field are written into `ws`'s buffers, so repeated calls
    /// perform zero heap allocations.
    ///
    /// # Panics
    /// Panics if the patch or workspace shape does not match the model.
    pub fn forward_with(&self, object_patch: &CArray3, ws: &mut SimWorkspace) {
        let n = self.window_px();
        assert_eq!(
            object_patch.shape(),
            (self.slices, n, n),
            "object patch shape {:?} does not match model (slices={}, window={})",
            object_patch.shape(),
            self.slices,
            n
        );
        assert_eq!(
            (ws.slices(), ws.window_px()),
            (self.slices, n),
            "workspace shape (slices={}, window={}) does not match model (slices={}, window={})",
            ws.slices(),
            ws.window_px(),
            self.slices,
            n
        );

        let SimWorkspace {
            incident,
            far_field,
            fft_scratch,
            ..
        } = ws;
        incident[0].copy_from(self.probe.field());
        for s in 0..self.slices {
            // Transmission: incident[s+1] = incident[s] ⊙ t_s, then
            // propagation in place — no temporaries.
            let (before, after) = incident.split_at_mut(s + 1);
            let psi = before[s].as_slice();
            let next = after[0].as_mut_slice();
            let t_s = object_patch.slice_data(s);
            for ((dst, src), t) in next.iter_mut().zip(psi).zip(t_s) {
                *dst = *src * *t;
            }
            // The entry slice's wave is probe ⊙ t_0, which inherits the
            // probe's compact support — prune its forward FFT when a support
            // window is declared. Propagation spreads the wave, so every
            // later slice is dense.
            match (s, &self.entry_partial) {
                (0, Some(partial)) => {
                    self.plan
                        .propagate_pruned_in_place(&mut after[0], fft_scratch, partial)
                }
                _ => self.plan.propagate_in_place(&mut after[0], fft_scratch),
            }
        }
        far_field.copy_from(&incident[self.slices]);
        match &self.far_partial {
            Some(partial) => partial.forward_in_place(far_field, fft_scratch),
            None => self.plan.fft.forward_in_place(far_field, fft_scratch),
        }
    }

    /// Convenience wrapper returning only the diffraction amplitude.
    pub fn simulate_amplitude(&self, object_patch: &CArray3) -> Array2<f64> {
        self.forward(object_patch).amplitude()
    }

    /// Number of complex FFTs evaluated per forward pass (used by the
    /// performance model): one propagation FFT pair per slice plus the final
    /// far-field transform.
    pub fn ffts_per_forward(&self) -> usize {
        2 * self.slices + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physics::ImagingGeometry;
    use crate::probe::ProbeConfig;
    use ptycho_array::Array3;

    fn test_probe(window: usize) -> Probe {
        Probe::new(ProbeConfig {
            window_px: window,
            geometry: ImagingGeometry {
                pixel_size_pm: 50.0,
                defocus_pm: 10_000.0,
                ..ImagingGeometry::paper()
            },
            total_intensity: 1.0,
        })
    }

    fn vacuum(slices: usize, window: usize) -> CArray3 {
        Array3::full(slices, window, window, Complex64::ONE)
    }

    #[test]
    fn propagation_conserves_energy() {
        let probe = test_probe(32);
        let model = MultisliceModel::new(probe, 3);
        let wave = model.probe().field().clone();
        let propagated = model.plan().propagate(&wave);
        let e0: f64 = wave.as_slice().iter().map(|v| v.norm_sqr()).sum();
        let e1: f64 = propagated.as_slice().iter().map(|v| v.norm_sqr()).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0);
    }

    #[test]
    fn propagate_then_adjoint_is_identity() {
        let probe = test_probe(32);
        let model = MultisliceModel::new(probe, 1);
        let wave = model.probe().field().clone();
        let roundtrip = model
            .plan()
            .propagate_adjoint(&model.plan().propagate(&wave));
        for (a, b) in roundtrip.as_slice().iter().zip(wave.as_slice()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn vacuum_preserves_total_intensity() {
        let probe = test_probe(32);
        let dose = probe.total_intensity();
        let model = MultisliceModel::new(probe, 4);
        let pass = model.forward(&vacuum(4, 32));
        // Parseval: far-field intensity = N² x real-space intensity for an
        // unnormalised FFT of an energy-preserving chain.
        let n2 = (32.0f64 * 32.0).recip();
        let far_energy: f64 = pass.far_field.as_slice().iter().map(|v| v.norm_sqr()).sum();
        assert!((far_energy * n2 - dose).abs() < 1e-9);
    }

    #[test]
    fn phase_object_changes_diffraction() {
        let probe = test_probe(32);
        let model = MultisliceModel::new(probe, 2);
        let vacuum_amp = model.simulate_amplitude(&vacuum(2, 32));
        // A phase grating.
        let grating = Array3::from_fn(2, 32, 32, |_, _, c| {
            Complex64::cis(if c % 4 < 2 { 0.3 } else { -0.3 })
        });
        let grating_amp = model.simulate_amplitude(&grating);
        let diff: f64 = vacuum_amp
            .as_slice()
            .iter()
            .zip(grating_amp.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "diffraction should respond to the object");
    }

    #[test]
    fn forward_keeps_all_intermediates() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 3);
        let pass = model.forward(&vacuum(3, 16));
        assert_eq!(pass.incident.len(), 4);
        assert_eq!(pass.far_field.shape(), (16, 16));
        assert_eq!(pass.amplitude().shape(), (16, 16));
    }

    #[test]
    fn forward_with_matches_by_value_forward_bit_exactly() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 3);
        let object = Array3::from_fn(3, 16, 16, |s, r, c| {
            Complex64::cis(0.1 * ((s + 2 * r + c) as f64).sin())
        });
        let pass = model.forward(&object);
        let mut ws = SimWorkspace::for_model(&model);
        // Run twice through the same workspace: reuse must not change results.
        model.forward_with(&object, &mut ws);
        model.forward_with(&object, &mut ws);
        for (a, b) in pass
            .far_field
            .as_slice()
            .iter()
            .zip(ws.far_field().as_slice())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        for s in 0..=3 {
            for (a, b) in pass.incident[s]
                .as_slice()
                .iter()
                .zip(ws.incident(s).as_slice())
            {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn in_place_propagation_matches_by_value() {
        let probe = test_probe(32);
        let model = MultisliceModel::new(probe, 1);
        let wave = model.probe().field().clone();
        let by_value = model.plan().propagate(&wave);
        let mut in_place = wave.clone();
        let mut scratch = model.plan().fft().make_scratch();
        model.plan().propagate_in_place(&mut in_place, &mut scratch);
        for (a, b) in by_value.as_slice().iter().zip(in_place.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        let adj_by_value = model.plan().propagate_adjoint(&by_value);
        model
            .plan()
            .propagate_adjoint_in_place(&mut in_place, &mut scratch);
        for (a, b) in adj_by_value.as_slice().iter().zip(in_place.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "workspace shape")]
    fn mismatched_workspace_panics() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 2);
        let other = MultisliceModel::new(test_probe(16), 3);
        let mut ws = SimWorkspace::for_model(&other);
        model.forward_with(&vacuum(2, 16), &mut ws);
    }

    #[test]
    fn fft_count_model() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 5);
        assert_eq!(model.ffts_per_forward(), 11);
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn wrong_patch_shape_panics() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 2);
        let _ = model.forward(&vacuum(3, 16));
    }

    #[test]
    fn support_pruned_forward_is_bit_identical_to_dense_on_padded_probe() {
        let probe = test_probe(32);
        let pruned_model = MultisliceModel::new(probe, 2).with_probe_support_threshold(1e-6);
        // The reference: a plain dense model built from the *same padded*
        // probe, so both runs see identical inputs.
        let dense_model = MultisliceModel::new(pruned_model.probe().clone(), 2);
        let object = Array3::from_fn(2, 32, 32, |s, r, c| {
            Complex64::cis(0.2 * ((s + r * 3 + c) as f64).sin())
        });
        let a = dense_model.forward(&object);
        let b = pruned_model.forward(&object);
        for s in 0..=2 {
            for (x, y) in a.incident[s]
                .as_slice()
                .iter()
                .zip(b.incident[s].as_slice())
            {
                assert_eq!(x.re.to_bits(), y.re.to_bits());
                assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
        for (x, y) in a.far_field.as_slice().iter().zip(b.far_field.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn zero_support_threshold_degenerates_to_the_dense_model() {
        let probe = test_probe(16);
        let plain = MultisliceModel::new(probe.clone(), 2);
        let pruned = MultisliceModel::new(probe, 2).with_probe_support_threshold(0.0);
        assert_eq!(pruned.probe_support(), Some(Rect::of_shape(16, 16)));
        // The padded probe is the original probe, bit for bit.
        for (x, y) in plain
            .probe()
            .field()
            .as_slice()
            .iter()
            .zip(pruned.probe().field().as_slice())
        {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        let object = Array3::from_fn(2, 16, 16, |s, r, c| {
            Complex64::cis(0.1 * ((s + r + 2 * c) as f64).cos())
        });
        let a = plain.forward(&object);
        let b = pruned.forward(&object);
        for (x, y) in a.far_field.as_slice().iter().zip(b.far_field.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn detector_roi_far_field_matches_dense_inside_and_is_zero_outside() {
        let probe = test_probe(32);
        let dense_model = MultisliceModel::new(probe.clone(), 2);
        let roi = Rect::new(8, 8, 16, 16);
        let roi_model = MultisliceModel::new(probe, 2).with_detector_roi(roi);
        assert_eq!(roi_model.detector_roi(), Some(roi));
        let object = Array3::from_fn(2, 32, 32, |s, r, c| {
            Complex64::cis(0.15 * ((2 * s + r + c) as f64).sin())
        });
        let a = dense_model.forward(&object);
        let b = roi_model.forward(&object);
        for r in 0..32 {
            for c in 0..32 {
                let (x, y) = (a.far_field[(r, c)], b.far_field[(r, c)]);
                if roi.contains(r as i64, c as i64) {
                    assert_eq!(x.re.to_bits(), y.re.to_bits());
                    assert_eq!(x.im.to_bits(), y.im.to_bits());
                } else {
                    assert_eq!(y, Complex64::ZERO, "({r},{c}) should be zeroed");
                }
            }
        }
    }

    #[test]
    fn amplitude_and_intensity_consistent() {
        let probe = test_probe(16);
        let model = MultisliceModel::new(probe, 1);
        let pass = model.forward(&vacuum(1, 16));
        let amp = pass.amplitude();
        let int = pass.intensity();
        for (a, i) in amp.as_slice().iter().zip(int.as_slice()) {
            assert!((a * a - i).abs() < 1e-9);
        }
    }
}
