//! Synthetic multi-slice specimens.
//!
//! The paper evaluates on two *simulated* Lead Titanate (PbTiO3) datasets: a
//! perovskite in which heavy Pb columns, lighter Ti columns and light O columns
//! form a regular lattice (Fig. 6 shows "each circle ... a small group of
//! atoms"). The real datasets are not published, so this module synthesises an
//! equivalent specimen: a periodic lattice of Gaussian atomic columns, split
//! into slices along the beam, converted to complex transmission functions via
//! the weak-phase approximation `t(x) = exp(i·σ·V_proj(x))`.

use crate::physics::{interaction_parameter, ImagingGeometry};
use ptycho_array::{Array2, Array3};
use ptycho_fft::{CArray3, Complex64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An atomic column species in the synthetic perovskite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtomSpecies {
    /// Label (for documentation and debugging only).
    pub name: &'static str,
    /// Peak projected potential per slice, in volt·picometres (arbitrary but
    /// consistent scale).
    pub peak_potential: f64,
    /// Gaussian width of the column in picometres.
    pub width_pm: f64,
}

/// Pb, Ti and O columns with relative strengths roughly proportional to atomic
/// number.
pub const PB: AtomSpecies = AtomSpecies {
    name: "Pb",
    peak_potential: 82.0,
    width_pm: 45.0,
};
/// Titanium columns.
pub const TI: AtomSpecies = AtomSpecies {
    name: "Ti",
    peak_potential: 22.0,
    width_pm: 35.0,
};
/// Oxygen columns.
pub const O: AtomSpecies = AtomSpecies {
    name: "O",
    peak_potential: 8.0,
    width_pm: 30.0,
};

/// Configuration of the synthetic specimen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecimenConfig {
    /// Lateral size of the specimen in pixels (rows, cols).
    pub shape_px: (usize, usize),
    /// Number of slices along the beam direction.
    pub slices: usize,
    /// Perovskite unit-cell size in picometres (PbTiO3: a ≈ 390 pm).
    pub unit_cell_pm: f64,
    /// Imaging geometry (pixel size, energy, ...).
    pub geometry: ImagingGeometry,
    /// Standard deviation of random atomic-column displacement in picometres,
    /// which breaks perfect periodicity the way thermal motion does.
    pub displacement_pm: f64,
    /// RNG seed for the random displacements.
    pub seed: u64,
}

impl Default for SpecimenConfig {
    fn default() -> Self {
        Self {
            shape_px: (256, 256),
            slices: 4,
            unit_cell_pm: 390.0,
            geometry: ImagingGeometry::paper(),
            displacement_pm: 5.0,
            seed: 7,
        }
    }
}

impl SpecimenConfig {
    /// A small specimen suitable for unit tests.
    pub fn tiny(shape_px: usize, slices: usize) -> Self {
        Self {
            shape_px: (shape_px, shape_px),
            slices,
            geometry: ImagingGeometry {
                pixel_size_pm: 50.0,
                ..ImagingGeometry::paper()
            },
            ..Self::default()
        }
    }
}

/// A synthetic multi-slice specimen: per-slice projected potential and the
/// complex transmission volume derived from it.
#[derive(Clone, Debug)]
pub struct Specimen {
    config: SpecimenConfig,
    potential: Array3<f64>,
    transmission: CArray3,
}

impl Specimen {
    /// Generates the synthetic perovskite specimen.
    pub fn generate(config: SpecimenConfig) -> Self {
        let (rows, cols) = config.shape_px;
        assert!(rows > 0 && cols > 0 && config.slices > 0, "empty specimen");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dx = config.geometry.pixel_size_pm;
        let cell_px = (config.unit_cell_pm / dx).max(2.0);

        // Atomic columns: Pb at cell corners, Ti at cell centres, O at face
        // centres — the projected PbTiO3 structure along [001].
        let mut columns: Vec<(f64, f64, AtomSpecies)> = Vec::new();
        let n_cells_r = (rows as f64 / cell_px).ceil() as i64 + 1;
        let n_cells_c = (cols as f64 / cell_px).ceil() as i64 + 1;
        for ir in 0..n_cells_r {
            for ic in 0..n_cells_c {
                let base_r = ir as f64 * cell_px;
                let base_c = ic as f64 * cell_px;
                let jitter =
                    |rng: &mut StdRng| (rng.gen::<f64>() - 0.5) * 2.0 * config.displacement_pm / dx;
                columns.push((base_r + jitter(&mut rng), base_c + jitter(&mut rng), PB));
                columns.push((
                    base_r + cell_px / 2.0 + jitter(&mut rng),
                    base_c + cell_px / 2.0 + jitter(&mut rng),
                    TI,
                ));
                columns.push((
                    base_r + cell_px / 2.0 + jitter(&mut rng),
                    base_c + jitter(&mut rng),
                    O,
                ));
                columns.push((
                    base_r + jitter(&mut rng),
                    base_c + cell_px / 2.0 + jitter(&mut rng),
                    O,
                ));
            }
        }

        // Rasterise each slice. Successive slices get slightly shifted and
        // re-weighted columns so the volume is genuinely three-dimensional.
        let sigma_scale =
            interaction_parameter(config.geometry.energy_ev) * config.geometry.slice_thickness_pm;
        let mut slices = Vec::with_capacity(config.slices);
        let mut tslices = Vec::with_capacity(config.slices);
        for s in 0..config.slices {
            let slice_weight = 0.75 + 0.5 * ((s as f64 + 1.0) / config.slices as f64);
            let slice_shift = s as f64 * 0.15 * cell_px / config.slices as f64;
            let mut pot = Array2::<f64>::zeros(rows, cols);
            for &(cr, cc, species) in &columns {
                let cr = cr + slice_shift;
                let cc = cc + slice_shift;
                let width_px = (species.width_pm / dx).max(0.8);
                let reach = (3.0 * width_px).ceil() as i64;
                let r0 = (cr as i64 - reach).max(0);
                let r1 = (cr as i64 + reach + 1).min(rows as i64);
                let c0 = (cc as i64 - reach).max(0);
                let c1 = (cc as i64 + reach + 1).min(cols as i64);
                for r in r0..r1 {
                    for c in c0..c1 {
                        let dr = r as f64 - cr;
                        let dc = c as f64 - cc;
                        let g = (-(dr * dr + dc * dc) / (2.0 * width_px * width_px)).exp();
                        pot[(r as usize, c as usize)] += species.peak_potential * slice_weight * g;
                    }
                }
            }
            let trans = pot.map(|&v| Complex64::cis(sigma_scale * v));
            slices.push(pot);
            tslices.push(trans);
        }

        Self {
            config,
            potential: Array3::from_slices(slices),
            transmission: Array3::from_slices(tslices),
        }
    }

    /// The specimen configuration.
    pub fn config(&self) -> &SpecimenConfig {
        &self.config
    }

    /// Per-slice projected potential (real-valued).
    pub fn potential(&self) -> &Array3<f64> {
        &self.potential
    }

    /// Per-slice complex transmission functions `t_s(x) = exp(i·σ·V_s(x))` —
    /// this is the reconstruction target `V` of Eqn. (1) in transmission form.
    pub fn transmission(&self) -> &CArray3 {
        &self.transmission
    }

    /// The phase image of a single transmission slice (what reconstruction
    /// figures like Fig. 6 / Fig. 8 display).
    pub fn phase_slice(&self, s: usize) -> Array2<f64> {
        let slice = self.transmission.slice(s);
        slice.map(|v| v.arg())
    }

    /// A "flat" specimen of the same shape with unit transmission everywhere —
    /// the standard initial guess for reconstruction.
    pub fn flat_like(&self) -> CArray3 {
        let (d, r, c) = self.transmission.shape();
        Array3::full(d, r, c, Complex64::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Specimen {
        Specimen::generate(SpecimenConfig::tiny(64, 3))
    }

    #[test]
    fn shapes_are_consistent() {
        let s = tiny();
        assert_eq!(s.potential().shape(), (3, 64, 64));
        assert_eq!(s.transmission().shape(), (3, 64, 64));
    }

    #[test]
    fn transmission_is_unit_magnitude() {
        // Pure phase object: |t| == 1 everywhere.
        let s = tiny();
        for v in s.transmission().iter() {
            assert!((v.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn potential_is_nonnegative_and_structured() {
        let s = tiny();
        let pot = s.potential();
        assert!(pot.iter().all(|&v| v >= 0.0));
        let max = pot.iter().cloned().fold(f64::MIN, f64::max);
        let min = pot.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min, "potential should not be constant");
        assert!(max > 10.0, "heavy columns should dominate, max={max}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Specimen::generate(SpecimenConfig::tiny(32, 2));
        let b = Specimen::generate(SpecimenConfig::tiny(32, 2));
        assert_eq!(a.potential(), b.potential());
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = SpecimenConfig::tiny(32, 2);
        let a = Specimen::generate(config);
        config.seed = 99;
        let b = Specimen::generate(config);
        assert_ne!(a.potential(), b.potential());
    }

    #[test]
    fn slices_differ_from_each_other() {
        let s = tiny();
        assert_ne!(s.potential().slice(0), s.potential().slice(2));
    }

    #[test]
    fn phase_slice_matches_potential_ordering() {
        let s = tiny();
        let phase = s.phase_slice(0);
        let pot = s.potential().slice(0);
        // The pixel with the largest potential should also have the largest
        // phase (as long as phases stay below π, which the tiny config ensures).
        let (mut max_pot_idx, mut max_pot) = ((0, 0), f64::MIN);
        for (r, c, &v) in pot.indexed_iter() {
            if v > max_pot {
                max_pot = v;
                max_pot_idx = (r, c);
            }
        }
        let max_phase = phase.iter().cloned().fold(f64::MIN, f64::max);
        assert!((phase[max_pot_idx] - max_phase).abs() < 1e-9);
    }

    #[test]
    fn flat_like_is_ones() {
        let s = tiny();
        let flat = s.flat_like();
        assert_eq!(flat.shape(), s.transmission().shape());
        assert!(flat.iter().all(|v| (*v - Complex64::ONE).abs() < 1e-15));
    }
}
