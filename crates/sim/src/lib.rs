//! Electron ptychography physics for the Gradient Decomposition reproduction.
//!
//! This crate is the data-and-model substrate of the workspace. It implements
//! everything the paper's evaluation *assumes exists*: the electron-optics
//! forward model `G` of Eqn. (1), the probe and scan geometry of Fig. 1, a
//! synthetic Lead-Titanate-like specimen (the paper's PbTiO3 datasets are
//! simulated too, but not published), simulated data acquisition with optional
//! Poisson noise, and the per-probe-location image gradients `∂f_i/∂V` of
//! Eqn. (2) that the Gradient Decomposition method tessellates and accumulates.
//!
//! # Modules
//!
//! * [`physics`] — electron wavelength, interaction constants, unit helpers.
//! * [`probe`] — probe formation (aperture, defocus) in Fourier space.
//! * [`scan`] — raster scan patterns and probe-location bookkeeping (Fig. 1b).
//! * [`specimen`] — synthetic perovskite-lattice multi-slice specimens (Fig. 6).
//! * [`multislice`] — the multi-slice forward model `G` (Sec. II-B, ref. [14]).
//! * [`gradient`] — the likelihood cost `f_i(V)` and its adjoint-derived
//!   image gradient, the quantity the paper decomposes.
//! * [`noise`] — Poisson counting noise for simulated acquisition.
//! * [`dataset`] — bundled datasets: simulated acquisition plus the *geometry*
//!   presets of Table I used by the performance model.
//!
//! # Quick start
//!
//! Simulate a tiny noise-free acquisition and verify that the ground-truth
//! object reproduces its own measured diffraction amplitudes:
//!
//! ```
//! use ptycho_sim::dataset::{extract_patch, Dataset, SyntheticConfig};
//! use ptycho_sim::probe_loss;
//!
//! // Specimen, probe, raster scan and measurements, all in one bundle.
//! let dataset = Dataset::synthesize(SyntheticConfig::tiny());
//! let loc = dataset.scan().locations()[0];
//!
//! // The likelihood cost f_i(V) of Eqn. (2) vanishes at the ground truth.
//! let truth = extract_patch(dataset.specimen().transmission(), &loc.window);
//! let loss = probe_loss(dataset.model(), &truth, dataset.measurement(&loc));
//! assert!(loss < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod gradient;
pub mod multislice;
pub mod noise;
pub mod physics;
pub mod probe;
pub mod scan;
pub mod specimen;

pub use dataset::{Dataset, DatasetSpec};
pub use gradient::{
    apply_gradient_step, probe_gradient, probe_gradient_into, probe_loss, suggested_step,
    GradientResult,
};
pub use multislice::{MultisliceModel, PropagationPlan, SimWorkspace};
pub use probe::{Probe, ProbeConfig};
pub use scan::{ProbeLocation, ScanConfig, ScanPattern};
pub use specimen::{Specimen, SpecimenConfig};
