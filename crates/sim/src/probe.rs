//! Electron probe formation.
//!
//! The probe `p_i` of Eqn. (1) models the focused (here: deliberately
//! defocused) electron beam incident on the sample. It is formed in the back
//! focal plane as a hard circular aperture of semi-angle `α` with a defocus
//! aberration phase, then transformed to real space. The defocus spreads the
//! probe into the large overlapping circles of Fig. 1(b); the probe-location
//! circle radius is what determines the tile halo width in `ptycho-core`.

use crate::physics::ImagingGeometry;
use ptycho_array::{Array2, Rect};
use ptycho_fft::fft2d::{fftshift, Fft2Plan};
use ptycho_fft::{CArray2, Complex64};
use std::f64::consts::PI;

/// Configuration for probe formation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeConfig {
    /// Side length of the (square) probe window in pixels. Must be a power of
    /// two because the forward model transforms it with the radix-2 FFT.
    pub window_px: usize,
    /// Imaging geometry (energy, sampling, aperture, defocus).
    pub geometry: ImagingGeometry,
    /// Total beam current expressed as the sum of squared probe amplitudes.
    /// Normalising to a fixed dose makes losses comparable across window sizes.
    pub total_intensity: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            window_px: 64,
            geometry: ImagingGeometry::paper(),
            total_intensity: 1.0,
        }
    }
}

impl ProbeConfig {
    /// A small laptop-scale probe window with otherwise paper-like optics.
    pub fn small(window_px: usize) -> Self {
        Self {
            window_px,
            ..Self::default()
        }
    }
}

/// A complex probe wavefunction sampled on a square window, plus the metadata
/// the decomposition logic needs (its effective radius in pixels).
#[derive(Clone, Debug)]
pub struct Probe {
    field: CArray2,
    config: ProbeConfig,
    radius_px: f64,
}

impl Probe {
    /// Forms a probe from the given configuration.
    ///
    /// The probe is built as `IFFT( A(k) · e^{-i·χ(k)} )` where `A` is a hard
    /// circular aperture at the configured semi-angle and
    /// `χ(k) = π·λ·Δf·|k|²` is the defocus aberration.
    ///
    /// # Panics
    /// Panics if `window_px` is not a power of two.
    pub fn new(config: ProbeConfig) -> Self {
        let n = config.window_px;
        assert!(
            n.is_power_of_two() && n >= 4,
            "probe window must be a power of two >= 4, got {n}"
        );
        let geom = &config.geometry;
        let lambda = geom.wavelength_pm();
        let dx = geom.pixel_size_pm;

        // Aperture cutoff in cycles / pm and the frequency step of the window.
        let k_max = geom.aperture_cutoff_per_pm();
        let dk = 1.0 / (n as f64 * dx);

        // Build the aperture * aberration phase in unshifted FFT layout.
        let mut pupil = Array2::full(n, n, Complex64::ZERO);
        for r in 0..n {
            for c in 0..n {
                // Signed frequency indices in FFT order.
                let fr = if r <= n / 2 {
                    r as f64
                } else {
                    r as f64 - n as f64
                };
                let fc = if c <= n / 2 {
                    c as f64
                } else {
                    c as f64 - n as f64
                };
                let kr = fr * dk;
                let kc = fc * dk;
                let k2 = kr * kr + kc * kc;
                if k2.sqrt() <= k_max {
                    // Defocus aberration phase χ(k) = π λ Δf k².
                    let chi = PI * lambda * geom.defocus_pm * k2;
                    pupil[(r, c)] = Complex64::cis(-chi);
                }
            }
        }

        let plan = Fft2Plan::new(n, n);
        let mut field = plan.inverse(&pupil);
        // Centre the probe in the window for intuitive placement.
        field = fftshift(&field);

        // Normalise to the requested total intensity.
        let total: f64 = field.as_slice().iter().map(|v| v.norm_sqr()).sum();
        if total > 0.0 {
            let scale = (config.total_intensity / total).sqrt();
            field.map_inplace(|v| *v = v.scale(scale));
        }

        // Effective radius: radius containing 90% of the intensity, measured
        // from the window centre. This is the "probe location circle" radius
        // used to size tile halos.
        let radius_px = Self::effective_radius(&field);

        Self {
            field,
            config,
            radius_px,
        }
    }

    fn effective_radius(field: &CArray2) -> f64 {
        let n = field.rows();
        let centre = (n as f64 - 1.0) / 2.0;
        let mut by_radius: Vec<(f64, f64)> = field
            .indexed_iter()
            .map(|(r, c, v)| {
                let dr = r as f64 - centre;
                let dc = c as f64 - centre;
                ((dr * dr + dc * dc).sqrt(), v.norm_sqr())
            })
            .collect();
        by_radius.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total: f64 = by_radius.iter().map(|&(_, i)| i).sum();
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (radius, intensity) in by_radius {
            acc += intensity;
            if acc >= 0.9 * total {
                return radius;
            }
        }
        n as f64 / 2.0
    }

    /// The complex probe wavefunction.
    pub fn field(&self) -> &CArray2 {
        &self.field
    }

    /// Side length of the probe window in pixels.
    pub fn window_px(&self) -> usize {
        self.config.window_px
    }

    /// The configuration the probe was formed from.
    pub fn config(&self) -> &ProbeConfig {
        &self.config
    }

    /// Radius (in pixels) of the circle containing 90% of the probe intensity —
    /// the "probe location circle" of Fig. 1(b).
    pub fn radius_px(&self) -> f64 {
        self.radius_px
    }

    /// Total probe intensity (should equal the configured dose).
    pub fn total_intensity(&self) -> f64 {
        self.field.as_slice().iter().map(|v| v.norm_sqr()).sum()
    }

    /// The bounding box of pixels whose intensity is at least
    /// `rel_threshold` times the peak intensity — the probe's compact-support
    /// window, which the pruned partial FFT skips butterflies outside of.
    ///
    /// `rel_threshold <= 0` (or an all-zero probe) yields the full window, so
    /// a zero threshold degenerates to the dense transform exactly.
    pub fn support_window(&self, rel_threshold: f64) -> Rect {
        let n = self.window_px();
        let full = Rect::of_shape(n, n);
        let peak = self
            .field
            .as_slice()
            .iter()
            .map(|v| v.norm_sqr())
            .fold(0.0f64, f64::max);
        if rel_threshold <= 0.0 || peak == 0.0 {
            return full;
        }
        let cut = rel_threshold * peak;
        let mut bounds = Rect::empty();
        for (r, c, v) in self.field.indexed_iter() {
            if v.norm_sqr() >= cut {
                bounds = bounds.bounding_union(&Rect::new(r as i64, c as i64, 1, 1));
            }
        }
        if bounds.is_empty() {
            full
        } else {
            bounds
        }
    }

    /// A copy of this probe with the field zeroed outside `support` and kept
    /// bit-identical inside (no renormalisation — the pruned-vs-dense
    /// equality pins rely on the interior values not moving). The effective
    /// radius is re-measured on the padded field.
    ///
    /// This establishes the contract [`ptycho_fft::PartialFft2Plan`] needs:
    /// the field is *exactly* zero (positive zeros) outside its declared
    /// input support.
    pub fn support_padded(&self, support: &Rect) -> Probe {
        let field = Array2::from_fn(self.field.rows(), self.field.cols(), |r, c| {
            if support.contains(r as i64, c as i64) {
                self.field[(r, c)]
            } else {
                Complex64::ZERO
            }
        });
        let radius_px = Self::effective_radius(&field);
        Probe {
            field,
            config: self.config,
            radius_px,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_probe() -> Probe {
        Probe::new(ProbeConfig {
            window_px: 32,
            geometry: ImagingGeometry {
                // Scale the optics so the probe fits comfortably in a 32 px
                // window: bigger pixels, smaller defocus.
                pixel_size_pm: 50.0,
                defocus_pm: 10_000.0,
                ..ImagingGeometry::paper()
            },
            total_intensity: 1.0,
        })
    }

    #[test]
    fn probe_is_normalised() {
        let p = small_probe();
        assert!((p.total_intensity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probe_energy_is_centred() {
        let p = small_probe();
        let n = p.window_px();
        let field = p.field();
        // Intensity-weighted centroid should be near the window centre.
        let mut sr = 0.0;
        let mut sc = 0.0;
        let mut total = 0.0;
        for (r, c, v) in field.indexed_iter() {
            let w = v.norm_sqr();
            sr += r as f64 * w;
            sc += c as f64 * w;
            total += w;
        }
        let centre = (n as f64 - 1.0) / 2.0;
        assert!((sr / total - centre).abs() < 1.5);
        assert!((sc / total - centre).abs() < 1.5);
    }

    #[test]
    fn radius_positive_and_within_window() {
        let p = small_probe();
        assert!(p.radius_px() > 1.0);
        assert!(p.radius_px() <= p.window_px() as f64 / 2.0 * std::f64::consts::SQRT_2);
    }

    #[test]
    fn larger_defocus_gives_larger_probe() {
        let geometry = ImagingGeometry {
            pixel_size_pm: 50.0,
            ..ImagingGeometry::paper()
        };
        let small = Probe::new(ProbeConfig {
            window_px: 64,
            geometry: ImagingGeometry {
                defocus_pm: 5_000.0,
                ..geometry
            },
            total_intensity: 1.0,
        });
        let large = Probe::new(ProbeConfig {
            window_px: 64,
            geometry: ImagingGeometry {
                defocus_pm: 20_000.0,
                ..geometry
            },
            total_intensity: 1.0,
        });
        assert!(large.radius_px() > small.radius_px());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_panics() {
        let _ = Probe::new(ProbeConfig {
            window_px: 48,
            ..ProbeConfig::default()
        });
    }

    #[test]
    fn dose_scaling() {
        let mut config = small_probe().config;
        config.total_intensity = 4.0;
        let p = Probe::new(config);
        assert!((p.total_intensity() - 4.0).abs() < 1e-9);
    }
}
