//! Raster scan patterns and probe-location bookkeeping.
//!
//! The electron probe visits a grid of positions in raster order (Fig. 1(b)).
//! Each visit is a *probe location*: it owns one diffraction measurement and
//! corresponds to a circular region of the object. Neighbouring circles overlap
//! — typically by more than 70% — and that overlap is exactly what forces the
//! decomposition machinery of `ptycho-core` to exchange image gradients.

use ptycho_array::Rect;

/// Configuration of a raster scan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanConfig {
    /// Number of probe positions along the slow (row) axis.
    pub rows: usize,
    /// Number of probe positions along the fast (column) axis.
    pub cols: usize,
    /// Step between neighbouring probe positions, in object pixels.
    pub step_px: f64,
    /// Row/column (in object pixels) of the first probe centre.
    pub origin_px: (f64, f64),
    /// Side length of the square probe window in pixels; each probe location's
    /// bounding box has this size, centred on the probe position.
    pub window_px: usize,
    /// Radius of the probe-location circle in pixels (from [`crate::Probe::radius_px`]).
    pub probe_radius_px: f64,
}

impl ScanConfig {
    /// A scan whose probe centres exactly cover an object of the given size,
    /// with the requested number of positions per axis.
    pub fn covering(
        object_rows: usize,
        object_cols: usize,
        scan_rows: usize,
        scan_cols: usize,
        window_px: usize,
        probe_radius_px: f64,
    ) -> Self {
        assert!(scan_rows > 0 && scan_cols > 0, "scan must have positions");
        // Keep the whole probe window inside the object: margin of window/2.
        let margin = window_px as f64 / 2.0;
        let usable_rows = object_rows as f64 - 2.0 * margin;
        let usable_cols = object_cols as f64 - 2.0 * margin;
        assert!(
            usable_rows >= 0.0 && usable_cols >= 0.0,
            "object ({object_rows}x{object_cols}) smaller than probe window {window_px}"
        );
        let step_r = if scan_rows > 1 {
            usable_rows / (scan_rows - 1) as f64
        } else {
            0.0
        };
        let step_c = if scan_cols > 1 {
            usable_cols / (scan_cols - 1) as f64
        } else {
            0.0
        };
        let step = step_r.min(step_c).max(1.0);
        Self {
            rows: scan_rows,
            cols: scan_cols,
            step_px: step,
            origin_px: (margin, margin),
            window_px,
            probe_radius_px,
        }
    }

    /// Total number of probe locations.
    pub fn num_locations(&self) -> usize {
        self.rows * self.cols
    }

    /// The linear overlap ratio between two adjacent probe-location circles,
    /// `1 - step / (2·radius)`, clamped to `[0, 1]`.
    ///
    /// The paper notes that ptychographic acquisitions typically use overlap
    /// ratios above 70%, and that ratios above ~50% are where the simple
    /// direct-neighbour accumulation stops being sufficient (Sec. IV).
    pub fn overlap_ratio(&self) -> f64 {
        if self.probe_radius_px <= 0.0 {
            return 0.0;
        }
        (1.0 - self.step_px / (2.0 * self.probe_radius_px)).clamp(0.0, 1.0)
    }
}

/// A single probe location: its acquisition index, centre, and footprint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeLocation {
    /// Acquisition (time) order, 0-based; Fig. 1(b) numbers these 1..9.
    pub index: usize,
    /// Scan-grid coordinates `(scan_row, scan_col)`.
    pub grid_pos: (usize, usize),
    /// Probe centre in object pixels `(row, col)`.
    pub center_px: (f64, f64),
    /// Bounding box of the probe window in object pixel coordinates.
    pub window: Rect,
    /// Radius of the probe-location circle in pixels.
    pub radius_px: f64,
}

impl ProbeLocation {
    /// Bounding box of the probe-location *circle* (tighter than the window
    /// when the probe does not fill its window).
    pub fn circle_bbox(&self) -> Rect {
        let r = self.radius_px.ceil() as i64;
        let (cr, cc) = self.center_px;
        Rect::from_corners(
            cr.floor() as i64 - r,
            cr.ceil() as i64 + r + 1,
            cc.floor() as i64 - r,
            cc.ceil() as i64 + r + 1,
        )
    }

    /// True when the probe circles of `self` and `other` overlap.
    pub fn overlaps(&self, other: &ProbeLocation) -> bool {
        let dr = self.center_px.0 - other.center_px.0;
        let dc = self.center_px.1 - other.center_px.1;
        let dist = (dr * dr + dc * dc).sqrt();
        dist < self.radius_px + other.radius_px
    }
}

/// A full raster scan pattern: the ordered list of probe locations.
#[derive(Clone, Debug)]
pub struct ScanPattern {
    config: ScanConfig,
    locations: Vec<ProbeLocation>,
}

impl ScanPattern {
    /// Generates the raster pattern for a configuration.
    pub fn generate(config: ScanConfig) -> Self {
        let mut locations = Vec::with_capacity(config.num_locations());
        let half = config.window_px as i64 / 2;
        for sr in 0..config.rows {
            for sc in 0..config.cols {
                let index = sr * config.cols + sc;
                let center = (
                    config.origin_px.0 + sr as f64 * config.step_px,
                    config.origin_px.1 + sc as f64 * config.step_px,
                );
                let top = center.0.round() as i64 - half;
                let left = center.1.round() as i64 - half;
                locations.push(ProbeLocation {
                    index,
                    grid_pos: (sr, sc),
                    center_px: center,
                    window: Rect::new(top, left, config.window_px as i64, config.window_px as i64),
                    radius_px: config.probe_radius_px,
                });
            }
        }
        Self { config, locations }
    }

    /// The configuration the pattern was generated from.
    pub fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// The pattern restricted to its first `n` probe locations (acquisition
    /// order) — the shape of a scan whose tail has not arrived yet. The
    /// configuration is kept, so a later [`ScanPattern::push`] of the
    /// remaining locations rebuilds the full pattern exactly.
    ///
    /// # Panics
    /// Panics if `n` exceeds the number of locations.
    pub fn prefix(&self, n: usize) -> ScanPattern {
        assert!(
            n <= self.locations.len(),
            "prefix {n} exceeds the {} scanned locations",
            self.locations.len()
        );
        Self {
            config: self.config,
            locations: self.locations[..n].to_vec(),
        }
    }

    /// Appends one probe location — the ingestion splice. Locations must
    /// arrive in acquisition order: the pushed location's `index` has to be
    /// exactly the current length, so the pattern can never hold a gap.
    ///
    /// # Panics
    /// Panics if the location's index does not continue acquisition order.
    pub fn push(&mut self, location: ProbeLocation) {
        assert_eq!(
            location.index,
            self.locations.len(),
            "ingested location index {} does not continue acquisition order (expected {})",
            location.index,
            self.locations.len()
        );
        self.locations.push(location);
    }

    /// All probe locations in acquisition (raster) order.
    pub fn locations(&self) -> &[ProbeLocation] {
        &self.locations
    }

    /// Number of probe locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when the pattern has no probe locations.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// The probe locations whose *windows* intersect `region` — the assignment
    /// rule used when distributing measurements to tiles.
    pub fn locations_in_region(&self, region: &Rect) -> Vec<ProbeLocation> {
        self.locations
            .iter()
            .filter(|loc| loc.window.intersects(region))
            .copied()
            .collect()
    }

    /// The probe locations whose *centres* fall inside `region` — the
    /// "owning tile" assignment used by both decomposition methods (each probe
    /// location is owned by exactly one tile).
    pub fn locations_owned_by(&self, region: &Rect) -> Vec<ProbeLocation> {
        self.locations
            .iter()
            .filter(|loc| {
                region.contains(
                    loc.center_px.0.floor() as i64,
                    loc.center_px.1.floor() as i64,
                )
            })
            .copied()
            .collect()
    }

    /// Bounding box of the union of all probe windows (the part of the object
    /// actually illuminated).
    pub fn illuminated_bbox(&self) -> Rect {
        self.locations
            .iter()
            .fold(Rect::empty(), |acc, loc| acc.bounding_union(&loc.window))
    }

    /// For every probe location, how many *other* probe locations overlap it.
    /// In the high-overlap regime this exceeds the 8 direct neighbours, which
    /// is what necessitates the forward/backward accumulation passes.
    pub fn overlap_counts(&self) -> Vec<usize> {
        self.locations
            .iter()
            .map(|a| {
                self.locations
                    .iter()
                    .filter(|b| b.index != a.index && a.overlaps(b))
                    .count()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_3x3() -> ScanPattern {
        ScanPattern::generate(ScanConfig {
            rows: 3,
            cols: 3,
            step_px: 16.0,
            origin_px: (32.0, 32.0),
            window_px: 64,
            probe_radius_px: 20.0,
        })
    }

    #[test]
    fn raster_order_and_count() {
        let p = pattern_3x3();
        assert_eq!(p.len(), 9);
        assert_eq!(p.locations()[0].grid_pos, (0, 0));
        assert_eq!(p.locations()[1].grid_pos, (0, 1));
        assert_eq!(p.locations()[3].grid_pos, (1, 0));
        assert_eq!(p.locations()[8].grid_pos, (2, 2));
        for (i, loc) in p.locations().iter().enumerate() {
            assert_eq!(loc.index, i);
        }
    }

    #[test]
    fn windows_are_centred_on_positions() {
        let p = pattern_3x3();
        let loc = p.locations()[4];
        assert_eq!(loc.center_px, (48.0, 48.0));
        assert_eq!(loc.window, Rect::new(16, 16, 64, 64));
        let (cr, cc) = loc.window.center();
        assert!((cr - 48.0).abs() <= 1.0 && (cc - 48.0).abs() <= 1.0);
    }

    #[test]
    fn adjacent_circles_overlap() {
        let p = pattern_3x3();
        let a = p.locations()[0];
        let b = p.locations()[1];
        assert!(a.overlaps(&b));
        // Overlap ratio 1 - 16/(2*20) = 0.6.
        assert!((p.config().overlap_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn high_overlap_reaches_non_adjacent_neighbours() {
        // Step much smaller than radius: circles overlap beyond direct
        // neighbours, the regime of Fig. 2(f).
        let p = ScanPattern::generate(ScanConfig {
            rows: 5,
            cols: 5,
            step_px: 4.0,
            origin_px: (32.0, 32.0),
            window_px: 32,
            probe_radius_px: 10.0,
        });
        let counts = p.overlap_counts();
        // The centre probe overlaps more than its 8 direct neighbours.
        let centre = counts[12];
        assert!(centre > 8, "expected >8 overlaps, got {centre}");
    }

    #[test]
    fn covering_scan_fits_object() {
        let config = ScanConfig::covering(256, 256, 4, 4, 64, 20.0);
        let p = ScanPattern::generate(config);
        let bbox = p.illuminated_bbox();
        let object = Rect::of_shape(256, 256);
        assert!(object.contains_rect(&bbox), "bbox {bbox:?} escapes object");
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn locations_owned_by_partition() {
        let p = pattern_3x3();
        let bounds = Rect::of_shape(128, 128);
        let tiles = Rect::grid(&bounds, 3, 3);
        let mut total = 0;
        for t in &tiles {
            total += p.locations_owned_by(t).len();
        }
        // Ownership by centre partitions the probe locations exactly.
        assert_eq!(total, p.len());
    }

    #[test]
    fn locations_in_region_superset_of_owned() {
        let p = pattern_3x3();
        let tile = Rect::new(0, 0, 48, 48);
        let owned = p.locations_owned_by(&tile).len();
        let touching = p.locations_in_region(&tile).len();
        assert!(touching >= owned);
        assert!(touching > 0);
    }

    #[test]
    fn overlap_ratio_clamps() {
        let mut config = pattern_3x3().config;
        config.step_px = 100.0;
        assert_eq!(config.overlap_ratio(), 0.0);
        config.step_px = 0.0;
        assert_eq!(config.overlap_ratio(), 1.0);
    }

    #[test]
    fn circle_bbox_contains_center() {
        let p = pattern_3x3();
        for loc in p.locations() {
            let bbox = loc.circle_bbox();
            assert!(bbox.contains(loc.center_px.0 as i64, loc.center_px.1 as i64));
        }
    }
}
