//! A counting test allocator for allocation-regression tests.
//!
//! The reconstruction hot path is designed to be allocation-free in steady
//! state (ISSUE 4): every per-iteration buffer is pooled at solver `init` and
//! reused. That property silently rots unless it is pinned, so this crate
//! provides a [`CountingAllocator`] — a thin wrapper over the system
//! allocator that counts every `alloc`/`realloc` — which a test binary
//! installs as its `#[global_allocator]` and then asserts that extra
//! steady-state iterations add **zero** to the count
//! (`tests/alloc_regression.rs` at the workspace root).
//!
//! Everything is gated behind the `alloc-counter` feature so the
//! instrumentation is never compiled into non-test consumers.
//!
//! # Example
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ptycho_alloc::CountingAllocator = ptycho_alloc::CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations(), before, "hot path must not allocate");
//! ```

#![warn(missing_docs)]
#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A global allocator that forwards to [`System`] while counting every
/// allocation event and the bytes requested.
///
/// Counters use relaxed atomics: the tests that read them bracket
/// single-threaded (or deterministically scheduled) regions, so no ordering
/// stronger than the bracketing reads themselves is needed.
pub struct CountingAllocator {
    allocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// Creates an allocator with zeroed counters (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total allocation events (`alloc`, `alloc_zeroed` and `realloc` each
    /// count as one) since process start.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested across all allocation events.
    pub fn bytes_requested(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn record(&self, size: usize) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method forwards verbatim to the `System` allocator; the
// counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (the regression test binary
    // does that); exercise the counter plumbing directly.
    #[test]
    fn counters_track_direct_calls() {
        let counter = CountingAllocator::new();
        assert_eq!(counter.allocations(), 0);
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = counter.alloc(layout);
            assert!(!p.is_null());
            let p = counter.realloc(p, layout, 128);
            assert!(!p.is_null());
            counter.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(counter.allocations(), 2);
        assert_eq!(counter.bytes_requested(), 64 + 128);
    }
}
