//! Property-based tests for the decomposition geometry, stitching and the
//! analytic memory model.

use proptest::prelude::*;
use ptycho_array::{Array3, Rect};
use ptycho_core::memory_model::{decomposition_geometry, gd_memory_per_gpu};
use ptycho_core::stitch::{border_mask, stitch_tiles};
use ptycho_core::tiling::TileGrid;
use ptycho_fft::Complex64;
use ptycho_sim::dataset::DatasetSpec;
use ptycho_sim::scan::{ScanConfig, ScanPattern};

fn scan_for(image: usize, positions: usize) -> ScanPattern {
    let window = 16.min(image / 2).max(4);
    ScanPattern::generate(ScanConfig::covering(
        image,
        image,
        positions,
        positions,
        window,
        window as f64 / 3.0,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tile_cores_partition_any_image(image in 32usize..160,
                                      grid_rows in 1usize..5,
                                      grid_cols in 1usize..5,
                                      halo in 0usize..12,
                                      positions in 2usize..5) {
        let scan = scan_for(image, positions);
        let grid = TileGrid::new(image, image, grid_rows, grid_cols, halo, &scan);

        // Cores partition the image exactly.
        let area: usize = grid.tiles().iter().map(|t| t.core.area()).sum();
        prop_assert_eq!(area, image * image);
        for (i, a) in grid.tiles().iter().enumerate() {
            prop_assert!(grid.image_bounds().contains_rect(&a.extended));
            prop_assert!(a.extended.contains_rect(&a.core));
            for b in grid.tiles().iter().skip(i + 1) {
                prop_assert!(!a.core.intersects(&b.core));
            }
        }

        // Probe ownership partitions the scan.
        prop_assert!(grid.ownership_partitions_scan(&scan));

        // Overlaps are symmetric.
        for a in 0..grid.num_tiles() {
            for b in 0..grid.num_tiles() {
                prop_assert_eq!(grid.overlap(a, b), grid.overlap(b, a));
            }
        }
    }

    #[test]
    fn grid_dims_factorise_exactly(workers in 1usize..600) {
        let (rows, cols) = TileGrid::grid_dims_for(workers);
        prop_assert_eq!(rows * cols, workers);
        prop_assert!(rows <= cols);
    }

    #[test]
    fn stitching_recovers_any_partition(image in 24usize..96,
                                        grid_rows in 1usize..4,
                                        grid_cols in 1usize..4,
                                        slices in 1usize..3) {
        let scan = scan_for(image, 3);
        let grid = TileGrid::new(image, image, grid_rows, grid_cols, 4, &scan);
        // A global volume whose voxel values encode their coordinates.
        let global = Array3::from_fn(slices, image, image, |s, r, c| {
            Complex64::new((s * image * image + r * image + c) as f64, 1.0)
        });
        let cores: Vec<(Rect, _)> = grid
            .tiles()
            .iter()
            .map(|t| (t.core, global.extract_region(t.core)))
            .collect();
        let stitched = stitch_tiles(&grid, &cores);
        prop_assert_eq!(stitched, global);
    }

    #[test]
    fn border_mask_only_marks_interior_bands(image in 32usize..96,
                                             grid_rows in 1usize..4,
                                             grid_cols in 1usize..4) {
        let scan = scan_for(image, 3);
        let grid = TileGrid::new(image, image, grid_rows, grid_cols, 4, &scan);
        let mask = border_mask(&grid, 1);
        let marked = mask.iter().filter(|&&b| b).count();
        if grid_rows == 1 && grid_cols == 1 {
            prop_assert_eq!(marked, 0);
        } else {
            prop_assert!(marked > 0);
            // The border band is a small fraction of the image.
            prop_assert!(marked < image * image / 2);
        }
    }

    #[test]
    fn memory_model_is_positive_and_decreasing(gpus_exp in 1u32..7) {
        let spec = DatasetSpec::lead_titanate_large();
        let gpus = 6usize * (1 << gpus_exp);
        let smaller = gd_memory_per_gpu(&spec, gpus, 600.0);
        let larger = gd_memory_per_gpu(&spec, gpus / 2, 600.0);
        prop_assert!(smaller.total_bytes() > 0.0);
        prop_assert!(larger.total_bytes() > smaller.total_bytes());
    }

    #[test]
    fn decomposition_geometry_conserves_probes(gpus in 1usize..800) {
        let spec = DatasetSpec::lead_titanate_small();
        let geometry = decomposition_geometry(&spec, gpus, 600.0, 0);
        let total = geometry.avg_owned * gpus as f64;
        prop_assert!((total - spec.probe_locations as f64).abs() < 1e-6);
        prop_assert!(geometry.max_owned + 1e-9 >= geometry.avg_owned);
        prop_assert!(geometry.avg_assigned + 1e-9 >= geometry.avg_owned);
    }
}
