//! Tile grids, halos and overlap regions.
//!
//! Both decomposition methods tessellate the image into a `grid_rows ×
//! grid_cols` grid of contiguous core tiles — one per worker — and extend each
//! core tile with a halo so that the probe-location circles owned by the tile
//! are covered (Fig. 2(b), Fig. 3(b)). The difference between the methods is
//! *what flows through the overlaps*: the Gradient Decomposition method adds
//! image gradients in the overlap regions, while the Halo Voxel Exchange
//! method copy-pastes voxels into neighbouring halos.

use ptycho_array::Rect;
use ptycho_sim::scan::{ProbeLocation, ScanPattern};

/// Everything a worker needs to know about its tile.
#[derive(Clone, Debug, PartialEq)]
pub struct TileInfo {
    /// Linear tile index == worker rank.
    pub index: usize,
    /// Position in the tile grid `(grid_row, grid_col)`.
    pub grid_pos: (usize, usize),
    /// The core tile: the region this worker owns exclusively; core tiles
    /// partition the image.
    pub core: Rect,
    /// The halo-extended tile: core dilated by the halo width and clamped to
    /// the image bounds. This is the region the worker allocates and updates.
    pub extended: Rect,
    /// Probe locations owned by this tile (centre inside `core`).
    pub owned_locations: Vec<ProbeLocation>,
}

impl TileInfo {
    /// Number of voxels (per slice) in the extended tile.
    pub fn extended_area(&self) -> usize {
        self.extended.area()
    }

    /// Number of voxels (per slice) in the halo alone.
    pub fn halo_area(&self) -> usize {
        self.extended.area() - self.core.area()
    }
}

/// A complete tile decomposition of an image.
#[derive(Clone, Debug)]
pub struct TileGrid {
    image_bounds: Rect,
    grid_rows: usize,
    grid_cols: usize,
    halo_px: usize,
    tiles: Vec<TileInfo>,
}

impl TileGrid {
    /// Builds the decomposition of an `image_rows × image_cols` image into a
    /// `grid_rows × grid_cols` grid with the given halo width, assigning every
    /// probe location of `scan` to the tile whose core contains its centre.
    ///
    /// # Panics
    /// Panics if the grid is empty or larger than the image.
    pub fn new(
        image_rows: usize,
        image_cols: usize,
        grid_rows: usize,
        grid_cols: usize,
        halo_px: usize,
        scan: &ScanPattern,
    ) -> Self {
        assert!(grid_rows > 0 && grid_cols > 0, "empty tile grid");
        assert!(
            grid_rows <= image_rows && grid_cols <= image_cols,
            "tile grid {grid_rows}x{grid_cols} larger than image {image_rows}x{image_cols}"
        );
        let image_bounds = Rect::of_shape(image_rows, image_cols);
        let cores = Rect::grid(&image_bounds, grid_rows, grid_cols);
        let tiles = cores
            .into_iter()
            .enumerate()
            .map(|(index, core)| {
                let extended = core.dilate(halo_px as i64).clamp_to(&image_bounds);
                let owned_locations = scan.locations_owned_by(&core);
                TileInfo {
                    index,
                    grid_pos: (index / grid_cols, index % grid_cols),
                    core,
                    extended,
                    owned_locations,
                }
            })
            .collect();
        Self {
            image_bounds,
            grid_rows,
            grid_cols,
            halo_px,
            tiles,
        }
    }

    /// Chooses a near-square `(grid_rows, grid_cols)` factorisation of
    /// `workers`, preferring `grid_rows <= grid_cols` (e.g. 6 → 2×3,
    /// 462 → 21×22, 4158 → 63×66).
    pub fn grid_dims_for(workers: usize) -> (usize, usize) {
        assert!(workers > 0, "need at least one worker");
        let mut best = (1, workers);
        let mut best_gap = workers;
        let limit = (workers as f64).sqrt() as usize + 1;
        for rows in 1..=limit {
            if workers.is_multiple_of(rows) {
                let cols = workers / rows;
                let gap = cols - rows.min(cols);
                if gap < best_gap {
                    best_gap = gap;
                    best = (rows.min(cols), rows.max(cols));
                }
            }
        }
        best
    }

    /// The full image bounds.
    pub fn image_bounds(&self) -> Rect {
        self.image_bounds
    }

    /// Grid shape `(grid_rows, grid_cols)`.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Halo width in pixels.
    pub fn halo_px(&self) -> usize {
        self.halo_px
    }

    /// Number of tiles (== workers).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// All tiles, indexed by rank.
    pub fn tiles(&self) -> &[TileInfo] {
        &self.tiles
    }

    /// The tile owned by `rank`.
    pub fn tile(&self, rank: usize) -> &TileInfo {
        &self.tiles[rank]
    }

    /// The tile at grid position `(grid_row, grid_col)`, if it exists.
    pub fn tile_at(&self, grid_row: usize, grid_col: usize) -> Option<&TileInfo> {
        if grid_row < self.grid_rows && grid_col < self.grid_cols {
            Some(&self.tiles[grid_row * self.grid_cols + grid_col])
        } else {
            None
        }
    }

    /// Rank of the tile at `(grid_row, grid_col)`.
    pub fn rank_at(&self, grid_row: usize, grid_col: usize) -> usize {
        assert!(grid_row < self.grid_rows && grid_col < self.grid_cols);
        grid_row * self.grid_cols + grid_col
    }

    /// The overlap between the *extended* tiles of two ranks (possibly empty).
    /// This is the region in which their image gradients must agree.
    pub fn overlap(&self, a: usize, b: usize) -> Rect {
        self.tiles[a].extended.intersect(&self.tiles[b].extended)
    }

    /// The direct neighbours (8-connectivity, Fig. 3(b)) of a rank whose
    /// extended tiles actually overlap it.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let (gr, gc) = self.tiles[rank].grid_pos;
        let mut out = Vec::new();
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let nr = gr as i64 + dr;
                let nc = gc as i64 + dc;
                if nr < 0 || nc < 0 || nr >= self.grid_rows as i64 || nc >= self.grid_cols as i64 {
                    continue;
                }
                let n = self.rank_at(nr as usize, nc as usize);
                if !self.overlap(rank, n).is_empty() {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Checks that every probe location is owned by exactly one tile.
    pub fn ownership_partitions_scan(&self, scan: &ScanPattern) -> bool {
        let total: usize = self.tiles.iter().map(|t| t.owned_locations.len()).sum();
        total == scan.len()
    }

    /// Probe locations assigned to a tile by the *Halo Voxel Exchange* rule:
    /// the owned locations plus `extra_rows` rings of neighbouring locations
    /// around the core tile (Sec. II-C, Figs. 2(d)-(e)).
    pub fn hve_assigned_locations(
        &self,
        rank: usize,
        scan: &ScanPattern,
        extra_rows: usize,
    ) -> Vec<ProbeLocation> {
        let step = scan.config().step_px.max(1.0);
        let margin = (extra_rows as f64 * step).ceil() as i64;
        let reach = self.tiles[rank].core.dilate(margin);
        scan.locations_owned_by(&reach)
    }

    /// The halo width (in pixels) the Halo Voxel Exchange method needs so that
    /// its halo covers all the extra probe locations' windows: the extra rings
    /// plus half a probe window.
    pub fn hve_required_halo_px(scan: &ScanPattern, extra_rows: usize) -> usize {
        let step = scan.config().step_px;
        let window_half = scan.config().window_px as f64 / 2.0;
        (extra_rows as f64 * step + window_half).ceil() as usize
    }

    /// The Halo Voxel Exchange feasibility constraint (Sec. VI-B): every core
    /// tile must be at least as large as the neighbouring halos it has to
    /// fill, otherwise neighbouring tiles cannot be made consistent and the
    /// method cannot run ("NA" entries of Table II(b)).
    pub fn hve_feasible(&self, hve_halo_px: usize) -> bool {
        self.tiles
            .iter()
            .all(|t| t.core.rows() >= hve_halo_px && t.core.cols() >= hve_halo_px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptycho_sim::scan::{ScanConfig, ScanPattern};

    fn test_scan() -> ScanPattern {
        ScanPattern::generate(ScanConfig {
            rows: 6,
            cols: 6,
            step_px: 16.0,
            origin_px: (24.0, 24.0),
            window_px: 32,
            probe_radius_px: 12.0,
        })
    }

    fn grid_3x3() -> TileGrid {
        TileGrid::new(128, 128, 3, 3, 8, &test_scan())
    }

    #[test]
    fn cores_partition_image() {
        let grid = grid_3x3();
        let total: usize = grid.tiles().iter().map(|t| t.core.area()).sum();
        assert_eq!(total, 128 * 128);
        for (i, a) in grid.tiles().iter().enumerate() {
            for b in grid.tiles().iter().skip(i + 1) {
                assert!(!a.core.intersects(&b.core));
            }
        }
    }

    #[test]
    fn extended_tiles_stay_in_bounds_and_contain_core() {
        let grid = grid_3x3();
        for t in grid.tiles() {
            assert!(grid.image_bounds().contains_rect(&t.extended));
            assert!(t.extended.contains_rect(&t.core));
            assert!(t.halo_area() > 0, "interior tiles must have halos");
        }
    }

    #[test]
    fn ownership_partitions_probe_locations() {
        let grid = grid_3x3();
        assert!(grid.ownership_partitions_scan(&test_scan()));
    }

    #[test]
    fn neighbors_of_center_tile() {
        let grid = grid_3x3();
        let center = grid.rank_at(1, 1);
        let mut n = grid.neighbors(center);
        n.sort_unstable();
        assert_eq!(n, vec![0, 1, 2, 3, 5, 6, 7, 8]);
    }

    #[test]
    fn neighbors_of_corner_tile() {
        let grid = grid_3x3();
        let mut n = grid.neighbors(0);
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 4]);
    }

    #[test]
    fn overlaps_are_symmetric_and_nonempty_for_adjacent() {
        let grid = grid_3x3();
        let a = grid.rank_at(1, 1);
        let b = grid.rank_at(1, 2);
        let ov = grid.overlap(a, b);
        assert!(!ov.is_empty());
        assert_eq!(ov, grid.overlap(b, a));
        // Diagonal overlap is the small corner square of Fig. 3(b).
        let d = grid.rank_at(2, 2);
        let corner = grid.overlap(a, d);
        assert!(!corner.is_empty());
        assert!(corner.area() < ov.area());
    }

    #[test]
    fn distant_tiles_do_not_overlap_with_small_halo() {
        let grid = grid_3x3();
        assert!(grid.overlap(0, 8).is_empty());
        assert!(grid
            .overlap(grid.rank_at(0, 0), grid.rank_at(0, 2))
            .is_empty());
    }

    #[test]
    fn grid_dims_factorisations() {
        assert_eq!(TileGrid::grid_dims_for(1), (1, 1));
        assert_eq!(TileGrid::grid_dims_for(6), (2, 3));
        assert_eq!(TileGrid::grid_dims_for(24), (4, 6));
        assert_eq!(TileGrid::grid_dims_for(54), (6, 9));
        assert_eq!(TileGrid::grid_dims_for(126), (9, 14));
        assert_eq!(TileGrid::grid_dims_for(198), (11, 18));
        assert_eq!(TileGrid::grid_dims_for(462), (21, 22));
        assert_eq!(TileGrid::grid_dims_for(924), (28, 33));
        assert_eq!(TileGrid::grid_dims_for(4158), (63, 66));
    }

    #[test]
    fn hve_assigns_extra_probe_locations() {
        let grid = grid_3x3();
        let scan = test_scan();
        let center = grid.rank_at(1, 1);
        let owned = grid.tile(center).owned_locations.len();
        let assigned = grid.hve_assigned_locations(center, &scan, 2).len();
        assert!(
            assigned > owned,
            "HVE must assign extra probes: owned={owned}, assigned={assigned}"
        );
        // With a large enough reach the centre tile ends up with every probe
        // location (the pathological case of Fig. 2(e)).
        let everything = grid.hve_assigned_locations(center, &scan, 10).len();
        assert_eq!(everything, scan.len());
    }

    #[test]
    fn hve_halo_exceeds_gd_halo() {
        let scan = test_scan();
        let hve_halo = TileGrid::hve_required_halo_px(&scan, 2);
        // 2 rows x 16 px + 16 px half-window = 48.
        assert_eq!(hve_halo, 48);
        assert!(
            hve_halo > 8,
            "HVE halo must exceed the GD halo used in tests"
        );
    }

    #[test]
    fn hve_feasibility_constraint() {
        let grid = grid_3x3(); // ~42 px tiles
        assert!(grid.hve_feasible(20));
        assert!(!grid.hve_feasible(64));
    }

    #[test]
    fn tile_at_and_rank_at_roundtrip() {
        let grid = grid_3x3();
        for gr in 0..3 {
            for gc in 0..3 {
                let rank = grid.rank_at(gr, gc);
                let tile = grid.tile_at(gr, gc).unwrap();
                assert_eq!(tile.index, rank);
                assert_eq!(tile.grid_pos, (gr, gc));
            }
        }
        assert!(grid.tile_at(3, 0).is_none());
    }
}
