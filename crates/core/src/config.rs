//! Solver configuration shared by both decomposition methods.

use ptycho_array::Rect;

/// How often the accumulated-gradient buffers are synchronised between tiles
/// (the parameter `T` of Algorithm 1, expressed in the units the paper uses in
/// Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassFrequency {
    /// Perform the directional passes after every probe location
    /// (`T = 1`; the yellow curve of Fig. 9).
    EveryProbe,
    /// Perform the passes a fixed number of times per iteration (per full
    /// cycle through the probe locations). `PerIteration(1)` is the paper's
    /// default; `PerIteration(2)` is the red curve of Fig. 9.
    PerIteration(usize),
}

impl PassFrequency {
    /// The accumulation period `T` in probe locations, for a tile owning
    /// `probes_owned` locations.
    pub fn period(&self, probes_owned: usize) -> usize {
        match *self {
            PassFrequency::EveryProbe => 1,
            PassFrequency::PerIteration(times) => {
                let times = times.max(1);
                (probes_owned / times).max(1)
            }
        }
    }
}

/// Configuration for the parallel reconstruction solvers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Number of reconstruction iterations (full cycles through all probe
    /// locations). The paper reports runtimes for a fixed 100 iterations.
    pub iterations: usize,
    /// Relaxation factor multiplying the automatically scaled gradient step
    /// (`α` in Algorithm 1); values in `(0, 1]` are safe.
    pub step_relaxation: f64,
    /// Halo width in pixels added around each tile (the paper uses 600 pm ≈ 60
    /// voxels for Gradient Decomposition and 890 pm for Halo Voxel Exchange).
    pub halo_px: usize,
    /// How often gradients are exchanged between tiles.
    pub pass_frequency: PassFrequency,
    /// Whether each probe's gradient is also applied locally as soon as it is
    /// computed (step 8 of Algorithm 1). When `false` the tile is only updated
    /// from the fully accumulated buffer at synchronisation points, which makes
    /// the parallel method exactly equivalent to serial full-gradient descent
    /// and is used by the equivalence tests.
    pub local_updates: bool,
    /// Number of extra probe-location rows assigned to every tile by the Halo
    /// Voxel Exchange baseline (the paper uses 2).
    pub hve_extra_probe_rows: usize,
    /// How many embarrassingly-parallel iterations the Halo Voxel Exchange
    /// baseline performs between voxel copy-paste exchanges (Sec. II-C
    /// describes independent tile reconstruction followed by exchange,
    /// repeated). `1` exchanges after every iteration.
    pub hve_exchange_period: usize,
    /// When set, every worker prunes the entry-slice forward FFT to the
    /// probe's compact-support window: pixels with intensity below
    /// `threshold × peak` are zeroed out of the probe and the pruned
    /// [`ptycho_fft::PartialFft2Plan`] skips their butterflies. `Some(0.0)`
    /// selects the full window (bit-identical to `None` — the degenerate
    /// pin the equivalence tests use); `None` (the default) keeps the dense
    /// transforms.
    pub probe_support_threshold: Option<f64>,
    /// When set, every worker restricts the far-field diffraction pattern to
    /// this detector region of interest (window-local coordinates): the
    /// inverse entry FFT only reconstructs the pruned output rows, matching
    /// [`ptycho_sim::MultisliceModel::with_detector_roi`]. The full-window
    /// ROI is bit-identical to `None` — the degenerate pin the equivalence
    /// tests use. `None` (the default) keeps the dense detector.
    pub detector_roi: Option<Rect>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            iterations: 10,
            step_relaxation: 0.5,
            halo_px: 24,
            pass_frequency: PassFrequency::PerIteration(1),
            local_updates: true,
            hve_extra_probe_rows: 2,
            hve_exchange_period: 1,
            probe_support_threshold: None,
            detector_roi: None,
        }
    }
}

impl SolverConfig {
    /// A configuration matching the paper's reconstruction parameters section
    /// (Sec. VI-A), with the halo expressed in pixels of the given voxel size.
    pub fn paper_defaults(voxel_size_pm: f64) -> Self {
        Self {
            iterations: 100,
            step_relaxation: 0.5,
            halo_px: (600.0 / voxel_size_pm).round() as usize,
            pass_frequency: PassFrequency::PerIteration(1),
            local_updates: true,
            hve_extra_probe_rows: 2,
            hve_exchange_period: 1,
            probe_support_threshold: None,
            detector_roi: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_period_every_probe() {
        assert_eq!(PassFrequency::EveryProbe.period(100), 1);
        assert_eq!(PassFrequency::EveryProbe.period(0), 1);
    }

    #[test]
    fn pass_period_per_iteration() {
        assert_eq!(PassFrequency::PerIteration(1).period(100), 100);
        assert_eq!(PassFrequency::PerIteration(2).period(100), 50);
        assert_eq!(PassFrequency::PerIteration(0).period(100), 100);
        // A tile owning fewer probes than the requested frequency still passes
        // at least once per probe.
        assert_eq!(PassFrequency::PerIteration(8).period(3), 1);
    }

    #[test]
    fn paper_defaults_halo_width() {
        let config = SolverConfig::paper_defaults(10.0);
        assert_eq!(config.halo_px, 60);
        assert_eq!(config.iterations, 100);
        let coarse = SolverConfig::paper_defaults(50.0);
        assert_eq!(coarse.halo_px, 12);
    }

    #[test]
    fn default_is_reasonable() {
        let config = SolverConfig::default();
        assert!(config.step_relaxation > 0.0 && config.step_relaxation <= 1.0);
        assert!(config.halo_px > 0);
        assert!(config.local_updates);
    }
}
