//! Stitching tiles into a full reconstruction and measuring seam artifacts.
//!
//! Both methods finish by abandoning halos and stitching the non-halo (core)
//! tiles together (Alg. 1 step 20). The Halo Voxel Exchange method leaves
//! visible seams at the tile borders because voxels are copy-pasted between
//! tiles that disagree slightly (Fig. 8(a)); the Gradient Decomposition method
//! does not, because gradients — not voxels — are reconciled (Fig. 8(b)). The
//! [`seam_artifact_metric`] quantifies that difference.

use crate::tiling::TileGrid;
use ptycho_array::{stats, Array2, Array3, Rect};
use ptycho_fft::{CArray3, Complex64};

/// Stitches per-tile core volumes (in image coordinates given by their `Rect`)
/// into a full reconstruction volume.
///
/// # Panics
/// Panics if a core volume's plane shape does not match its rectangle.
pub fn stitch_tiles(grid: &TileGrid, cores: &[(Rect, CArray3)]) -> CArray3 {
    let bounds = grid.image_bounds();
    let slices = cores
        .first()
        .map(|(_, v)| v.depth())
        .expect("stitch_tiles: no tiles given");
    let mut volume = Array3::full(slices, bounds.rows(), bounds.cols(), Complex64::ONE);
    for (core, tile_volume) in cores {
        assert_eq!(
            (tile_volume.rows(), tile_volume.cols()),
            core.shape(),
            "tile volume shape does not match its core rectangle"
        );
        volume.paste_region(*core, tile_volume);
    }
    volume
}

/// The phase image of one slice of a reconstruction — the quantity displayed
/// in the paper's figures and inspected for seams.
pub fn phase_image(volume: &CArray3, slice: usize) -> Array2<f64> {
    volume.slice(slice).map(|v| v.arg())
}

/// The set of interior tile-border pixels (within `width` pixels of a core
/// tile edge that is not on the image boundary).
pub fn border_mask(grid: &TileGrid, width: usize) -> Array2<bool> {
    let bounds = grid.image_bounds();
    let mut mask = Array2::full(bounds.rows(), bounds.cols(), false);
    let width = width.max(1) as i64;
    for tile in grid.tiles() {
        let core = tile.core;
        // Vertical borders (right edge of the tile, unless at the image edge).
        if core.col1 < bounds.col1 {
            let band =
                Rect::from_corners(core.row0, core.row1, core.col1 - width, core.col1 + width);
            mask.fill_region(band, true);
        }
        // Horizontal borders (bottom edge of the tile).
        if core.row1 < bounds.row1 {
            let band =
                Rect::from_corners(core.row1 - width, core.row1 + width, core.col0, core.col1);
            mask.fill_region(band, true);
        }
    }
    mask
}

/// Quantifies seam artifacts: the ratio of the mean image-gradient magnitude
/// on interior tile-border pixels to the mean over all other pixels.
///
/// A value near 1 means the tile borders are statistically indistinguishable
/// from the rest of the image (no seams); values well above 1 indicate
/// artificial discontinuities along the borders.
pub fn seam_artifact_metric(image: &Array2<f64>, grid: &TileGrid, band_width: usize) -> f64 {
    assert_eq!(
        image.shape(),
        grid.image_bounds().shape(),
        "image shape does not match the tile grid"
    );
    let gradient = stats::gradient_magnitude(image);
    let mask = border_mask(grid, band_width);
    let mut border = Vec::new();
    let mut interior = Vec::new();
    for (r, c, &on_border) in mask.indexed_iter() {
        if on_border {
            border.push(gradient[(r, c)]);
        } else {
            interior.push(gradient[(r, c)]);
        }
    }
    if border.is_empty() || interior.is_empty() {
        return 1.0;
    }
    let interior_mean = stats::mean(&interior);
    if interior_mean == 0.0 {
        return if stats::mean(&border) == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    stats::mean(&border) / interior_mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptycho_sim::scan::{ScanConfig, ScanPattern};

    fn scan() -> ScanPattern {
        ScanPattern::generate(ScanConfig {
            rows: 3,
            cols: 3,
            step_px: 16.0,
            origin_px: (16.0, 16.0),
            window_px: 16,
            probe_radius_px: 8.0,
        })
    }

    fn grid() -> TileGrid {
        TileGrid::new(64, 64, 2, 2, 8, &scan())
    }

    #[test]
    fn stitching_reassembles_partition() {
        let g = grid();
        // Build per-tile volumes whose values encode the global coordinates.
        let cores: Vec<(Rect, CArray3)> = g
            .tiles()
            .iter()
            .map(|t| {
                let vol = Array3::from_fn(2, t.core.rows(), t.core.cols(), |s, r, c| {
                    Complex64::new(
                        (t.core.row0 as usize + r) as f64,
                        (s * 1000 + t.core.col0 as usize + c) as f64,
                    )
                });
                (t.core, vol)
            })
            .collect();
        let full = stitch_tiles(&g, &cores);
        assert_eq!(full.shape(), (2, 64, 64));
        for s in 0..2 {
            for r in 0..64 {
                for c in 0..64 {
                    let v = full[(s, r, c)];
                    assert_eq!(v.re, r as f64);
                    assert_eq!(v.im, (s * 1000 + c) as f64);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match its core rectangle")]
    fn stitching_rejects_wrong_shapes() {
        let g = grid();
        let wrong = vec![(g.tile(0).core, Array3::full(1, 3, 3, Complex64::ZERO))];
        let _ = stitch_tiles(&g, &wrong);
    }

    #[test]
    fn border_mask_marks_internal_edges_only() {
        let g = grid();
        let mask = border_mask(&g, 1);
        // The internal borders of a 2x2 grid on 64x64 are at row 32 and col 32.
        assert!(mask[(32, 10)]);
        assert!(mask[(10, 32)]);
        assert!(!mask[(0, 0)]);
        assert!(!mask[(63, 63)]);
        assert!(!mask[(10, 10)]);
    }

    #[test]
    fn seam_metric_flat_image_is_one() {
        let g = grid();
        let image = Array2::full(64, 64, 2.0);
        assert_eq!(seam_artifact_metric(&image, &g, 1), 1.0);
    }

    #[test]
    fn seam_metric_detects_artificial_seams() {
        let g = grid();
        // An image that jumps at the tile borders: each quadrant has a
        // different constant value.
        let seamed = Array2::from_fn(64, 64, |r, c| {
            let q = (usize::from(r >= 32)) * 2 + usize::from(c >= 32);
            q as f64
        });
        let smooth = Array2::from_fn(64, 64, |r, c| (r + c) as f64 * 0.01);
        let seamed_score = seam_artifact_metric(&seamed, &g, 1);
        let smooth_score = seam_artifact_metric(&smooth, &g, 1);
        assert!(
            seamed_score > 5.0,
            "quadrant image should show strong seams, got {seamed_score}"
        );
        assert!(
            smooth_score < 1.5,
            "smooth gradient image should show no seams, got {smooth_score}"
        );
    }

    #[test]
    fn phase_image_extracts_argument() {
        let vol = Array3::full(1, 4, 4, Complex64::cis(0.5));
        let phase = phase_image(&vol, 0);
        assert!(phase.iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }
}
