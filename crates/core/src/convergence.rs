//! Convergence tracking for the reconstruction cost `F(V)`.
//!
//! Fig. 9 of the paper plots the cost function against iteration for three
//! communication frequencies; this module holds the per-iteration cost series
//! and the summary statistics the experiment harnesses report.

/// The per-iteration history of the global cost `F(V)` (Eqn. 1).
#[derive(Clone, Debug, PartialEq)]
pub struct CostHistory {
    costs: Vec<f64>,
}

impl CostHistory {
    /// Wraps a per-iteration cost series.
    pub fn from_costs(costs: Vec<f64>) -> Self {
        Self { costs }
    }

    /// The raw per-iteration costs.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// Number of recorded iterations.
    pub fn iterations(&self) -> usize {
        self.costs.len()
    }

    /// True when no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// The first recorded cost (`0.0` when empty).
    pub fn initial_cost(&self) -> f64 {
        self.costs.first().copied().unwrap_or(0.0)
    }

    /// The last recorded cost (`0.0` when empty).
    pub fn final_cost(&self) -> f64 {
        self.costs.last().copied().unwrap_or(0.0)
    }

    /// The total relative reduction `1 − final/initial`, in `[0, 1]` for a
    /// converging run.
    pub fn relative_reduction(&self) -> f64 {
        let initial = self.initial_cost();
        if initial == 0.0 {
            0.0
        } else {
            1.0 - self.final_cost() / initial
        }
    }

    /// True when the cost never increases from one iteration to the next
    /// (within a small relative tolerance for floating-point noise).
    pub fn is_monotonically_decreasing(&self) -> bool {
        self.costs
            .windows(2)
            .all(|w| w[1] <= w[0] * (1.0 + 1e-9) + 1e-12)
    }

    /// The first iteration index at which the cost dropped below
    /// `fraction × initial_cost`, if any — a simple time-to-quality measure
    /// used to compare communication frequencies (Fig. 9).
    pub fn iterations_to_reach(&self, fraction: f64) -> Option<usize> {
        let target = self.initial_cost() * fraction;
        self.costs.iter().position(|&c| c <= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_is_safe() {
        let h = CostHistory::from_costs(vec![]);
        assert!(h.is_empty());
        assert_eq!(h.initial_cost(), 0.0);
        assert_eq!(h.final_cost(), 0.0);
        assert_eq!(h.relative_reduction(), 0.0);
        assert!(h.is_monotonically_decreasing());
        assert_eq!(h.iterations_to_reach(0.5), None);
    }

    #[test]
    fn summary_statistics() {
        let h = CostHistory::from_costs(vec![10.0, 5.0, 2.5, 2.0]);
        assert_eq!(h.iterations(), 4);
        assert_eq!(h.initial_cost(), 10.0);
        assert_eq!(h.final_cost(), 2.0);
        assert!((h.relative_reduction() - 0.8).abs() < 1e-12);
        assert!(h.is_monotonically_decreasing());
    }

    #[test]
    fn detects_non_monotone_series() {
        let h = CostHistory::from_costs(vec![10.0, 12.0, 8.0]);
        assert!(!h.is_monotonically_decreasing());
    }

    #[test]
    fn iterations_to_reach_threshold() {
        let h = CostHistory::from_costs(vec![100.0, 60.0, 30.0, 10.0]);
        assert_eq!(h.iterations_to_reach(0.5), Some(2));
        assert_eq!(h.iterations_to_reach(0.05), None);
        assert_eq!(h.iterations_to_reach(1.0), Some(0));
    }
}
