//! Crash-consistent on-disk checkpoints for the iteration engine.
//!
//! # Why disk checkpoints are consistent
//!
//! The engine's per-iteration consistency barrier already proves that every
//! rank holds a checkpoint for the *same* iteration before any rank starts
//! the next one (see the `engine` module docs). This module extends that
//! uniformity to disk with the same discipline the telemetry sink uses for
//! its JSONL log: persistence happens only at the barrier, so the newest
//! *committed* epoch on disk is always a globally consistent cut of the run.
//! The write protocol per epoch is:
//!
//! 1. every rank writes its own checkpoint file (`slot-<k>.ckpt`) into the
//!    epoch directory — write-to-temp, fsync, atomic rename, with a trailing
//!    FNV-1a checksum inside the file;
//! 2. a barrier proves every slot file is durable;
//! 3. rank 0 writes the epoch manifest the same way. The manifest's atomic
//!    rename **is** the commit point: an epoch without a readable, checksum-
//!    valid manifest does not exist as far as recovery is concerned.
//!
//! A kill at any instant therefore leaves either the previous committed
//! epoch (kill before the rename) or the new one (kill after) — never a
//! half-visible state. Torn or corrupted files are detected by checksum and
//! reported as typed [`DurabilityError`]s; [`CheckpointStore::recover`]
//! falls back to the newest older epoch that verifies.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/
//!   epoch-0000000000/        one directory per committed barrier epoch
//!     slot-0.ckpt            rank 0's tile checkpoint (+ costs + cursors)
//!     slot-1.ckpt            ...
//!     manifest.ckpt          commit record: counters, membership, job spec
//!   epoch-0000000001/
//!     ...
//! ```
//!
//! Epoch sequence numbers are monotonic across restarts *and* across
//! ingestion splices (a splice restarts the iteration counter, so iteration
//! numbers alone could not order epochs). After each commit every epoch
//! older than the previous one is pruned, keeping a fallback for torn-write
//! recovery without unbounded disk growth.

use ptycho_cluster::{CrashPhase, FaultCursor, MembershipView};
use ptycho_fft::{CArray3, Complex64};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic + version prefixes for the two file types.
const SLOT_MAGIC: &[u8; 4] = b"PTS1";
const MANIFEST_MAGIC: &[u8; 4] = b"PTM1";
const FORMAT_VERSION: u32 = 1;

/// How many committed epochs [`CheckpointStore::commit`] keeps on disk: the
/// new one plus one fallback for torn-write recovery.
const KEEP_EPOCHS: u64 = 2;

/// A durability failure, always typed — corruption is reported, never
/// panicked on and never silently resumed past.
#[derive(Clone, Debug, PartialEq)]
pub enum DurabilityError {
    /// An I/O operation on the store failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A file existed but failed verification: bad magic, wrong version, a
    /// checksum mismatch (torn write), or a malformed payload.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// No epoch in the store could be recovered. Carries every rejected
    /// epoch with the reason it was rejected, newest first.
    NoValidEpoch {
        /// `(epoch seq, reason)` for every epoch directory inspected.
        rejected: Vec<(u64, String)>,
    },
    /// The fault policy's process-kill injection struck during this commit
    /// (see `FaultPolicy::kill_process_at_barrier`): the simulated process
    /// is dead and the engine must surface `CommError::ProcessKilled`.
    SimulatedCrash {
        /// The epoch sequence number the kill struck at.
        seq: u64,
        /// Where relative to the manifest rename the kill struck.
        phase: CrashPhase,
    },
    /// Another live process (or another store instance in this process)
    /// already owns the store's lockfile. Two writers interleaving epoch
    /// commits under one root would corrupt the sequence discipline, so the
    /// second opener gets this typed error instead of a share. Stale locks
    /// left by killed processes are detected (the owner's pid is gone) and
    /// reclaimed silently.
    Locked {
        /// The lockfile path.
        path: PathBuf,
        /// The pid recorded in the lockfile.
        owner_pid: u32,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io { path, detail } => {
                write!(
                    f,
                    "checkpoint store I/O failure at {}: {detail}",
                    path.display()
                )
            }
            DurabilityError::Corrupt { path, detail } => {
                write!(f, "checkpoint file {} is corrupt: {detail}", path.display())
            }
            DurabilityError::NoValidEpoch { rejected } => {
                write!(f, "no recoverable checkpoint epoch (")?;
                for (i, (seq, reason)) in rejected.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "epoch {seq}: {reason}")?;
                }
                write!(f, ")")
            }
            DurabilityError::SimulatedCrash { seq, phase } => write!(
                f,
                "simulated process kill at checkpoint commit {seq} ({phase:?})"
            ),
            DurabilityError::Locked { path, owner_pid } => write!(
                f,
                "checkpoint store is locked by live process {owner_pid} ({})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

/// FNV-1a 64-bit hash — the store's file checksum and the volume digest the
/// CI smoke compares. Hand-rolled because the build environment is offline.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian append-only encoder for the checkpoint file formats.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern (bit-identity survives the
    /// round trip by construction).
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian decoder matching [`ByteWriter`]; every read is
/// bounds-checked and reports [`DurabilityError::Corrupt`] on underrun.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload; `path` labels decode errors.
    pub fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Self { buf, pos: 0, path }
    }

    fn corrupt(&self, detail: &str) -> DurabilityError {
        DurabilityError::Corrupt {
            path: self.path.to_path_buf(),
            detail: detail.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurabilityError> {
        if self.pos + n > self.buf.len() {
            return Err(self.corrupt("payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DurabilityError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DurabilityError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and checks it fits a `usize` sanity bound.
    pub fn get_len(&mut self, max: usize) -> Result<usize, DurabilityError> {
        let len = self.get_u64()?;
        if len > max as u64 {
            return Err(self.corrupt("implausible length prefix"));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DurabilityError> {
        let len = self.get_len(self.buf.len())?;
        self.take(len)
    }

    /// True when every payload byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A value that can round-trip through a checkpoint file bit-identically.
/// The engine requires it of every `SolverKernel::Checkpoint`.
pub trait CheckpointPayload: Sized {
    /// Appends the value's exact encoding.
    fn encode(&self, out: &mut ByteWriter);
    /// Decodes a value previously written by [`CheckpointPayload::encode`].
    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DurabilityError>;
}

impl CheckpointPayload for CArray3 {
    fn encode(&self, out: &mut ByteWriter) {
        let (depth, rows, cols) = self.shape();
        out.put_u64(depth as u64);
        out.put_u64(rows as u64);
        out.put_u64(cols as u64);
        for value in self.as_slice() {
            out.put_f64(value.re);
            out.put_f64(value.im);
        }
    }

    fn decode(reader: &mut ByteReader<'_>) -> Result<Self, DurabilityError> {
        const MAX_DIM: usize = 1 << 20;
        let depth = reader.get_len(MAX_DIM)?;
        let rows = reader.get_len(MAX_DIM)?;
        let cols = reader.get_len(MAX_DIM)?;
        let len = depth
            .checked_mul(rows)
            .and_then(|dr| dr.checked_mul(cols))
            .filter(|&n| n <= (1 << 30))
            .ok_or_else(|| DurabilityError::Corrupt {
                path: reader.path.to_path_buf(),
                detail: "implausible volume shape".to_string(),
            })?;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            let re = reader.get_f64()?;
            let im = reader.get_f64()?;
            values.push(Complex64 { re, im });
        }
        let mut volume = CArray3::zeros(depth, rows, cols);
        volume.as_mut_slice().copy_from_slice(&values);
        Ok(volume)
    }
}

/// One rank's durable checkpoint: everything the engine's in-memory
/// `CheckpointSlot` holds, plus the rank's fault-decision cursor, with the
/// solver state kept as opaque [`CheckpointPayload`] bytes so the store
/// stays kernel-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotRecord {
    /// First iteration the restored state has *not* yet run.
    pub iteration: usize,
    /// The rank's per-iteration cost history up to the checkpoint.
    pub costs: Vec<f64>,
    /// The rank's fault-decision counters, when a fault harness is
    /// installed.
    pub cursor: Option<FaultCursor>,
    /// The kernel checkpoint, encoded via [`CheckpointPayload`].
    pub state: Vec<u8>,
}

impl SlotRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.iteration as u64);
        w.put_u64(self.costs.len() as u64);
        for &cost in &self.costs {
            w.put_f64(cost);
        }
        match &self.cursor {
            None => w.put_u8(0),
            Some(cursor) => {
                w.put_u8(1);
                w.put_u64(cursor.total_sends);
                w.put_u64(cursor.streams.len() as u64);
                for &(to, tag, next) in &cursor.streams {
                    w.put_u64(to as u64);
                    w.put_u64(tag);
                    w.put_u64(next);
                }
            }
        }
        w.put_bytes(&self.state);
        w.into_bytes()
    }

    fn decode(payload: &[u8], path: &Path) -> Result<Self, DurabilityError> {
        let mut r = ByteReader::new(payload, path);
        let iteration = r.get_len(u32::MAX as usize)?;
        let cost_count = r.get_len(1 << 24)?;
        let mut costs = Vec::with_capacity(cost_count);
        for _ in 0..cost_count {
            costs.push(r.get_f64()?);
        }
        let cursor = match r.get_u8()? {
            0 => None,
            1 => {
                let total_sends = r.get_u64()?;
                let stream_count = r.get_len(1 << 24)?;
                let mut streams = Vec::with_capacity(stream_count);
                for _ in 0..stream_count {
                    let to = r.get_len(u32::MAX as usize)?;
                    let tag = r.get_u64()?;
                    let next = r.get_u64()?;
                    streams.push((to, tag, next));
                }
                Some(FaultCursor {
                    total_sends,
                    streams,
                })
            }
            _ => {
                return Err(DurabilityError::Corrupt {
                    path: path.to_path_buf(),
                    detail: "bad cursor presence flag".to_string(),
                })
            }
        };
        let state = r.get_bytes()?.to_vec();
        if !r.is_exhausted() {
            return Err(DurabilityError::Corrupt {
                path: path.to_path_buf(),
                detail: "trailing bytes after slot payload".to_string(),
            });
        }
        Ok(Self {
            iteration,
            costs,
            cursor,
            state,
        })
    }
}

/// The commit record of one epoch: the engine counters and membership state
/// a resumed process needs, plus the service's opaque job-spec encoding so
/// `JobEngine::resume(dir)` can rebuild the job from the directory alone.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochManifest {
    /// The epoch's monotonic sequence number.
    pub seq: u64,
    /// First iteration the epoch's checkpoints have *not* yet run.
    pub iteration: usize,
    /// The recovery attempt counter at the barrier.
    pub attempt_index: u8,
    /// Iteration restarts consumed so far.
    pub restarts: usize,
    /// Spare substitutions performed so far.
    pub substitutions: usize,
    /// The membership table frozen for the attempt that committed this
    /// epoch (substitutions included).
    pub membership: MembershipView,
    /// The service-level job spec, encoded by `ptycho_core::service` —
    /// opaque to the store.
    pub spec: Vec<u8>,
}

impl EpochManifest {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.seq);
        w.put_u64(self.iteration as u64);
        w.put_u8(self.attempt_index);
        w.put_u64(self.restarts as u64);
        w.put_u64(self.substitutions as u64);
        w.put_u64(self.membership.epoch());
        w.put_u64(self.membership.slots() as u64);
        for &node in self.membership.assignment() {
            w.put_u64(node as u64);
        }
        w.put_u64(self.membership.spares_remaining() as u64);
        for node in self.membership.spare_nodes() {
            w.put_u64(node as u64);
        }
        w.put_u64(self.membership.dead_nodes().len() as u64);
        for &node in self.membership.dead_nodes() {
            w.put_u64(node as u64);
        }
        w.put_bytes(&self.spec);
        w.into_bytes()
    }

    fn decode(payload: &[u8], path: &Path) -> Result<Self, DurabilityError> {
        let mut r = ByteReader::new(payload, path);
        let seq = r.get_u64()?;
        let iteration = r.get_len(u32::MAX as usize)?;
        let attempt_index = r.get_u8()?;
        let restarts = r.get_len(u32::MAX as usize)?;
        let substitutions = r.get_len(u32::MAX as usize)?;
        let epoch = r.get_u64()?;
        let slot_count = r.get_len(1 << 16)?;
        if slot_count == 0 {
            return Err(DurabilityError::Corrupt {
                path: path.to_path_buf(),
                detail: "manifest records zero slots".to_string(),
            });
        }
        let mut assignment = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            assignment.push(r.get_len(u32::MAX as usize)?);
        }
        let spare_count = r.get_len(1 << 16)?;
        let mut spares = Vec::with_capacity(spare_count);
        for _ in 0..spare_count {
            spares.push(r.get_len(u32::MAX as usize)?);
        }
        let dead_count = r.get_len(1 << 16)?;
        let mut dead = Vec::with_capacity(dead_count);
        for _ in 0..dead_count {
            dead.push(r.get_len(u32::MAX as usize)?);
        }
        let spec = r.get_bytes()?.to_vec();
        if !r.is_exhausted() {
            return Err(DurabilityError::Corrupt {
                path: path.to_path_buf(),
                detail: "trailing bytes after manifest payload".to_string(),
            });
        }
        Ok(Self {
            seq,
            iteration,
            attempt_index,
            restarts,
            substitutions,
            membership: MembershipView::from_parts(epoch, assignment, spares, dead),
            spec,
        })
    }
}

/// One fully verified epoch, ready to prefill the engine's checkpoint slots.
#[derive(Clone, Debug)]
pub struct RecoveredEpoch {
    /// The commit record.
    pub manifest: EpochManifest,
    /// One verified record per slot, indexed by slot.
    pub slots: Vec<SlotRecord>,
}

/// The result of scanning the store: the newest epoch that verified end to
/// end (if any), plus every newer or torn epoch that had to be rejected,
/// with the typed reason each one was rejected.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest fully verified epoch.
    pub epoch: Option<RecoveredEpoch>,
    /// `(seq, reason)` for every rejected epoch, newest first.
    pub rejected: Vec<(u64, String)>,
}

/// Name of the single-writer lockfile at the store root.
const LOCK_FILE: &str = "lock";

/// Whether `pid` names a live process. On Linux this is a procfs probe —
/// std-only, no new dependencies. Elsewhere liveness cannot be checked
/// cheaply, so every recorded pid is conservatively treated as alive
/// (a stale lock then needs manual removal rather than risking two
/// writers).
fn pid_is_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// The crash-consistent checkpoint store rooted at one directory.
///
/// Thread-safe for the engine's access pattern: each rank writes only its
/// own slot file, and only rank 0 commits, after a barrier ordered all slot
/// writes before it.
///
/// # Single-writer locking
///
/// Opening the store takes an exclusive lockfile at the root (`lock`,
/// holding the owner's pid). A second open — from another process *or*
/// another store instance in the same process — fails with
/// [`DurabilityError::Locked`] while the first is alive; the lock is
/// released when the store is dropped. A lock left behind by a killed
/// process is detected by probing the recorded pid and reclaimed, so
/// kill/resume cycles need no manual cleanup.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    next_seq: AtomicU64,
    /// The lockfile this instance owns and must remove on drop.
    lock_path: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`, taking the
    /// single-writer lock. The next epoch sequence number continues above
    /// everything already on disk — committed or torn — so sequence numbers
    /// never repeat across restarts.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| DurabilityError::Io {
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        let lock_path = Self::acquire_lock(&dir)?;
        let mut max_seq = None;
        for seq in list_epochs(&dir)? {
            max_seq = Some(max_seq.map_or(seq, |m: u64| m.max(seq)));
        }
        Ok(Self {
            next_seq: AtomicU64::new(max_seq.map_or(0, |m| m + 1)),
            dir,
            lock_path,
        })
    }

    /// Creates the lockfile exclusively, handling the stale-lock case: a
    /// recorded pid that no longer runs is a crash leftover and is
    /// reclaimed; a live one (including this process — a second store
    /// instance over the same root) is a real conflict.
    fn acquire_lock(dir: &Path) -> Result<PathBuf, DurabilityError> {
        let lock_path = dir.join(LOCK_FILE);
        let io_err = |e: std::io::Error| DurabilityError::Io {
            path: lock_path.clone(),
            detail: e.to_string(),
        };
        // Two tries: the second runs only after a stale lock was removed.
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut file) => {
                    use std::io::Write as _;
                    file.write_all(std::process::id().to_string().as_bytes())
                        .map_err(io_err)?;
                    file.sync_all().map_err(io_err)?;
                    return Ok(lock_path);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner_pid = std::fs::read_to_string(&lock_path)
                        .ok()
                        .and_then(|text| text.trim().parse::<u32>().ok());
                    match owner_pid {
                        Some(pid) if pid_is_alive(pid) => {
                            return Err(DurabilityError::Locked {
                                path: lock_path,
                                owner_pid: pid,
                            });
                        }
                        // Dead owner (or an unreadable lock, which only a
                        // crash mid-acquisition leaves behind): reclaim.
                        _ => match std::fs::remove_file(&lock_path) {
                            Ok(()) => {}
                            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                            Err(e) => return Err(io_err(e)),
                        },
                    }
                }
                Err(e) => return Err(io_err(e)),
            }
        }
        // Both tries hit AlreadyExists: another opener reclaimed-and-locked
        // between ours. That opener is alive by definition.
        let owner_pid = std::fs::read_to_string(&lock_path)
            .ok()
            .and_then(|text| text.trim().parse::<u32>().ok())
            .unwrap_or(0);
        Err(DurabilityError::Locked {
            path: lock_path,
            owner_pid,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The lockfile this instance holds (present while the store is open).
    pub fn lock_path(&self) -> &Path {
        &self.lock_path
    }

    /// The sequence number the next commit will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    fn epoch_dir(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("epoch-{seq:010}"))
    }

    /// Durably writes one rank's record into the (not yet committed) epoch
    /// `seq`. Returns the file size in bytes for telemetry. Safe to call
    /// concurrently from different ranks; the epoch directory is created
    /// idempotently.
    pub fn write_slot(
        &self,
        seq: u64,
        slot: usize,
        record: &SlotRecord,
    ) -> Result<u64, DurabilityError> {
        let dir = self.epoch_dir(seq);
        std::fs::create_dir_all(&dir).map_err(|e| DurabilityError::Io {
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        let path = dir.join(format!("slot-{slot}.ckpt"));
        let bytes = frame_file(SLOT_MAGIC, &record.encode());
        let len = bytes.len() as u64;
        write_atomic(&path, &bytes)?;
        Ok(len)
    }

    /// Commits epoch `manifest.seq`: durably writes the manifest, whose
    /// atomic rename makes the epoch visible, then advances the sequence
    /// counter and prunes epochs older than the previous one.
    ///
    /// `crash` injects the satellite fault: `Some(phase)` simulates a
    /// whole-process kill relative to the manifest rename (see
    /// [`CrashPhase`]) and returns [`DurabilityError::SimulatedCrash`]. The
    /// on-disk state is left exactly as the phase dictates.
    pub fn commit(
        &self,
        manifest: &EpochManifest,
        crash: Option<CrashPhase>,
    ) -> Result<(), DurabilityError> {
        let seq = manifest.seq;
        let dir = self.epoch_dir(seq);
        std::fs::create_dir_all(&dir).map_err(|e| DurabilityError::Io {
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        let path = dir.join("manifest.ckpt");
        let bytes = frame_file(MANIFEST_MAGIC, &manifest.encode());
        match crash {
            Some(CrashPhase::BeforeRename) => {
                // The slot files are durable but the manifest never appears:
                // leave only the temp file behind, exactly as a kill between
                // the write and the rename would.
                let tmp = path.with_extension("ckpt.tmp");
                write_plain(&tmp, &bytes)?;
                return Err(DurabilityError::SimulatedCrash {
                    seq,
                    phase: CrashPhase::BeforeRename,
                });
            }
            Some(CrashPhase::DuringRename) => {
                // A torn manifest at the final path — what a non-atomic
                // filesystem would leave. Recovery must reject it by
                // checksum and fall back.
                write_plain(&path, &bytes[..bytes.len() / 2])?;
                return Err(DurabilityError::SimulatedCrash {
                    seq,
                    phase: CrashPhase::DuringRename,
                });
            }
            Some(CrashPhase::AfterRename) | None => {
                write_atomic(&path, &bytes)?;
            }
        }
        self.next_seq.store(seq + 1, Ordering::SeqCst);
        self.prune(seq);
        if crash == Some(CrashPhase::AfterRename) {
            return Err(DurabilityError::SimulatedCrash {
                seq,
                phase: CrashPhase::AfterRename,
            });
        }
        Ok(())
    }

    /// Removes every epoch directory older than `committed_seq`'s
    /// predecessor. Best-effort: pruning failures never fail a commit.
    fn prune(&self, committed_seq: u64) {
        let Ok(epochs) = list_epochs(&self.dir) else {
            return;
        };
        for seq in epochs {
            if seq + KEEP_EPOCHS <= committed_seq {
                let _ = std::fs::remove_dir_all(self.epoch_dir(seq));
            }
        }
    }

    /// Scans the store for the newest epoch that verifies end to end:
    /// manifest readable and checksum-valid, every slot file present,
    /// checksum-valid, and agreeing with the manifest's iteration. Epochs
    /// that fail are reported in [`Recovery::rejected`] (typed, never a
    /// panic) and the scan falls back to the next older epoch.
    pub fn recover(&self) -> Result<Recovery, DurabilityError> {
        let mut epochs = list_epochs(&self.dir)?;
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        let mut recovery = Recovery::default();
        for seq in epochs {
            match self.load_epoch(seq) {
                Ok(epoch) => {
                    recovery.epoch = Some(epoch);
                    return Ok(recovery);
                }
                Err(error) => recovery.rejected.push((seq, error.to_string())),
            }
        }
        Ok(recovery)
    }

    fn load_epoch(&self, seq: u64) -> Result<RecoveredEpoch, DurabilityError> {
        let dir = self.epoch_dir(seq);
        let manifest_path = dir.join("manifest.ckpt");
        let payload = read_verified(&manifest_path, MANIFEST_MAGIC)?;
        let manifest = EpochManifest::decode(&payload, &manifest_path)?;
        if manifest.seq != seq {
            return Err(DurabilityError::Corrupt {
                path: manifest_path,
                detail: format!(
                    "manifest records seq {} but lives in epoch {seq}",
                    manifest.seq
                ),
            });
        }
        let mut slots = Vec::with_capacity(manifest.membership.slots());
        for slot in 0..manifest.membership.slots() {
            let path = dir.join(format!("slot-{slot}.ckpt"));
            let payload = read_verified(&path, SLOT_MAGIC)?;
            let record = SlotRecord::decode(&payload, &path)?;
            if record.iteration != manifest.iteration {
                return Err(DurabilityError::Corrupt {
                    path,
                    detail: format!(
                        "slot {slot} covers iteration {} but the manifest commits {}",
                        record.iteration, manifest.iteration
                    ),
                });
            }
            slots.push(record);
        }
        Ok(RecoveredEpoch { manifest, slots })
    }
}

impl Drop for CheckpointStore {
    /// Releases the single-writer lock. Removal failures are swallowed: a
    /// lock that survives (say, the directory was already deleted) is at
    /// worst a stale lock, which the next opener detects and reclaims.
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// Frames a payload as a complete checkpoint file: magic, version, payload,
/// trailing FNV-1a checksum over everything before it.
fn frame_file(magic: &[u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(payload);
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Verifies a framed file and returns its payload.
fn read_verified(path: &Path, magic: &[u8; 4]) -> Result<Vec<u8>, DurabilityError> {
    let bytes = std::fs::read(path).map_err(|e| DurabilityError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    if bytes.len() < 16 {
        return Err(DurabilityError::Corrupt {
            path: path.to_path_buf(),
            detail: "file shorter than its framing".to_string(),
        });
    }
    if &bytes[0..4] != magic {
        return Err(DurabilityError::Corrupt {
            path: path.to_path_buf(),
            detail: "bad magic".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(DurabilityError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("unsupported format version {version}"),
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[..body_end]);
    if stored != computed {
        return Err(DurabilityError::Corrupt {
            path: path.to_path_buf(),
            detail: "checksum mismatch (torn or corrupted write)".to_string(),
        });
    }
    Ok(bytes[8..body_end].to_vec())
}

/// Crash-consistent file write: temp file in the same directory, fsync,
/// atomic rename, then a best-effort directory fsync so the rename itself
/// is durable.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let io_err = |e: std::io::Error| DurabilityError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    };
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(bytes).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
    }
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// A direct (non-atomic) write, used only to simulate torn crash states.
fn write_plain(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    std::fs::write(path, bytes).map_err(|e| DurabilityError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })
}

/// Epoch sequence numbers present under `dir` (committed or not), unsorted.
fn list_epochs(dir: &Path) -> Result<Vec<u64>, DurabilityError> {
    let entries = std::fs::read_dir(dir).map_err(|e| DurabilityError::Io {
        path: dir.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mut seqs = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name.strip_prefix("epoch-") {
            if let Ok(seq) = seq.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ptycho-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_volume(seed: u64) -> CArray3 {
        CArray3::from_fn(2, 3, 4, |d, r, c| Complex64 {
            re: (seed as f64) + (d * 100 + r * 10 + c) as f64 * 0.5,
            im: -((d + r + c) as f64) / 3.0,
        })
    }

    fn sample_record(seed: u64, iteration: usize) -> SlotRecord {
        let mut state = ByteWriter::new();
        sample_volume(seed).encode(&mut state);
        SlotRecord {
            iteration,
            costs: vec![3.5, 2.25, 1.0 / 3.0],
            cursor: Some(FaultCursor {
                total_sends: 17,
                streams: vec![(0, 5, 3), (1, 9, 8)],
            }),
            state: state.into_bytes(),
        }
    }

    fn sample_manifest(seq: u64, iteration: usize, slots: usize, spec: &[u8]) -> EpochManifest {
        EpochManifest {
            seq,
            iteration,
            attempt_index: 2,
            restarts: 1,
            substitutions: 0,
            membership: MembershipView::new(slots, 1),
            spec: spec.to_vec(),
        }
    }

    fn commit_epoch(store: &CheckpointStore, seq: u64, iteration: usize, slots: usize) {
        for slot in 0..slots {
            store
                .write_slot(seq, slot, &sample_record(slot as u64, iteration))
                .expect("slot write");
        }
        store
            .commit(&sample_manifest(seq, iteration, slots, b"spec"), None)
            .expect("commit");
    }

    #[test]
    fn slot_and_manifest_round_trip_bit_identically() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.next_seq(), 0);
        commit_epoch(&store, 0, 4, 2);

        let recovery = store.recover().unwrap();
        assert!(recovery.rejected.is_empty());
        let epoch = recovery.epoch.expect("epoch 0 recoverable");
        assert_eq!(epoch.manifest.seq, 0);
        assert_eq!(epoch.manifest.iteration, 4);
        assert_eq!(epoch.manifest.attempt_index, 2);
        assert_eq!(epoch.manifest.restarts, 1);
        assert_eq!(epoch.manifest.spec, b"spec");
        assert_eq!(epoch.manifest.membership, MembershipView::new(2, 1));
        assert_eq!(epoch.slots.len(), 2);
        for (slot, record) in epoch.slots.iter().enumerate() {
            assert_eq!(record, &sample_record(slot as u64, 4));
            let mut reader = ByteReader::new(&record.state, Path::new("state"));
            let volume = CArray3::decode(&mut reader).expect("volume decodes");
            assert_eq!(volume.as_slice(), sample_volume(slot as u64).as_slice());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_continues_the_sequence() {
        let dir = temp_dir("reopen");
        let store = CheckpointStore::open(&dir).unwrap();
        commit_epoch(&store, 0, 1, 1);
        commit_epoch(&store, 1, 2, 1);
        drop(store);
        let reopened = CheckpointStore::open(&dir).unwrap();
        assert_eq!(reopened.next_seq(), 2);
        let epoch = reopened.recover().unwrap().epoch.expect("newest epoch");
        assert_eq!(epoch.manifest.seq, 1);
        assert_eq!(epoch.manifest.iteration, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_falls_back_with_typed_error() {
        let dir = temp_dir("torn-manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        commit_epoch(&store, 0, 1, 2);
        commit_epoch(&store, 1, 2, 2);
        // Tear the newest manifest mid-byte.
        let manifest = dir.join("epoch-0000000001").join("manifest.ckpt");
        let bytes = std::fs::read(&manifest).unwrap();
        std::fs::write(&manifest, &bytes[..bytes.len() - 3]).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.rejected.len(), 1);
        assert_eq!(recovery.rejected[0].0, 1);
        assert!(
            recovery.rejected[0].1.contains("checksum mismatch"),
            "got: {}",
            recovery.rejected[0].1
        );
        let epoch = recovery.epoch.expect("fallback to epoch 0");
        assert_eq!(epoch.manifest.seq, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_slot_byte_falls_back_never_resumes_silently() {
        let dir = temp_dir("corrupt-slot");
        let store = CheckpointStore::open(&dir).unwrap();
        commit_epoch(&store, 0, 1, 2);
        commit_epoch(&store, 1, 2, 2);
        // Flip one byte in the middle of a slot file.
        let slot = dir.join("epoch-0000000001").join("slot-1.ckpt");
        let mut bytes = std::fs::read(&slot).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&slot, &bytes).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.rejected.len(), 1);
        assert!(recovery.rejected[0].1.contains("checksum mismatch"));
        assert_eq!(recovery.epoch.expect("fallback").manifest.seq, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_means_the_epoch_never_happened() {
        let dir = temp_dir("uncommitted");
        let store = CheckpointStore::open(&dir).unwrap();
        commit_epoch(&store, 0, 1, 1);
        // Epoch 1: slot written, never committed (kill before the rename).
        store.write_slot(1, 0, &sample_record(0, 2)).unwrap();

        let recovery = store.recover().unwrap();
        assert_eq!(recovery.rejected.len(), 1);
        assert_eq!(recovery.rejected[0].0, 1);
        assert_eq!(recovery.epoch.expect("epoch 0 stands").manifest.seq, 0);
        // The torn epoch still bumps the next sequence number past itself.
        drop(store);
        assert_eq!(CheckpointStore::open(&dir).unwrap().next_seq(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_recovers_to_nothing_without_error() {
        let dir = temp_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        let recovery = store.recover().unwrap();
        assert!(recovery.epoch.is_none());
        assert!(recovery.rejected.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_prunes_all_but_the_last_two_epochs() {
        let dir = temp_dir("prune");
        let store = CheckpointStore::open(&dir).unwrap();
        for seq in 0..4 {
            commit_epoch(&store, seq, seq as usize + 1, 1);
        }
        let mut remaining = list_epochs(&dir).unwrap();
        remaining.sort_unstable();
        assert_eq!(remaining, vec![2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_phases_leave_the_documented_disk_states() {
        for (phase, expect_seq) in [
            (CrashPhase::BeforeRename, 0),
            (CrashPhase::DuringRename, 0),
            (CrashPhase::AfterRename, 1),
        ] {
            let dir = temp_dir(&format!("crash-{phase:?}"));
            let store = CheckpointStore::open(&dir).unwrap();
            commit_epoch(&store, 0, 1, 1);
            store.write_slot(1, 0, &sample_record(0, 2)).unwrap();
            let err = store
                .commit(&sample_manifest(1, 2, 1, b"spec"), Some(phase))
                .expect_err("simulated crash must surface");
            assert_eq!(err, DurabilityError::SimulatedCrash { seq: 1, phase });

            let recovery = store.recover().unwrap();
            let epoch = recovery.epoch.expect("some epoch always survives");
            assert_eq!(epoch.manifest.seq, expect_seq, "phase {phase:?}");
            match phase {
                // Both pre-commit phases reject epoch 1 with a typed error.
                CrashPhase::BeforeRename | CrashPhase::DuringRename => {
                    assert_eq!(recovery.rejected.len(), 1);
                    assert_eq!(recovery.rejected[0].0, 1);
                }
                CrashPhase::AfterRename => assert!(recovery.rejected.is_empty()),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn fnv_checksum_is_stable() {
        // The FNV-1a 64 reference value for "hello".
        assert_eq!(fnv1a64(b"hello"), 0xa430_d846_80aa_bd0b);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
