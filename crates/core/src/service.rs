//! Reconstruction as a service: the multi-tenant job engine.
//!
//! A beamline does not run one reconstruction — it queues them continuously
//! as scans complete. This module turns the single-run solvers into exactly
//! that serving shape: a [`JobEngine`] owns a fleet of worker nodes
//! ([`FleetView`]) and an admission queue ([`JobQueue`]), and each submitted
//! [`JobSpec`] moves through the lifecycle
//!
//! ```text
//! submit → queued → leased (admission) → running → (heal)* → complete
//!                                          │
//!                                          └─ cancel / fail
//! ```
//!
//! * **Admission** is priority-then-FIFO and strictly head-of-line: the
//!   admission log is always the priority-sorted submission order, which
//!   makes scheduler behaviour deterministic and testable.
//! * **Isolation**: each job runs on its own backend instance with
//!   *job-local* rank numbering; the engine maps local node ids to the
//!   fleet nodes it leased. No wire tag, seed, or fault decision of one job
//!   can observe another, so every job's result is **bit-identical to the
//!   same job running alone** — the scheduler-soak suite pins this.
//! * **Healing**: when a rank dies mid-job, the engine's spare-substitution
//!   machinery asks the service for a replacement through the
//!   [`JobContext::spare_grant`] hook; the service retires the dead fleet
//!   node and leases one from the shared free pool. One standby pool
//!   amortises over every tenant instead of being reserved per job. When
//!   the pool is transiently empty (every node leased out), the healing job
//!   blocks until a neighbour releases nodes; it only fails for good when
//!   no other tenant could ever free one.
//! * **Observability**: per-iteration [`JobProgress`] events (iteration,
//!   cost, per-rank simulated clock and peak memory) stream into a per-job
//!   buffer a client can tail; the final [`JobReport`] carries the full
//!   [`ReconstructionResult`] and [`RecoveryReport`] plus queue/run timing.
//!
//! [`FleetView`]: ptycho_cluster::FleetView
//! [`JobQueue`]: ptycho_cluster::JobQueue
//! [`RecoveryReport`]: crate::engine::RecoveryReport

use crate::config::{PassFrequency, SolverConfig};
use crate::durability::{ByteReader, ByteWriter, CheckpointStore, DurabilityError, RecoveredEpoch};
use crate::engine::{
    DurabilityHook, IterationProgress, JobContext, ReconstructionResult, RecoveryPolicy,
};
use crate::gradient_decomp::solver::GradientDecompositionSolver;
use crate::halo_exchange::solver::HaloVoxelExchangeSolver;
use ptycho_array::Rect;
use ptycho_cluster::{
    Cluster, ClusterTopology, CommBackend, CommError, CrashPhase, FaultInjectionBackend,
    FaultPolicy, FleetView, JobId, JobQueue, LockstepBackend, NodeId, RankFailure,
};
use ptycho_sim::dataset::{Dataset, ScanFrame, SyntheticConfig};
use ptycho_telemetry::{Histogram, MetricsRegistry, Telemetry, TelemetryEvent};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which reconstruction method a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverMethod {
    /// The paper's Gradient Decomposition solver.
    GradientDecomposition,
    /// The Halo Voxel Exchange baseline.
    HaloVoxelExchange,
}

/// Which communication backend a job's ranks run on. Every job gets its own
/// backend instance, so tenants never share communication state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceBackend {
    /// The deterministic lockstep scheduler (default; reproducible bit for
    /// bit and deadlock-proving).
    Lockstep,
    /// One OS thread per rank, with the receive timeout that recovery needs
    /// to observe lost messages.
    Threaded {
        /// How long a receive waits before reporting the message lost.
        recv_timeout: Duration,
    },
}

/// One reconstruction request: everything the engine needs to run the job,
/// plus its admission priority.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The measured (here: synthesized) acquisition to reconstruct.
    pub dataset: Dataset,
    /// Solver parameters.
    pub config: SolverConfig,
    /// Tile grid dimensions; the job needs `grid.0 * grid.1` fleet nodes.
    pub grid: (usize, usize),
    /// Which solver runs the job.
    pub method: SolverMethod,
    /// Admission priority: higher is served earlier; ties break FIFO.
    pub priority: i32,
    /// The engine recovery policy. Under [`RecoveryPolicy::SubstituteSpare`]
    /// the policy's own `spares` count is ignored — replacements come from
    /// the service's shared fleet pool instead.
    pub recovery: RecoveryPolicy,
    /// Optional fault injection wrapped around the job's backend
    /// (job-local: seeds and rank ids are the job's own).
    pub fault_policy: Option<FaultPolicy>,
    /// The communication backend the job runs on.
    pub backend: ServiceBackend,
    /// Optional flight recorder: comm, iteration, recovery, and job
    /// lifecycle events stream into it (and its durable sink, if any).
    pub telemetry: Option<Arc<Telemetry>>,
    /// Per-rank flight-recorder ring capacity override, applied to the
    /// job's recorder before any of its streams exist. Undersized rings
    /// lose records (surfaced per rank in [`JobEngine::metrics_snapshot`]
    /// and as sequence gaps by `trace_dump --validate`).
    pub telemetry_capacity: Option<usize>,
    /// When set, every consistency barrier durably checkpoints the job into
    /// a [`CheckpointStore`] rooted at this directory, and
    /// [`JobEngine::resume`] can rebuild the job from the directory alone
    /// after a process kill.
    pub checkpoint_dir: Option<PathBuf>,
    /// A recovered on-disk epoch to resume from (set by
    /// [`JobEngine::resume`]; the engine prefills rank state, membership,
    /// and recovery counters from it).
    pub resume_from: Option<Arc<RecoveredEpoch>>,
}

impl JobSpec {
    /// A Gradient Decomposition job on the lockstep backend at priority 0,
    /// with retransmit + checkpoint-restart + shared-pool substitution
    /// enabled (the service default).
    pub fn new(dataset: Dataset, config: SolverConfig, grid: (usize, usize)) -> Self {
        Self {
            dataset,
            config,
            grid,
            method: SolverMethod::GradientDecomposition,
            priority: 0,
            recovery: RecoveryPolicy::SubstituteSpare {
                // Ignored in service runs: the shared fleet pool (via
                // `JobContext::spare_grant`) bounds substitutions instead.
                spares: 0,
                max_iteration_restarts: 2,
            },
            fault_policy: None,
            backend: ServiceBackend::Lockstep,
            telemetry: None,
            telemetry_capacity: None,
            checkpoint_dir: None,
            resume_from: None,
        }
    }

    /// Sets the solver method.
    pub fn with_method(mut self, method: SolverMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the admission priority (higher runs earlier).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Wraps the job's backend in fault injection.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Sets the communication backend.
    pub fn with_backend(mut self, backend: ServiceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a flight recorder to the job.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sizes the job's per-rank flight-recorder rings (records per rank).
    /// Applied at submission, before the recorder's first stream exists, so
    /// every rank of the job gets the requested capacity. Undersized rings
    /// overflow and lose records rather than blocking the hot path; losses
    /// surface per rank in [`JobEngine::metrics_snapshot`] and as sequence
    /// gaps in the durable trace.
    pub fn with_telemetry_capacity(mut self, records: usize) -> Self {
        self.telemetry_capacity = Some(records);
        self
    }

    /// Durably checkpoints the job into a [`CheckpointStore`] rooted at
    /// `dir`, making it resumable with [`JobEngine::resume`] after a
    /// process kill. Requires a recovering [`RecoveryPolicy`] (the default)
    /// — the consistency barrier persistence rides does not exist under
    /// [`RecoveryPolicy::FailFast`].
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// How many fleet nodes the job needs.
    pub fn slots(&self) -> usize {
        self.grid.0 * self.grid.1
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the admission queue.
    Queued,
    /// Leased fleet nodes and running (possibly healing).
    Running,
    /// Finished successfully; the report carries the result.
    Completed,
    /// Finished with an unrecovered failure.
    Failed,
    /// Cancelled — before admission, or cooperatively while running.
    Cancelled,
}

impl JobState {
    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Why a job did not complete.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The spec could never run (bad grid, more slots than the fleet has,
    /// an invalid baseline decomposition) and was refused at submission.
    Rejected {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// The job was cancelled (before admission or cooperatively mid-run).
    Cancelled,
    /// The run failed and recovery could not heal it.
    Failed(RankFailure),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Rejected { reason } => write!(f, "job rejected: {reason}"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Failed(failure) => write!(f, "job failed: {failure}"),
        }
    }
}

impl std::error::Error for JobError {}

/// One per-iteration progress event of one job (the engine's
/// [`IterationProgress`] stamped with the job id).
#[derive(Clone, Copy, Debug)]
pub struct JobProgress {
    /// The reporting job.
    pub job: JobId,
    /// The engine-level event (rank, iteration, attempt, cost, clock,
    /// memory).
    pub event: IterationProgress,
}

/// The final record of one job: terminal state, result or error, and
/// queue/run wall-clock timing (host time, not the simulated rank clocks —
/// those are inside the result).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job this report describes.
    pub id: JobId,
    /// The terminal state ([`JobState::is_terminal`] always holds).
    pub state: JobState,
    /// The reconstruction (with its `RecoveryReport`), when completed.
    pub result: Option<ReconstructionResult>,
    /// Why the job did not complete, otherwise.
    pub error: Option<JobError>,
    /// Seconds spent waiting in the admission queue.
    pub queue_seconds: f64,
    /// Seconds spent running (0 if never admitted).
    pub run_seconds: f64,
    /// How many progress events the job emitted.
    pub progress_events: usize,
}

/// Everything the service tracks about one job.
struct JobRecord {
    state: JobState,
    cancel: Arc<AtomicBool>,
    /// Raised by [`JobHandle::ingest`]: asks the running job to stop at the
    /// next iteration boundary so newly arrived scan positions can be
    /// spliced in. Lowered by the runner once the splice happens.
    preempt: Arc<AtomicBool>,
    /// Scan frames queued by [`JobHandle::ingest`], consumed by the runner
    /// at the next splice point.
    ingest: Arc<Mutex<Vec<ScanFrame>>>,
    /// Job-local node id → fleet node. Indices `0..slots` are the initial
    /// lease; each drawn spare is appended in promotion order, mirroring the
    /// engine's `slots + k` numbering for the k-th promotion.
    node_map: Vec<NodeId>,
    progress: Vec<JobProgress>,
    result: Option<ReconstructionResult>,
    error: Option<JobError>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

impl JobRecord {
    fn report(&self, id: JobId) -> JobReport {
        let end = self.finished.unwrap_or(self.submitted);
        let queue_end = self.started.unwrap_or(end);
        JobReport {
            id,
            state: self.state,
            result: self.result.clone(),
            error: self.error.clone(),
            queue_seconds: queue_end.duration_since(self.submitted).as_secs_f64(),
            run_seconds: self
                .started
                .map_or(0.0, |s| end.duration_since(s).as_secs_f64()),
            progress_events: self.progress.len(),
        }
    }
}

/// Aggregate service counters feeding [`JobEngine::metrics_snapshot`].
/// Recovery totals accumulate at job completion from each job's
/// [`RecoveryReport`](crate::engine::RecoveryReport) — the counters that
/// previously vanished silently when a healed job reported success.
#[derive(Debug, Default)]
struct EngineMetrics {
    submitted: u64,
    admitted: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    rejected: u64,
    /// Queue depth sampled at every submission and admission.
    queue_depth: Histogram,
    iteration_restarts: u64,
    substitutions: u64,
    heartbeats_sent: u64,
    heartbeats_observed: u64,
    retransmits: u64,
    recoveries: u64,
    acks_sent: u64,
    duplicates_reacked: u64,
    /// Flight-recorder records lost to ring overflow, folded in from each
    /// job's recorder at completion. Per-rank so an undersized ring names
    /// the exact stream whose durable trace has sequence gaps.
    telemetry_lost: u64,
    telemetry_lost_by_rank: BTreeMap<u64, u64>,
}

struct ServiceState {
    fleet: FleetView,
    queue: JobQueue,
    /// Specs of queued jobs, consumed at admission.
    pending: BTreeMap<JobId, JobSpec>,
    jobs: BTreeMap<JobId, JobRecord>,
    /// Jobs in admission order — the scheduler's fairness witness.
    admissions: Vec<JobId>,
    next_id: JobId,
    /// Jobs currently running.
    active: usize,
    /// Running jobs currently blocked waiting for a shared-pool spare.
    waiting_for_spare: usize,
    /// While true, nothing is admitted (burst-submission mode).
    paused: bool,
    /// Aggregate counters across every job the engine has seen.
    metrics: EngineMetrics,
}

struct Shared {
    state: Mutex<ServiceState>,
    changed: Condvar,
}

/// The multi-tenant job engine: a shared node fleet serving an admission
/// queue of reconstruction jobs.
///
/// ```
/// use ptycho_core::service::{JobEngine, JobSpec};
/// use ptycho_core::SolverConfig;
/// use ptycho_sim::dataset::{Dataset, SyntheticConfig};
///
/// let engine = JobEngine::new(8);
/// let dataset = Dataset::synthesize(SyntheticConfig::tiny());
/// let config = SolverConfig { iterations: 2, ..SolverConfig::default() };
/// let job = engine
///     .submit(JobSpec::new(dataset, config, (2, 2)).with_priority(5))
///     .expect("fits the fleet");
/// let report = job.wait();
/// assert!(report.result.is_some());
/// ```
pub struct JobEngine {
    shared: Arc<Shared>,
}

impl JobEngine {
    /// An engine owning a fleet of `fleet_nodes` worker nodes, admitting
    /// jobs as soon as they fit.
    pub fn new(fleet_nodes: usize) -> Self {
        Self::build(fleet_nodes, false)
    }

    /// An engine that holds every submission in the queue until
    /// [`JobEngine::start_admitting`] — for deterministic burst submission
    /// (load generators, scheduler tests).
    pub fn paused(fleet_nodes: usize) -> Self {
        Self::build(fleet_nodes, true)
    }

    fn build(fleet_nodes: usize, paused: bool) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(ServiceState {
                    fleet: FleetView::new(fleet_nodes),
                    queue: JobQueue::new(),
                    pending: BTreeMap::new(),
                    jobs: BTreeMap::new(),
                    admissions: Vec::new(),
                    next_id: 0,
                    active: 0,
                    waiting_for_spare: 0,
                    paused,
                    metrics: EngineMetrics::default(),
                }),
                changed: Condvar::new(),
            }),
        }
    }

    /// Starts admitting queued jobs (no-op unless built with
    /// [`JobEngine::paused`]).
    pub fn start_admitting(&self) {
        let mut state = self.lock();
        state.paused = false;
        try_admit(&mut state, &self.shared);
        self.shared.changed.notify_all();
    }

    /// Resumes a killed job from its checkpoint directory.
    ///
    /// Scans the [`CheckpointStore`] rooted at `dir` for the newest epoch
    /// that verifies end to end (torn or corrupted epochs are skipped with
    /// a typed reason, never trusted), decodes the job spec embedded in its
    /// manifest, rebuilds the dataset from the synthesis recipe and the
    /// checkpointed scan length, and submits the job with every rank
    /// prefilled from the on-disk state. The resumed run continues at the
    /// checkpointed iteration and finishes **bit-identical** to the same
    /// job never having been killed.
    ///
    /// The resumed job is a fresh submission: new id, no telemetry recorder
    /// (use [`JobEngine::resume_with_telemetry`] to attach one), and the
    /// same checkpoint directory — its epochs continue the store's sequence
    /// numbering.
    pub fn resume(&self, dir: impl Into<PathBuf>) -> Result<JobHandle, JobError> {
        self.resume_with_telemetry(dir, None)
    }

    /// [`JobEngine::resume`] with a flight recorder attached to the resumed
    /// job. The recorder is not part of the on-disk manifest (a writer
    /// cannot be serialised), so resumption is the one lifecycle step where
    /// it must be re-attached explicitly — `load_gen --resume --telemetry`
    /// uses this so a resumed run's trace can be diffed against its
    /// uninterrupted twin.
    pub fn resume_with_telemetry(
        &self,
        dir: impl Into<PathBuf>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<JobHandle, JobError> {
        let dir = dir.into();
        let reject = |error: DurabilityError| JobError::Rejected {
            reason: format!("checkpoint recovery failed: {error}"),
        };
        let store = CheckpointStore::open(&dir).map_err(reject)?;
        let recovery = store.recover().map_err(reject)?;
        // Release the store (and its lock) before submission: the runner
        // thread re-opens the directory for the resumed run.
        drop(store);
        let Some(epoch) = recovery.epoch else {
            let rejected: Vec<String> = recovery
                .rejected
                .iter()
                .map(|(seq, reason)| format!("epoch {seq}: {reason}"))
                .collect();
            return Err(JobError::Rejected {
                reason: format!(
                    "no valid checkpoint epoch under {} ({})",
                    dir.display(),
                    if rejected.is_empty() {
                        "the store is empty".to_string()
                    } else {
                        rejected.join("; ")
                    }
                ),
            });
        };
        let mut spec = decode_spec(&epoch.manifest.spec, &dir).map_err(reject)?;
        spec.checkpoint_dir = Some(dir);
        spec.resume_from = Some(Arc::new(epoch));
        spec.telemetry = telemetry;
        self.submit(spec)
    }

    /// Submits a job. Specs that can never run — an empty grid, more slots
    /// than the fleet owns, an invalid baseline decomposition — are refused
    /// here rather than left to rot in the queue.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, JobError> {
        let slots = spec.slots();
        if slots == 0 {
            self.lock().metrics.rejected += 1;
            return Err(JobError::Rejected {
                reason: "the tile grid is empty (zero slots)".into(),
            });
        }
        if spec.checkpoint_dir.is_some() && spec.recovery == RecoveryPolicy::FailFast {
            // Persistence rides the consistency barrier, which the fail-fast
            // path never reaches; refuse the combination instead of letting
            // the engine assert on it mid-run.
            self.lock().metrics.rejected += 1;
            return Err(JobError::Rejected {
                reason: "durable checkpointing requires a recovering policy \
                         (the fail-fast path has no consistency barrier to persist at)"
                    .into(),
            });
        }
        if spec.method == SolverMethod::HaloVoxelExchange {
            // The baseline's decomposition constraint is knowable now;
            // refuse a spec that would only fail after admission.
            if let Err(error) = HaloVoxelExchangeSolver::new(&spec.dataset, spec.config, spec.grid)
            {
                self.lock().metrics.rejected += 1;
                return Err(JobError::Rejected {
                    reason: error.to_string(),
                });
            }
        }
        let mut state = self.lock();
        // Feasibility is judged against the *live* fleet (total minus
        // retired nodes): a dead node never returns to the free pool, so a
        // job bigger than the live fleet could never be admitted and —
        // under strict head-of-line scheduling — would pin the whole queue
        // forever.
        let live = state.fleet.total_nodes() - state.fleet.dead_count();
        if slots > live {
            state.metrics.rejected += 1;
            return Err(JobError::Rejected {
                reason: format!(
                    "job needs {slots} node(s) but the fleet only has {live} live node(s)"
                ),
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobRecord {
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                preempt: Arc::new(AtomicBool::new(false)),
                ingest: Arc::new(Mutex::new(Vec::new())),
                node_map: Vec::new(),
                progress: Vec::new(),
                result: None,
                error: None,
                submitted: Instant::now(),
                started: None,
                finished: None,
            },
        );
        state.queue.push(id, spec.priority, slots);
        state.metrics.submitted += 1;
        let depth = state.queue.len() as u64;
        state.metrics.queue_depth.observe(depth);
        if let Some(telemetry) = &spec.telemetry {
            if let Some(capacity) = spec.telemetry_capacity {
                // Must land before the recorder's first stream: the sink(0)
                // call below creates stream 0, freezing its ring size.
                telemetry.set_ring_capacity(capacity);
            }
            // Lifecycle events live on stream 0 of the job's recorder; they
            // all fall outside the job's run window, so they never race the
            // ranks' own recording.
            telemetry.sink(0).record(TelemetryEvent::JobSubmitted {
                job: id,
                priority: spec.priority as i64,
                slots: slots as u64,
            });
        }
        state.pending.insert(id, spec);
        try_admit(&mut state, &self.shared);
        self.shared.changed.notify_all();
        Ok(JobHandle {
            id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Blocks until no job is running or waiting.
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while state.active > 0 || !state.queue.is_empty() {
            state = self
                .shared
                .changed
                .wait(state)
                .expect("service state poisoned");
        }
    }

    /// The jobs admitted so far, in admission order. With strict
    /// head-of-line scheduling this is always the priority-sorted
    /// submission order — the fairness witness the tests pin.
    pub fn admission_log(&self) -> Vec<JobId> {
        self.lock().admissions.clone()
    }

    /// The fleet epoch (bumped once per lease, release, or retirement).
    pub fn fleet_epoch(&self) -> u64 {
        self.lock().fleet.epoch()
    }

    /// Nodes currently free (the shared spare pool).
    pub fn free_nodes(&self) -> usize {
        self.lock().fleet.free_count()
    }

    /// Nodes retired by failure-detector verdicts.
    pub fn dead_nodes(&self) -> usize {
        self.lock().fleet.dead_count()
    }

    /// Total nodes the fleet was created with.
    pub fn total_nodes(&self) -> usize {
        self.lock().fleet.total_nodes()
    }

    /// The conservation invariant: free + leased + dead covers the whole
    /// fleet.
    pub fn fleet_is_conserved(&self) -> bool {
        self.lock().fleet.is_conserved()
    }

    /// A point-in-time metrics registry: job lifecycle counters, fleet
    /// gauges, queue-depth histogram, and the recovery work (restarts,
    /// substitutions, heartbeats, reliable-layer counters) accumulated from
    /// every finished job's [`RecoveryReport`](crate::engine::RecoveryReport).
    /// Render with [`MetricsRegistry::prometheus_text`] or
    /// [`MetricsRegistry::json_snapshot`].
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let state = self.lock();
        let m = &state.metrics;
        let mut registry = MetricsRegistry::new();
        registry.inc_counter("jobs_submitted_total", m.submitted);
        registry.inc_counter("jobs_admitted_total", m.admitted);
        registry.inc_counter("jobs_completed_total", m.completed);
        registry.inc_counter("jobs_cancelled_total", m.cancelled);
        registry.inc_counter("jobs_failed_total", m.failed);
        registry.inc_counter("jobs_rejected_total", m.rejected);
        registry.inc_counter("engine_iteration_restarts_total", m.iteration_restarts);
        registry.inc_counter("engine_substitutions_total", m.substitutions);
        registry.inc_counter("engine_heartbeats_sent_total", m.heartbeats_sent);
        registry.inc_counter("engine_heartbeats_observed_total", m.heartbeats_observed);
        registry.inc_counter("comm_retransmits_total", m.retransmits);
        registry.inc_counter("comm_recoveries_total", m.recoveries);
        registry.inc_counter("comm_acks_sent_total", m.acks_sent);
        registry.inc_counter("comm_duplicates_reacked_total", m.duplicates_reacked);
        registry.inc_counter("telemetry_lost_records_total", m.telemetry_lost);
        for (&rank, &lost) in &m.telemetry_lost_by_rank {
            registry.inc_counter(&format!("telemetry_lost_records_rank_{rank}"), lost);
        }
        registry.set_histogram("queue_depth", m.queue_depth.clone());
        registry.set_gauge("fleet_epoch", state.fleet.epoch() as f64);
        registry.set_gauge("fleet_nodes_total", state.fleet.total_nodes() as f64);
        registry.set_gauge("fleet_nodes_free", state.fleet.free_count() as f64);
        registry.set_gauge("fleet_nodes_leased", state.fleet.leased_count() as f64);
        registry.set_gauge("fleet_nodes_dead", state.fleet.dead_count() as f64);
        registry
    }

    /// Live health introspection: per-job phase shares and straggler flags
    /// for every running job, plus queue pressure — computed from the
    /// progress events already streaming into the service, so it can be
    /// polled while jobs run without touching any rank's hot path.
    ///
    /// `straggler_z` is the z-score threshold on per-rank wait shares
    /// (see [`ptycho_telemetry::analysis::straggler_report`] for the
    /// post-hoc twin of this check; both use the same scoring helper).
    pub fn health_snapshot(&self, straggler_z: f64) -> HealthSnapshot {
        let state = self.lock();
        let mut jobs = Vec::new();
        for (&id, record) in &state.jobs {
            if record.state != JobState::Running {
                continue;
            }
            // Latest progress event per rank: the rank's cumulative clocks.
            let mut latest: BTreeMap<usize, &IterationProgress> = BTreeMap::new();
            let mut latest_iteration = 0u64;
            for progress in &record.progress {
                latest.insert(progress.event.rank, &progress.event);
                latest_iteration = latest_iteration.max(progress.event.iteration as u64);
            }
            let mut compute = 0.0;
            let mut wait = 0.0;
            let mut communication = 0.0;
            let mut wait_shares = Vec::with_capacity(latest.len());
            let mut ranks = Vec::with_capacity(latest.len());
            for (&rank, event) in &latest {
                compute += event.time.compute;
                wait += event.time.wait;
                communication += event.time.communication;
                let total = event.time.total();
                wait_shares.push(if total > 0.0 {
                    event.time.wait / total
                } else {
                    0.0
                });
                ranks.push(rank);
            }
            let total = (compute + wait + communication).max(f64::MIN_POSITIVE);
            let stragglers = ptycho_telemetry::analysis::z_scores(&wait_shares)
                .into_iter()
                .zip(&ranks)
                .filter(|&(z, _)| z > straggler_z)
                .map(|(_, &rank)| rank)
                .collect();
            jobs.push(JobHealth {
                job: id,
                ranks_reporting: latest.len(),
                latest_iteration,
                compute_share: compute / total,
                wait_share: wait / total,
                comm_share: communication / total,
                straggler_ranks: stragglers,
            });
        }
        HealthSnapshot {
            jobs,
            queue_depth: state.queue.len(),
            active: state.active,
            waiting_for_spare: state.waiting_for_spare,
            free_nodes: state.fleet.free_count(),
            leased_nodes: state.fleet.leased_count(),
            dead_nodes: state.fleet.dead_count(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.shared.state.lock().expect("service state poisoned")
    }
}

/// Live phase shares and straggler flags for one running job (see
/// [`JobEngine::health_snapshot`]).
#[derive(Clone, Debug)]
pub struct JobHealth {
    /// The running job.
    pub job: JobId,
    /// How many ranks have reported at least one progress event.
    pub ranks_reporting: usize,
    /// The newest iteration any rank has completed.
    pub latest_iteration: u64,
    /// Fraction of the job's summed simulated time spent computing.
    pub compute_share: f64,
    /// Fraction spent blocked on peers (load imbalance).
    pub wait_share: f64,
    /// Fraction charged for moving bytes.
    pub comm_share: f64,
    /// Ranks whose wait share z-scores above the snapshot's threshold,
    /// in rank order.
    pub straggler_ranks: Vec<usize>,
}

/// A point-in-time view of the whole engine while jobs run (see
/// [`JobEngine::health_snapshot`]).
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Per-job health, in job-id order (running jobs only).
    pub jobs: Vec<JobHealth>,
    /// Jobs waiting in the admission queue.
    pub queue_depth: usize,
    /// Jobs currently running.
    pub active: usize,
    /// Running jobs blocked waiting for a shared-pool spare.
    pub waiting_for_spare: usize,
    /// Nodes currently free (the shared spare pool).
    pub free_nodes: usize,
    /// Nodes leased to running jobs.
    pub leased_nodes: usize,
    /// Nodes retired by failure-detector verdicts.
    pub dead_nodes: usize,
}

/// A client's handle to one submitted job.
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("state", &self.state())
            .finish()
    }
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's current lifecycle state.
    pub fn state(&self) -> JobState {
        self.record(|record| record.state)
    }

    /// Requests cancellation. A queued job is cancelled immediately; a
    /// running one is asked to stop cooperatively (its ranks observe the
    /// flag at the next iteration boundary). Terminal jobs are unaffected.
    pub fn cancel(&self) {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        let record = state.jobs.get_mut(&self.id).expect("job record missing");
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
                record.error = Some(JobError::Cancelled);
                record.finished = Some(Instant::now());
                state.queue.remove(self.id);
                state.metrics.cancelled += 1;
                if let Some(spec) = state.pending.remove(&self.id) {
                    if let Some(telemetry) = &spec.telemetry {
                        telemetry
                            .sink(0)
                            .record(TelemetryEvent::JobCancelled { job: self.id });
                        telemetry.flush_all();
                    }
                }
                self.shared.changed.notify_all();
            }
            JobState::Running => {
                record.cancel.store(true, Ordering::Relaxed);
                // A running job may be parked in the spare_grant condvar
                // loop (waiting for a shared-pool spare); it only re-reads
                // the cancel flag after a wakeup, so signal one instead of
                // leaving cancellation latent until an unrelated event.
                self.shared.changed.notify_all();
            }
            _ => {}
        }
    }

    /// Blocks until the job reaches a terminal state, then returns its
    /// report.
    pub fn wait(&self) -> JobReport {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        loop {
            let record = state.jobs.get(&self.id).expect("job record missing");
            if record.state.is_terminal() {
                return record.report(self.id);
            }
            state = self
                .shared
                .changed
                .wait(state)
                .expect("service state poisoned");
        }
    }

    /// Streams newly acquired scan positions into the job.
    ///
    /// Frames are queued; a running job is preempted at its next iteration
    /// boundary, splices every queued frame into its dataset with
    /// deterministic re-partitioning, and re-runs over the enlarged
    /// dataset. A queued job splices before its first iteration. The final
    /// volume is **bit-identical** to submitting the full dataset up
    /// front — the streamed-ingestion tests pin this. Frames must continue
    /// the scan contiguously ([`ScanFrame`]s from
    /// [`Dataset::frames_after`]). Frames ingested after the job reached a
    /// terminal state are dropped; returns `false` in that case.
    pub fn ingest(&self, frames: Vec<ScanFrame>) -> bool {
        let state = self.shared.state.lock().expect("service state poisoned");
        let record = state.jobs.get(&self.id).expect("job record missing");
        if record.state.is_terminal() {
            return false;
        }
        record
            .ingest
            .lock()
            .expect("ingest queue poisoned")
            .extend(frames);
        // Raise preempt *after* the frames are visible: the runner always
        // lowers the flag before draining the queue, so a raised flag
        // implies the frames it announces are already there.
        record.preempt.store(true, Ordering::Release);
        true
    }

    /// The progress events emitted so far.
    pub fn progress(&self) -> Vec<JobProgress> {
        self.record(|record| record.progress.clone())
    }

    /// The progress events after the first `seen` — the tailing API: keep a
    /// cursor, poll with it, advance by what comes back.
    pub fn progress_since(&self, seen: usize) -> Vec<JobProgress> {
        self.record(|record| record.progress.get(seen..).unwrap_or_default().to_vec())
    }

    fn record<T>(&self, f: impl FnOnce(&JobRecord) -> T) -> T {
        let state = self.shared.state.lock().expect("service state poisoned");
        f(state.jobs.get(&self.id).expect("job record missing"))
    }
}

/// Fails every queued job whose slot count exceeds the live fleet (total
/// minus retired nodes). A dead node never returns to the free pool, so
/// such a job can never be admitted; with strict head-of-line scheduling
/// it would block the entire queue, and `wait_idle` / `JobHandle::wait`
/// would hang with no failure path. Called with the state lock held after
/// every retirement.
fn fail_unservable_queued(state: &mut ServiceState, shared: &Arc<Shared>) {
    let live = state.fleet.total_nodes() - state.fleet.dead_count();
    let doomed: Vec<(JobId, usize)> = state
        .queue
        .entries()
        .iter()
        .filter(|e| e.slots > live)
        .map(|e| (e.job, e.slots))
        .collect();
    if doomed.is_empty() {
        return;
    }
    for (id, slots) in doomed {
        state.queue.remove(id);
        state.pending.remove(&id);
        let record = state.jobs.get_mut(&id).expect("queued job has a record");
        record.state = JobState::Failed;
        record.error = Some(JobError::Rejected {
            reason: format!(
                "retirements shrank the fleet below the job's size: needs \
                 {slots} node(s) but only {live} live node(s) remain"
            ),
        });
        record.finished = Some(Instant::now());
        state.metrics.failed += 1;
    }
    shared.changed.notify_all();
}

/// Admits queued jobs while the head of the queue fits the free pool,
/// spawning one runner thread per admission. Called with the state lock
/// held, everywhere the free pool or the queue grows.
fn try_admit(state: &mut ServiceState, shared: &Arc<Shared>) {
    if state.paused {
        return;
    }
    // Pending spare grants outrank new admissions: a healing job blocked in
    // `spare_grant` gets first claim on freed nodes. Admitting here instead
    // would let a steady stream of admissible queue heads starve the waiter
    // — or trip its deadlock heuristic and fail a job that was about to
    // heal. The served waiter re-runs admission for whatever is left over.
    if state.waiting_for_spare > 0 {
        return;
    }
    while let Some(entry) = state.queue.pop_admissible(state.fleet.free_count()) {
        let leased = state
            .fleet
            .lease(entry.job, entry.slots)
            .expect("pop_admissible checked the free pool");
        let spec = state
            .pending
            .remove(&entry.job)
            .expect("queued job has a pending spec");
        let record = state.jobs.get_mut(&entry.job).expect("job record missing");
        record.state = JobState::Running;
        record.started = Some(Instant::now());
        record.node_map = leased;
        state.admissions.push(entry.job);
        state.active += 1;
        state.metrics.admitted += 1;
        let depth = state.queue.len() as u64;
        state.metrics.queue_depth.observe(depth);
        if let Some(telemetry) = &spec.telemetry {
            telemetry.sink(0).record(TelemetryEvent::JobAdmitted {
                job: entry.job,
                queue_depth: depth,
            });
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || run_job_thread(shared, entry.job, spec));
    }
}

/// The per-job runner: builds the job's own backend, wires the job-context
/// hooks into the shared state, runs the solver (re-running after every
/// scan-ingestion splice), and completes the job.
fn run_job_thread(shared: Arc<Shared>, id: JobId, mut spec: JobSpec) {
    let (cancel, preempt, ingest) = {
        let state = shared.state.lock().expect("service state poisoned");
        let record = state.jobs.get(&id).expect("job record missing");
        (
            Arc::clone(&record.cancel),
            Arc::clone(&record.preempt),
            Arc::clone(&record.ingest),
        )
    };
    let progress_shared = Arc::clone(&shared);
    let progress = move |event: IterationProgress| {
        let mut state = progress_shared
            .state
            .lock()
            .expect("service state poisoned");
        if let Some(record) = state.jobs.get_mut(&id) {
            record.progress.push(JobProgress { job: id, event });
        }
    };
    let grant_shared = Arc::clone(&shared);
    let grant_cancel = Arc::clone(&cancel);
    let spare_grant = move |dead_local: usize| -> bool {
        let mut guard = grant_shared.state.lock().expect("service state poisoned");
        let dead_global = {
            let state = &mut *guard;
            let Some(record) = state.jobs.get_mut(&id) else {
                return false;
            };
            let Some(&dead_global) = record.node_map.get(dead_local) else {
                return false;
            };
            dead_global
        };
        if guard.fleet.retire(dead_global).is_err() {
            return false;
        }
        // The retirement just shrank the live fleet: queued jobs bigger
        // than what remains can never be admitted, and head-of-line
        // scheduling would let one pin the queue (and `wait_idle`) forever.
        fail_unservable_queued(&mut guard, &grant_shared);
        // The free pool may be transiently empty when every node is leased
        // out to tenants: block until a neighbouring job releases one. The
        // grant can only fail for good when no other active tenant exists —
        // or every one of them is itself blocked here — so nobody will ever
        // free a node (and when the job was cancelled while waiting).
        loop {
            if let Some(replacement) = guard.fleet.draw_spare(id) {
                if let Some(record) = guard.jobs.get_mut(&id) {
                    // Appended in promotion order: the engine numbers the
                    // k-th promoted spare `slots + k`, which indexes this
                    // entry.
                    record.node_map.push(replacement);
                }
                // Grant served: run the admission that `try_admit` deferred
                // while this job was waiting, so leftover free nodes still
                // reach the queue.
                try_admit(&mut guard, &grant_shared);
                return true;
            }
            if grant_cancel.load(Ordering::Relaxed) || guard.waiting_for_spare + 1 >= guard.active {
                return false;
            }
            guard.waiting_for_spare += 1;
            guard = grant_shared
                .changed
                .wait(guard)
                .expect("service state poisoned");
            guard.waiting_for_spare -= 1;
        }
    };
    // The store opens once per job: every splice round and the kill/resume
    // cycle continue the same monotonic epoch sequence.
    let store = match spec.checkpoint_dir.clone() {
        None => Ok(None),
        Some(dir) => CheckpointStore::open(&dir)
            .map(Some)
            .map_err(|error| JobError::Rejected {
                reason: format!("checkpoint store at {}: {error}", dir.display()),
            }),
    };
    let mut resume_epoch: Option<Arc<RecoveredEpoch>> = spec.resume_from.take();
    let outcome: Result<ReconstructionResult, JobError> = match store {
        Err(error) => Err(error),
        Ok(store) => loop {
            // Splice point. Lower the preempt flag *before* draining the
            // queue: any frame queued after the drain was published before
            // its raise, so it either lands in this drain or leaves the
            // flag raised for the engine's next boundary poll — no frame is
            // ever silently stranded.
            preempt.store(false, Ordering::Release);
            let pending: Vec<ScanFrame> =
                std::mem::take(&mut *ingest.lock().expect("ingest queue poisoned"));
            if !pending.is_empty() {
                let added = pending.len() as u64;
                spec.dataset.ingest(pending);
                if let Some(telemetry) = &spec.telemetry {
                    telemetry.sink(0).record(TelemetryEvent::ScanIngested {
                        job: id,
                        positions: added,
                        total: spec.dataset.scan().len() as u64,
                    });
                }
                // The baseline's decomposition constraint was checked at
                // submission against the pre-splice scan; re-check it
                // against the enlarged one instead of panicking mid-run.
                if spec.method == SolverMethod::HaloVoxelExchange {
                    if let Err(error) =
                        HaloVoxelExchangeSolver::new(&spec.dataset, spec.config, spec.grid)
                    {
                        break Err(JobError::Rejected {
                            reason: format!("ingested scan broke the decomposition: {error}"),
                        });
                    }
                }
            }
            let spec_bytes = encode_spec(&spec);
            let durability = store.as_ref().map(|store| DurabilityHook {
                store,
                resume: resume_epoch.as_deref(),
                kill: spec.fault_policy.as_ref().and_then(|p| p.process_kill),
                spec: &spec_bytes,
            });
            let job = JobContext {
                cancel: Some(&cancel),
                preempt: Some(&preempt),
                progress: Some(&progress),
                spare_grant: Some(&spare_grant),
                telemetry: spec.telemetry.as_deref(),
                durability,
            };
            let round = run_spec(&spec, &job);
            let cancelled = cancel.load(Ordering::Relaxed);
            match round {
                Err(failure)
                    if matches!(failure.error, CommError::Preempted { .. }) && !cancelled =>
                {
                    // An ingestion splice interrupted the run: restart from
                    // the initial guess over the (about to be) enlarged
                    // dataset. The final round is a full deterministic run
                    // over the final dataset, so the result is bit-identical
                    // to a batch submission; the on-disk resume state is
                    // from the pre-splice dataset and no longer applies.
                    resume_epoch = None;
                }
                Ok(result) => {
                    if !cancelled && !ingest.lock().expect("ingest queue poisoned").is_empty() {
                        // Frames landed after the run's last boundary poll:
                        // the job is not done with the data it was promised.
                        resume_epoch = None;
                        continue;
                    }
                    break Ok(result);
                }
                Err(failure)
                    if cancelled || matches!(failure.error, CommError::Cancelled { .. }) =>
                {
                    break Err(JobError::Cancelled);
                }
                Err(failure) => break Err(JobError::Failed(failure)),
            }
        },
    };
    let mut state = shared.state.lock().expect("service state poisoned");
    let record = state.jobs.get_mut(&id).expect("job record missing");
    let mut recovery = None;
    match outcome {
        Ok(result) => {
            record.state = JobState::Completed;
            recovery = Some(result.recovery);
            record.result = Some(result);
        }
        Err(JobError::Cancelled) => {
            record.state = JobState::Cancelled;
            record.error = Some(JobError::Cancelled);
        }
        Err(error) => {
            record.state = JobState::Failed;
            record.error = Some(error);
        }
    }
    record.finished = Some(Instant::now());
    let terminal = record.state;
    let metrics = &mut state.metrics;
    match terminal {
        JobState::Completed => metrics.completed += 1,
        JobState::Cancelled => metrics.cancelled += 1,
        _ => metrics.failed += 1,
    }
    // Fold the job's recovery work into the service totals — healed faults
    // used to vanish silently once the job reported success.
    if let Some(recovery) = recovery {
        metrics.iteration_restarts += recovery.iteration_restarts as u64;
        metrics.substitutions += recovery.substitutions as u64;
        metrics.heartbeats_sent += recovery.heartbeats_sent;
        metrics.heartbeats_observed += recovery.heartbeats_observed;
        metrics.retransmits += recovery.reliable.retransmits;
        metrics.recoveries += recovery.reliable.recoveries;
        metrics.acks_sent += recovery.reliable.acks_sent;
        metrics.duplicates_reacked += recovery.reliable.duplicates_reacked;
    }
    if let Some(telemetry) = &spec.telemetry {
        // The engine's rank threads are joined; stamping the lifecycle
        // event on stream 0 and re-flushing cannot race anything.
        match terminal {
            JobState::Completed => {
                telemetry.sink(0).record(TelemetryEvent::JobCompleted {
                    job: id,
                    iterations: spec.config.iterations as u64,
                });
            }
            JobState::Cancelled => {
                telemetry
                    .sink(0)
                    .record(TelemetryEvent::JobCancelled { job: id });
            }
            _ => {}
        }
        telemetry.flush_all();
        // After the final flush the loss counters are settled: fold them
        // into the service totals so an undersized ring is loud in every
        // metrics snapshot, not just in the trace's sequence gaps.
        for (rank, lost) in telemetry.lost_records_by_rank().into_iter().enumerate() {
            if lost > 0 {
                state.metrics.telemetry_lost += lost;
                *state
                    .metrics
                    .telemetry_lost_by_rank
                    .entry(rank as u64)
                    .or_insert(0) += lost;
            }
        }
    }
    state.active -= 1;
    state.fleet.release(id);
    try_admit(&mut state, &shared);
    drop(state);
    shared.changed.notify_all();
}

/// Builds the job's backend and runs its solver. Each arm hands a concrete
/// backend type to the generic runner — `CommBackend` is not object-safe
/// (generic `run`), so dispatch is by enumeration, not by `dyn`.
fn run_spec(spec: &JobSpec, job: &JobContext<'_>) -> Result<ReconstructionResult, RankFailure> {
    let topology = ClusterTopology::summit();
    match (spec.backend, spec.fault_policy.clone()) {
        (ServiceBackend::Lockstep, None) => run_method(spec, &LockstepBackend::new(topology), job),
        (ServiceBackend::Lockstep, Some(policy)) => run_method(
            spec,
            &FaultInjectionBackend::new(LockstepBackend::new(topology), policy),
            job,
        ),
        (ServiceBackend::Threaded { recv_timeout }, None) => run_method(
            spec,
            &Cluster::new(topology).with_recv_timeout(recv_timeout),
            job,
        ),
        (ServiceBackend::Threaded { recv_timeout }, Some(policy)) => run_method(
            spec,
            &FaultInjectionBackend::new(
                Cluster::new(topology).with_recv_timeout(recv_timeout),
                policy,
            ),
            job,
        ),
    }
}

/// Current encoding version of the manifest-embedded job spec.
const SPEC_VERSION: u8 = 1;

fn put_opt_f64(w: &mut ByteWriter, value: Option<f64>) {
    match value {
        None => w.put_u8(0),
        Some(v) => {
            w.put_u8(1);
            w.put_f64(v);
        }
    }
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, DurabilityError> {
    Ok(match r.get_u8()? {
        0 => None,
        _ => Some(r.get_f64()?),
    })
}

/// Encodes everything [`JobEngine::resume`] needs to rebuild the job from
/// the checkpoint directory alone. The dataset is stored as its synthesis
/// recipe plus the current scan length — the synthesized acquisition is
/// deterministic, so the recipe *is* the data. Embedded opaquely in every
/// [`EpochManifest`](crate::durability::EpochManifest).
fn encode_spec(spec: &JobSpec) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(SPEC_VERSION);
    let synth = spec.dataset.synthetic_config();
    w.put_u64(synth.object_px as u64);
    w.put_u64(synth.slices as u64);
    w.put_u64(synth.scan_grid.0 as u64);
    w.put_u64(synth.scan_grid.1 as u64);
    w.put_u64(synth.window_px as u64);
    put_opt_f64(&mut w, synth.dose);
    w.put_f64(synth.defocus_pm);
    w.put_u64(synth.seed);
    w.put_u64(spec.dataset.scan().len() as u64);
    let c = &spec.config;
    w.put_u64(c.iterations as u64);
    w.put_f64(c.step_relaxation);
    w.put_u64(c.halo_px as u64);
    match c.pass_frequency {
        PassFrequency::EveryProbe => {
            w.put_u8(0);
            w.put_u64(0);
        }
        PassFrequency::PerIteration(times) => {
            w.put_u8(1);
            w.put_u64(times as u64);
        }
    }
    w.put_u8(c.local_updates as u8);
    w.put_u64(c.hve_extra_probe_rows as u64);
    w.put_u64(c.hve_exchange_period as u64);
    put_opt_f64(&mut w, c.probe_support_threshold);
    match c.detector_roi {
        None => w.put_u8(0),
        Some(roi) => {
            w.put_u8(1);
            // i64 coordinates round-trip through their two's-complement
            // bit patterns.
            w.put_u64(roi.row0 as u64);
            w.put_u64(roi.row1 as u64);
            w.put_u64(roi.col0 as u64);
            w.put_u64(roi.col1 as u64);
        }
    }
    w.put_u64(spec.grid.0 as u64);
    w.put_u64(spec.grid.1 as u64);
    w.put_u8(match spec.method {
        SolverMethod::GradientDecomposition => 0,
        SolverMethod::HaloVoxelExchange => 1,
    });
    w.put_u64(spec.priority as i64 as u64);
    match spec.recovery {
        RecoveryPolicy::FailFast => {
            w.put_u8(0);
            w.put_u64(0);
            w.put_u64(0);
        }
        RecoveryPolicy::RetransmitThenRestart {
            max_iteration_restarts,
        } => {
            w.put_u8(1);
            w.put_u64(max_iteration_restarts as u64);
            w.put_u64(0);
        }
        RecoveryPolicy::SubstituteSpare {
            spares,
            max_iteration_restarts,
        } => {
            w.put_u8(2);
            w.put_u64(max_iteration_restarts as u64);
            w.put_u64(spares as u64);
        }
    }
    match &spec.fault_policy {
        None => w.put_u8(0),
        Some(policy) => {
            w.put_u8(1);
            w.put_u64(policy.seed);
            w.put_f64(policy.drop_probability);
            w.put_f64(policy.duplicate_probability);
            w.put_f64(policy.delay_probability);
            match policy.only_tag {
                None => w.put_u8(0),
                Some(tag) => {
                    w.put_u8(1);
                    w.put_u64(tag);
                }
            }
            match policy.drop_exact {
                None => w.put_u8(0),
                Some((from, to, tag, seq)) => {
                    w.put_u8(1);
                    w.put_u64(from as u64);
                    w.put_u64(to as u64);
                    w.put_u64(tag);
                    w.put_u64(seq);
                }
            }
            match policy.kill {
                None => w.put_u8(0),
                Some((node, after_sends)) => {
                    w.put_u8(1);
                    w.put_u64(node as u64);
                    w.put_u64(after_sends);
                }
            }
            match policy.process_kill {
                None => w.put_u8(0),
                Some((seq, phase)) => {
                    w.put_u8(1);
                    w.put_u64(seq);
                    w.put_u8(match phase {
                        CrashPhase::BeforeRename => 0,
                        CrashPhase::DuringRename => 1,
                        CrashPhase::AfterRename => 2,
                    });
                }
            }
        }
    }
    match spec.backend {
        ServiceBackend::Lockstep => {
            w.put_u8(0);
            w.put_u64(0);
        }
        ServiceBackend::Threaded { recv_timeout } => {
            w.put_u8(1);
            w.put_u64(recv_timeout.as_nanos() as u64);
        }
    }
    w.into_bytes()
}

/// Decodes a manifest-embedded spec back into a submittable [`JobSpec`]
/// (telemetry, checkpoint directory, and resume state are not part of the
/// encoding; the caller attaches them). `path` labels decode errors.
fn decode_spec(bytes: &[u8], path: &std::path::Path) -> Result<JobSpec, DurabilityError> {
    let corrupt = |detail: String| DurabilityError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut r = ByteReader::new(bytes, path);
    let version = r.get_u8()?;
    if version != SPEC_VERSION {
        return Err(corrupt(format!(
            "unsupported spec version {version} (expected {SPEC_VERSION})"
        )));
    }
    let synth = SyntheticConfig {
        object_px: r.get_u64()? as usize,
        slices: r.get_u64()? as usize,
        scan_grid: (r.get_u64()? as usize, r.get_u64()? as usize),
        window_px: r.get_u64()? as usize,
        dose: get_opt_f64(&mut r)?,
        defocus_pm: r.get_f64()?,
        seed: r.get_u64()?,
    };
    let scan_len = r.get_u64()? as usize;
    let config = SolverConfig {
        iterations: r.get_u64()? as usize,
        step_relaxation: r.get_f64()?,
        halo_px: r.get_u64()? as usize,
        pass_frequency: match (r.get_u8()?, r.get_u64()?) {
            (0, _) => PassFrequency::EveryProbe,
            (1, times) => PassFrequency::PerIteration(times as usize),
            (tag, _) => return Err(corrupt(format!("unknown pass-frequency tag {tag}"))),
        },
        local_updates: r.get_u8()? != 0,
        hve_extra_probe_rows: r.get_u64()? as usize,
        hve_exchange_period: r.get_u64()? as usize,
        probe_support_threshold: get_opt_f64(&mut r)?,
        detector_roi: match r.get_u8()? {
            0 => None,
            _ => Some(Rect {
                row0: r.get_u64()? as i64,
                row1: r.get_u64()? as i64,
                col0: r.get_u64()? as i64,
                col1: r.get_u64()? as i64,
            }),
        },
    };
    let grid = (r.get_u64()? as usize, r.get_u64()? as usize);
    let method = match r.get_u8()? {
        0 => SolverMethod::GradientDecomposition,
        1 => SolverMethod::HaloVoxelExchange,
        tag => return Err(corrupt(format!("unknown solver-method tag {tag}"))),
    };
    let priority = r.get_u64()? as i64 as i32;
    let recovery = match (r.get_u8()?, r.get_u64()? as usize, r.get_u64()? as usize) {
        (0, _, _) => RecoveryPolicy::FailFast,
        (1, max_iteration_restarts, _) => RecoveryPolicy::RetransmitThenRestart {
            max_iteration_restarts,
        },
        (2, max_iteration_restarts, spares) => RecoveryPolicy::SubstituteSpare {
            spares,
            max_iteration_restarts,
        },
        (tag, _, _) => return Err(corrupt(format!("unknown recovery-policy tag {tag}"))),
    };
    let fault_policy = match r.get_u8()? {
        0 => None,
        _ => Some(FaultPolicy {
            seed: r.get_u64()?,
            drop_probability: r.get_f64()?,
            duplicate_probability: r.get_f64()?,
            delay_probability: r.get_f64()?,
            only_tag: match r.get_u8()? {
                0 => None,
                _ => Some(r.get_u64()?),
            },
            drop_exact: match r.get_u8()? {
                0 => None,
                _ => Some((
                    r.get_u64()? as usize,
                    r.get_u64()? as usize,
                    r.get_u64()?,
                    r.get_u64()?,
                )),
            },
            kill: match r.get_u8()? {
                0 => None,
                _ => Some((r.get_u64()? as usize, r.get_u64()?)),
            },
            process_kill: match r.get_u8()? {
                0 => None,
                _ => Some((
                    r.get_u64()?,
                    match r.get_u8()? {
                        0 => CrashPhase::BeforeRename,
                        1 => CrashPhase::DuringRename,
                        2 => CrashPhase::AfterRename,
                        tag => return Err(corrupt(format!("unknown crash-phase tag {tag}"))),
                    },
                )),
            },
        }),
    };
    let backend = match (r.get_u8()?, r.get_u64()?) {
        (0, _) => ServiceBackend::Lockstep,
        (1, nanos) => ServiceBackend::Threaded {
            recv_timeout: Duration::from_nanos(nanos),
        },
        (tag, _) => return Err(corrupt(format!("unknown backend tag {tag}"))),
    };
    if !r.is_exhausted() {
        return Err(corrupt("trailing bytes after the job spec".to_string()));
    }
    // The synthesized acquisition is deterministic: re-running the recipe
    // and trimming to the checkpointed scan length reproduces the exact
    // dataset the killed process was reconstructing (including every
    // ingested splice, because splices come from the same recipe).
    let full = Dataset::synthesize(synth);
    if scan_len > full.scan().len() {
        return Err(corrupt(format!(
            "checkpointed scan length {scan_len} exceeds the {} positions the \
             synthesis recipe produces",
            full.scan().len()
        )));
    }
    let dataset = full.with_scan_prefix(scan_len);
    Ok(JobSpec {
        dataset,
        config,
        grid,
        method,
        priority,
        recovery,
        fault_policy,
        backend,
        telemetry: None,
        telemetry_capacity: None,
        checkpoint_dir: None,
        resume_from: None,
    })
}

fn run_method<B: CommBackend>(
    spec: &JobSpec,
    backend: &B,
    job: &JobContext<'_>,
) -> Result<ReconstructionResult, RankFailure> {
    match spec.method {
        SolverMethod::GradientDecomposition => GradientDecompositionSolver::new(
            &spec.dataset,
            spec.config,
            spec.grid,
        )
        .run_job(backend, spec.recovery, job),
        SolverMethod::HaloVoxelExchange => {
            HaloVoxelExchangeSolver::new(&spec.dataset, spec.config, spec.grid)
                .expect("validated at submission")
                .run_job(backend, spec.recovery, job)
        }
    }
}
