//! Image Gradient Decomposition for parallel and memory-efficient
//! ptychographic reconstruction.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Wang et al., SC 2022): a decomposition of the ptychographic Maximum-
//! Likelihood reconstruction across many workers that tessellates *image
//! gradients* — not voxels — into tiles, accumulates the gradients of
//! overlapping probe locations through directional forward/backward passes,
//! and pipelines those passes asynchronously (APPP). The state-of-the-art
//! baseline it is compared against, the Halo Voxel Exchange method, is
//! implemented here too.
//!
//! # Module map
//!
//! | Paper concept | Module |
//! |---|---|
//! | Tile grid, halos, overlap regions (Fig. 2, Fig. 3) | [`tiling`] |
//! | Individual gradients, accumulation buffers, Alg. 1 | [`gradient_decomp`] |
//! | Forward/backward directional passes (Fig. 4) | [`gradient_decomp::passes`] |
//! | Asynchronous pipelining for parallel passes (Fig. 5) | [`gradient_decomp::solver`] |
//! | Halo Voxel Exchange baseline (Sec. II-C) | [`halo_exchange`] |
//! | Stitching and seam-artifact measurement (Fig. 8) | [`stitch`] |
//! | Convergence tracking (Fig. 9) | [`convergence`] |
//! | Runtime breakdowns, strong-scaling efficiency (Fig. 7) | [`metrics`] |
//! | Per-GPU memory footprint model (Tables II/III) | [`memory_model`] |
//! | Full scaling model regenerating Tables II/III and Fig. 7 | [`scaling`] |
//!
//! # Quick start
//!
//! The solvers are generic over the communication backend
//! (`ptycho_cluster::CommBackend`). Here a 4-rank Gradient Decomposition
//! solve runs on the deterministic [`LockstepBackend`]: every run schedules
//! the ranks identically, so the reconstruction is reproducible bit for bit;
//! swapping in `Cluster::new(...)` (the threaded backend) runs the same
//! solve on real OS threads and produces the same volume.
//!
//! [`LockstepBackend`]: ptycho_cluster::LockstepBackend
//!
//! ```
//! use ptycho_core::{GradientDecompositionSolver, SolverConfig, TileGrid};
//! use ptycho_sim::dataset::{Dataset, SyntheticConfig};
//! use ptycho_cluster::{ClusterTopology, LockstepBackend};
//!
//! // Simulate a small acquisition, decompose it over a 2x2 tile grid, and
//! // reconstruct on 4 simulated GPU ranks.
//! let dataset = Dataset::synthesize(SyntheticConfig::tiny());
//! let config = SolverConfig { iterations: 2, ..SolverConfig::default() };
//! let solver = GradientDecompositionSolver::new(&dataset, config, (2, 2));
//! let backend = LockstepBackend::new(ClusterTopology::summit());
//! let result = solver.run(&backend);
//! assert_eq!(result.volume.shape(), dataset.object_shape());
//! assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod convergence;
pub mod durability;
pub mod engine;
pub mod gradient_decomp;
pub mod halo_exchange;
pub mod memory_model;
pub mod metrics;
pub mod scaling;
pub mod service;
pub mod stitch;
pub mod tiling;
mod worker;

pub use config::SolverConfig;
pub use convergence::CostHistory;
pub use durability::{
    CheckpointPayload, CheckpointStore, DurabilityError, EpochManifest, RecoveredEpoch, Recovery,
    SlotRecord,
};
pub use engine::{
    DurabilityHook, IterationEngine, IterationProgress, JobContext, ReconstructionResult,
    RecoveryPolicy, RecoveryReport, SolverKernel,
};
pub use gradient_decomp::solver::GradientDecompositionSolver;
pub use halo_exchange::solver::HaloVoxelExchangeSolver;
pub use memory_model::{gd_memory_per_gpu, hve_memory_per_gpu, MemoryBreakdown};
pub use metrics::{strong_scaling_efficiency, RuntimeReport};
pub use scaling::{ScalingPoint, ScalingScenario};
pub use service::{
    JobEngine, JobError, JobHandle, JobProgress, JobReport, JobSpec, JobState, ServiceBackend,
    SolverMethod,
};
pub use stitch::{seam_artifact_metric, stitch_tiles};
pub use tiling::{TileGrid, TileInfo};
