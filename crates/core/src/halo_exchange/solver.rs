//! The Halo Voxel Exchange parallel solver.
//!
//! The iteration driving (and the recovery machinery) lives in the shared
//! [`IterationEngine`](crate::engine::IterationEngine); this module
//! contributes the [`SolverKernel`] describing what one baseline iteration
//! does on one rank: embarrassingly parallel tile reconstruction with
//! redundant probe locations, followed every `hve_exchange_period`
//! iterations by the synchronous voxel copy-paste exchange of Fig. 2(g).

use crate::config::SolverConfig;
use crate::engine::{IterationEngine, RecoveryPolicy, SolverKernel};
use crate::gradient_decomp::solver::ReconstructionResult;
use crate::tiling::{TileGrid, TileInfo};
use crate::worker::{send_pooled_region, set_region_flat, TileWorker};
use ptycho_array::Array3;
use ptycho_cluster::{
    CommBackend, CommError, HardwareModel, RankComm, RankFailure, SharedTile, TilePayloadPool,
};
use ptycho_fft::{CArray3, Complex64};
use ptycho_sim::dataset::{Dataset, BYTES_PER_COMPLEX};
use ptycho_sim::scan::ProbeLocation;

/// Message tag used for the voxel copy-paste exchange.
const TAG_VOXEL_PASTE: u64 = 0x20;

/// Errors the baseline can report before running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaloExchangeError {
    /// The tiles are smaller than the halos they must fill for their
    /// neighbours, so the method cannot produce consistent tiles — the "NA"
    /// entries of Table II(b).
    TileSmallerThanHalo {
        /// The halo width the method requires, in pixels.
        required_halo_px: usize,
        /// The smallest tile side in the decomposition, in pixels.
        smallest_tile_px: usize,
    },
}

impl std::fmt::Display for HaloExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaloExchangeError::TileSmallerThanHalo {
                required_halo_px,
                smallest_tile_px,
            } => write!(
                f,
                "Halo Voxel Exchange infeasible: tiles of {smallest_tile_px} px cannot fill \
                 {required_halo_px} px halos in neighbouring tiles"
            ),
        }
    }
}

impl std::error::Error for HaloExchangeError {}

/// The Halo Voxel Exchange baseline solver.
pub struct HaloVoxelExchangeSolver<'a> {
    dataset: &'a Dataset,
    config: SolverConfig,
    grid: TileGrid,
    halo_px: usize,
    assigned: Vec<Vec<ProbeLocation>>,
}

impl<'a> HaloVoxelExchangeSolver<'a> {
    /// Creates the baseline solver on a `grid_dims` tile grid.
    ///
    /// The halo width is derived from the scan geometry so that the extra
    /// probe-location rows are covered (Sec. II-C), and every tile is assigned
    /// its owned probe locations plus `config.hve_extra_probe_rows` rings of
    /// neighbours.
    ///
    /// Returns an error when the decomposition violates the tile-size
    /// constraint that limits the baseline's scalability.
    pub fn new(
        dataset: &'a Dataset,
        config: SolverConfig,
        grid_dims: (usize, usize),
    ) -> Result<Self, HaloExchangeError> {
        let (_, rows, cols) = dataset.object_shape();
        let halo_px = TileGrid::hve_required_halo_px(dataset.scan(), config.hve_extra_probe_rows);
        let grid = TileGrid::new(
            rows,
            cols,
            grid_dims.0,
            grid_dims.1,
            halo_px,
            dataset.scan(),
        );

        let smallest_tile_px = grid
            .tiles()
            .iter()
            .map(|t| t.core.rows().min(t.core.cols()))
            .min()
            .unwrap_or(0);
        if !grid.hve_feasible(halo_px) {
            return Err(HaloExchangeError::TileSmallerThanHalo {
                required_halo_px: halo_px,
                smallest_tile_px,
            });
        }

        let assigned = (0..grid.num_tiles())
            .map(|rank| {
                grid.hve_assigned_locations(rank, dataset.scan(), config.hve_extra_probe_rows)
            })
            .collect();

        Ok(Self {
            dataset,
            config,
            grid,
            halo_px,
            assigned,
        })
    }

    /// Creates the baseline for `workers` ranks on a near-square grid.
    pub fn for_workers(
        dataset: &'a Dataset,
        config: SolverConfig,
        workers: usize,
    ) -> Result<Self, HaloExchangeError> {
        Self::new(dataset, config, TileGrid::grid_dims_for(workers))
    }

    /// The tile decomposition (with the HVE halo width).
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The halo width the baseline needs, in pixels.
    pub fn halo_px(&self) -> usize {
        self.halo_px
    }

    /// Probe locations assigned to each rank (owned plus the extra rings).
    pub fn assigned(&self) -> &[Vec<ProbeLocation>] {
        &self.assigned
    }

    /// Total probe-location evaluations per iteration, counting the redundant
    /// extra assignments (always ≥ the scan length).
    pub fn total_assigned(&self) -> usize {
        self.assigned.iter().map(Vec::len).sum()
    }

    /// Runs the baseline reconstruction on the given communication backend.
    /// Panics on communication failure; use [`Self::try_run`] when faults
    /// are expected.
    pub fn run<B: CommBackend>(&self, backend: &B) -> ReconstructionResult {
        self.try_run(backend)
            .expect("communication failed during reconstruction")
    }

    /// Runs the baseline, surfacing communication failures as an error.
    pub fn try_run<B: CommBackend>(
        &self,
        backend: &B,
    ) -> Result<ReconstructionResult, RankFailure> {
        self.run_with_recovery(backend, RecoveryPolicy::FailFast)
    }

    /// Runs the baseline under an explicit [`RecoveryPolicy`] (see
    /// [`GradientDecompositionSolver::run_with_recovery`]).
    ///
    /// [`GradientDecompositionSolver::run_with_recovery`]:
    ///     crate::GradientDecompositionSolver::run_with_recovery
    pub fn run_with_recovery<B: CommBackend>(
        &self,
        backend: &B,
        policy: RecoveryPolicy,
    ) -> Result<ReconstructionResult, RankFailure> {
        self.run_job(backend, policy, &crate::engine::JobContext::default())
    }

    /// Runs the baseline as one job of a multi-tenant service (see
    /// [`GradientDecompositionSolver::run_job`]).
    ///
    /// [`GradientDecompositionSolver::run_job`]:
    ///     crate::GradientDecompositionSolver::run_job
    pub fn run_job<B: CommBackend>(
        &self,
        backend: &B,
        policy: RecoveryPolicy,
        job: &crate::engine::JobContext<'_>,
    ) -> Result<ReconstructionResult, RankFailure> {
        let initial = self.dataset.initial_guess();
        let kernel = HveKernel {
            dataset: self.dataset,
            grid: &self.grid,
            config: self.config,
            assigned: &self.assigned,
            initial: &initial,
        };
        IterationEngine::with_policy(&kernel, policy).run_with_context(backend, job)
    }
}

/// The Halo Voxel Exchange [`SolverKernel`], plugged into the shared
/// iteration engine.
struct HveKernel<'a> {
    dataset: &'a Dataset,
    grid: &'a TileGrid,
    config: SolverConfig,
    assigned: &'a [Vec<ProbeLocation>],
    initial: &'a CArray3,
}

/// Rank-local Halo Voxel Exchange state. The gradient scratch is allocated
/// once and reused across probes and iterations.
struct HveState<'a> {
    worker: TileWorker<'a>,
    tile: TileInfo,
    probes: &'a [ProbeLocation],
    neighbors: Vec<usize>,
    /// Probe-window-shaped gradient scratch, refilled per probe location.
    gradient: CArray3,
    /// Recycles the voxel-paste payload buffers, so steady-state exchanges
    /// allocate nothing.
    pool: TilePayloadPool,
}

impl SolverKernel for HveKernel<'_> {
    type State<'k>
        = HveState<'k>
    where
        Self: 'k;
    type Checkpoint = CArray3;

    fn grid(&self) -> &TileGrid {
        self.grid
    }

    fn iterations(&self) -> usize {
        self.config.iterations
    }

    fn init<'k, C: RankComm<SharedTile>>(&'k self, ctx: &mut C) -> HveState<'k> {
        let rank = ctx.rank();
        let tile = self.grid.tile(rank).clone();
        let probes = self.assigned[rank].as_slice();
        let worker = TileWorker::new(
            self.dataset,
            &tile,
            self.initial,
            &self.config,
            probes.len(),
            ctx.memory_mut(),
        );
        let neighbors = self.grid.neighbors(rank);
        let slices = self.dataset.object_shape().0;
        let window = self.dataset.model().window_px();
        let gradient = Array3::full(slices, window, window, Complex64::ZERO);
        HveState {
            worker,
            tile,
            probes,
            neighbors,
            gradient,
            pool: TilePayloadPool::new(),
        }
    }

    fn run_iteration<C: RankComm<SharedTile>>(
        &self,
        ctx: &mut C,
        state: &mut HveState<'_>,
        iteration: usize,
    ) -> Result<f64, CommError> {
        let HveState {
            worker,
            tile,
            probes,
            neighbors,
            gradient,
            pool,
        } = state;

        // Embarrassingly parallel tile reconstruction with the redundant probe
        // locations (Figs. 2(d)-(e)): every assigned probe's gradient is
        // applied locally, immediately.
        let mut iteration_cost = 0.0;
        for loc in probes.iter() {
            let loss = ctx
                .clock_mut()
                .compute(|| worker.compute_gradient_into(loc, gradient));
            // Only count owned probes towards the global cost so that the
            // reported F(V) is comparable with the Gradient Decomposition
            // method (redundant evaluations would double-count).
            if tile.core.contains(
                loc.center_px.0.floor() as i64,
                loc.center_px.1.floor() as i64,
            ) {
                iteration_cost += loss;
            }
            ctx.clock_mut()
                .compute(|| worker.apply_patch(loc, gradient));
        }

        // Voxel copy-paste: send my core voxels into every neighbour's halo,
        // receive their core voxels into mine (synchronous point-to-point
        // exchange, Fig. 2(g)). The baseline reconstructs tiles independently
        // for `hve_exchange_period` iterations between exchanges.
        let exchange_period = self.config.hve_exchange_period.max(1);
        if !(iteration + 1).is_multiple_of(exchange_period)
            && iteration + 1 != self.config.iterations
        {
            return Ok(iteration_cost);
        }
        for &peer in neighbors.iter() {
            let send_region_global = tile.core.intersect(&self.grid.tile(peer).extended);
            if send_region_global.is_empty() {
                continue;
            }
            let send_local = send_region_global.to_local(&tile.extended);
            send_pooled_region(
                ctx,
                pool,
                worker.volume(),
                send_local,
                peer,
                TAG_VOXEL_PASTE,
            );
        }
        for &peer in neighbors.iter() {
            let recv_region_global = self.grid.tile(peer).core.intersect(&tile.extended);
            if recv_region_global.is_empty() {
                continue;
            }
            let recv_local = recv_region_global.to_local(&tile.extended);
            let payload = ctx.recv(peer, TAG_VOXEL_PASTE)?;
            set_region_flat(worker.volume_mut(), recv_local, payload.values());
        }
        Ok(iteration_cost)
    }

    fn checkpoint(&self, state: &HveState<'_>) -> CArray3 {
        state.worker.volume().clone()
    }

    fn restore(&self, state: &mut HveState<'_>, checkpoint: &CArray3) {
        *state.worker.volume_mut() = checkpoint.clone();
    }

    fn core_volume(&self, state: &HveState<'_>) -> CArray3 {
        state.worker.core_volume()
    }

    fn modeled_compute_ns(&self, rank: usize) -> u64 {
        // Analytic (deterministic) per-iteration compute time for the
        // telemetry stream's simulated clock: the baseline reconstructs
        // every assigned probe (owned plus redundant rings) each iteration.
        let tile = self.grid.tile(rank);
        let slices = self.dataset.object_shape().0;
        let window = self.dataset.model().window_px();
        let working_set = (tile.extended.area() * slices * BYTES_PER_COMPLEX) as f64;
        let per_probe =
            HardwareModel::summit_v100().probe_gradient_time(window, slices, working_set);
        (self.assigned[rank].len() as f64 * per_probe * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptycho_cluster::{Cluster, ClusterTopology};
    use ptycho_sim::dataset::SyntheticConfig;

    fn dataset() -> Dataset {
        Dataset::synthesize(SyntheticConfig {
            object_px: 128,
            scan_grid: (4, 4),
            ..SyntheticConfig::tiny()
        })
    }

    fn config(iterations: usize) -> SolverConfig {
        SolverConfig {
            iterations,
            hve_extra_probe_rows: 1,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn assigns_redundant_probes() {
        let ds = dataset();
        let solver = HaloVoxelExchangeSolver::new(&ds, config(1), (2, 2)).unwrap();
        assert!(
            solver.total_assigned() > ds.scan().len(),
            "HVE must assign redundant probe locations ({} vs {})",
            solver.total_assigned(),
            ds.scan().len()
        );
    }

    #[test]
    fn reduces_cost_on_2x2_grid() {
        let ds = dataset();
        let solver = HaloVoxelExchangeSolver::new(&ds, config(2), (2, 2)).unwrap();
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert_eq!(result.volume.shape(), ds.object_shape());
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
    }

    #[test]
    fn infeasible_when_tiles_smaller_than_halo() {
        let ds = dataset();
        // An 8x8 grid on a 128 px object gives 16 px tiles, far below the
        // required halo (>= half the 32 px probe window plus the extra ring).
        let err = match HaloVoxelExchangeSolver::new(&ds, config(1), (8, 8)) {
            Err(e) => e,
            Ok(_) => panic!("an 8x8 grid should be infeasible for HVE"),
        };
        match err {
            HaloExchangeError::TileSmallerThanHalo {
                required_halo_px,
                smallest_tile_px,
            } => {
                assert!(required_halo_px > smallest_tile_px);
            }
        }
    }

    #[test]
    fn uses_larger_halo_than_gradient_decomposition_default() {
        let ds = dataset();
        let solver = HaloVoxelExchangeSolver::new(&ds, config(1), (2, 2)).unwrap();
        assert!(solver.halo_px() > SolverConfig::default().halo_px);
    }

    #[test]
    fn measurement_and_halo_memory_exceed_gradient_decomposition() {
        // The paper's memory argument: HVE needs extra probe-location
        // measurements and larger halos per tile than GD. (At paper scale the
        // measurements dominate the footprint; at this toy scale we compare
        // the two categories directly.)
        use crate::gradient_decomp::solver::GradientDecompositionSolver;
        use ptycho_cluster::MemoryCategory;
        let ds = dataset();
        let cluster = Cluster::new(ClusterTopology::summit());

        let hve = HaloVoxelExchangeSolver::new(&ds, config(1), (2, 2))
            .unwrap()
            .run(&cluster);
        let gd_config = SolverConfig {
            iterations: 1,
            halo_px: 20,
            ..SolverConfig::default()
        };
        let gd = GradientDecompositionSolver::new(&ds, gd_config, (2, 2)).run(&cluster);

        let category_total = |result: &ReconstructionResult, cat: MemoryCategory| -> usize {
            result.memory.iter().map(|m| m.peak_of(cat)).sum()
        };
        assert!(
            category_total(&hve, MemoryCategory::Measurements)
                > category_total(&gd, MemoryCategory::Measurements),
            "HVE must store measurements for its redundant probe locations"
        );
        assert!(
            category_total(&hve, MemoryCategory::HaloVoxels)
                > category_total(&gd, MemoryCategory::HaloVoxels),
            "HVE halos must be larger than GD halos"
        );
    }
}
