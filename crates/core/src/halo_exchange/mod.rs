//! The Halo Voxel Exchange baseline (Sec. II-C of the paper).
//!
//! This is the state-of-the-art parallel ptychography method the paper
//! compares against: every tile is assigned its own probe locations *plus*
//! extra rows of neighbouring probe locations, reconstructs its halo-extended
//! tile independently, and periodically copy-pastes its voxels into the halos
//! of neighbouring tiles through point-to-point communication. Its three
//! weaknesses — extra memory for the redundant probe locations, redundant
//! computation, and seam artifacts from the voxel pastes — are what the
//! Gradient Decomposition method removes.

pub mod solver;
