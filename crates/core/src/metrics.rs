//! Runtime and scaling metrics.
//!
//! These are the quantities the paper's tables and figures report: runtimes in
//! minutes for a fixed iteration count, strong-scaling efficiency relative to
//! the single-node run, and the compute / wait / communication breakdown of
//! Fig. 7b.

use ptycho_cluster::TimeBreakdown;

/// Strong-scaling efficiency in percent, as defined in the paper (Tables
/// II/III): the speedup relative to the baseline configuration divided by the
/// ideal speedup from the extra GPUs, times 100.
///
/// `baseline` and `scaled` are `(gpus, runtime)` pairs in consistent units.
pub fn strong_scaling_efficiency(baseline: (usize, f64), scaled: (usize, f64)) -> f64 {
    let (base_gpus, base_time) = baseline;
    let (gpus, time) = scaled;
    assert!(base_gpus > 0 && gpus > 0, "GPU counts must be positive");
    assert!(base_time > 0.0 && time > 0.0, "runtimes must be positive");
    let speedup = base_time / time;
    let ideal = gpus as f64 / base_gpus as f64;
    100.0 * speedup / ideal
}

/// Converts seconds to the minutes used in the paper's tables.
pub fn seconds_to_minutes(seconds: f64) -> f64 {
    seconds / 60.0
}

/// A per-configuration runtime report: the critical-path breakdown across
/// ranks plus derived totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimeReport {
    /// Number of GPUs (ranks) in the configuration.
    pub gpus: usize,
    /// Critical-path time breakdown (max over ranks per component).
    pub breakdown: TimeBreakdown,
}

impl RuntimeReport {
    /// Builds a report from per-rank breakdowns by taking the per-component
    /// maximum (the critical-path view used in Fig. 7b).
    pub fn from_ranks(breakdowns: &[TimeBreakdown]) -> Self {
        let breakdown = breakdowns
            .iter()
            .fold(TimeBreakdown::default(), |acc, b| acc.max_per_component(b));
        Self {
            gpus: breakdowns.len(),
            breakdown,
        }
    }

    /// Total runtime in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.breakdown.total()
    }

    /// Total runtime in minutes.
    pub fn total_minutes(&self) -> f64 {
        seconds_to_minutes(self.total_seconds())
    }

    /// The fraction of the runtime spent communicating.
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.breakdown.communication / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_linear_scaling_is_100() {
        // 4x the GPUs, 4x faster.
        let eff = strong_scaling_efficiency((6, 400.0), (24, 100.0));
        assert!((eff - 100.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_super_linear_exceeds_100() {
        // The paper's Table III: 6 GPUs at 5543 min vs 4158 GPUs at 2.2 min is
        // 364% efficiency.
        let eff = strong_scaling_efficiency((6, 5543.0), (4158, 2.2));
        assert!((eff - 363.6).abs() < 2.0, "got {eff}");
    }

    #[test]
    fn efficiency_sub_linear_below_100() {
        let eff = strong_scaling_efficiency((6, 463.3), (126, 95.3));
        assert!(eff < 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_runtime_panics() {
        let _ = strong_scaling_efficiency((6, 0.0), (12, 1.0));
    }

    #[test]
    fn runtime_report_critical_path() {
        let ranks = vec![
            TimeBreakdown {
                compute: 10.0,
                wait: 1.0,
                communication: 0.5,
            },
            TimeBreakdown {
                compute: 8.0,
                wait: 3.0,
                communication: 0.2,
            },
        ];
        let report = RuntimeReport::from_ranks(&ranks);
        assert_eq!(report.gpus, 2);
        assert_eq!(report.breakdown.compute, 10.0);
        assert_eq!(report.breakdown.wait, 3.0);
        assert_eq!(report.breakdown.communication, 0.5);
        assert!((report.total_seconds() - 13.5).abs() < 1e-12);
        assert!((report.total_minutes() - 0.225).abs() < 1e-12);
        assert!((report.communication_fraction() - 0.5 / 13.5).abs() < 1e-12);
    }

    #[test]
    fn seconds_to_minutes_conversion() {
        assert_eq!(seconds_to_minutes(120.0), 2.0);
    }
}
