//! Per-rank tile state shared by both decomposition solvers.

use crate::config::SolverConfig;
use crate::tiling::TileInfo;
use ptycho_array::{Array3, Rect};
use ptycho_cluster::{MemoryCategory, MemoryTracker};
use ptycho_fft::{CArray3, Complex64};
use ptycho_sim::dataset::{Dataset, BYTES_PER_COMPLEX, BYTES_PER_MEASUREMENT};
use ptycho_sim::gradient::{probe_gradient_into, suggested_step};
use ptycho_sim::scan::ProbeLocation;
use ptycho_sim::{MultisliceModel, SimWorkspace};

/// The state one worker (simulated GPU) keeps for its tile: the halo-extended
/// sub-volume it reconstructs, the bound forward model, the gradient step,
/// and the pooled per-probe buffers (model workspace + patch scratch) that
/// make the steady-state gradient evaluation allocation-free.
pub(crate) struct TileWorker<'a> {
    dataset: &'a Dataset,
    tile: TileInfo,
    /// The worker's halo-extended sub-volume, in tile-local coordinates.
    volume: CArray3,
    step: f64,
    slices: usize,
    /// Reusable forward/adjoint model buffers (incident stack, far field,
    /// back-propagation wave, FFT scratch).
    workspace: SimWorkspace,
    /// Reusable probe-window object patch, refilled per probe location.
    patch: CArray3,
    /// A pruned copy of the dataset's model, built when
    /// [`SolverConfig::probe_support_threshold`] and/or
    /// [`SolverConfig::detector_roi`] is set; gradient evaluation uses it in
    /// place of the dense model.
    pruned_model: Option<MultisliceModel>,
}

impl<'a> TileWorker<'a> {
    /// Creates a worker for `tile`, initialising its sub-volume from `initial`
    /// (a full-image volume, usually the flat initial guess) and registering
    /// its memory footprint with `memory`.
    pub fn new(
        dataset: &'a Dataset,
        tile: &TileInfo,
        initial: &CArray3,
        config: &SolverConfig,
        assigned_probes: usize,
        memory: &mut MemoryTracker,
    ) -> Self {
        let slices = dataset.object_shape().0;
        let volume = initial.extract_region_with_fill(tile.extended, Complex64::ONE);
        let step = config.step_relaxation * suggested_step(dataset.model());
        // Support pruning: pad the probe to its compact-support window and
        // let the entry-slice FFT skip the butterflies outside it. The
        // padded interior is bit-identical, so with a zero threshold (full
        // window) the pruned model reproduces the dense one exactly. The
        // detector ROI composes on the same pruned copy: the far-field
        // transform only materialises the ROI rows (full-window ROI is the
        // dense transform again).
        let pruned_model =
            if config.probe_support_threshold.is_some() || config.detector_roi.is_some() {
                let mut model = dataset.model().clone();
                if let Some(threshold) = config.probe_support_threshold {
                    model = model.with_probe_support_threshold(threshold);
                }
                if let Some(roi) = config.detector_roi {
                    model = model.with_detector_roi(roi);
                }
                Some(model)
            } else {
                None
            };

        // Register what this worker would hold in GPU memory.
        let window = dataset.model().window_px();
        memory.allocate(
            MemoryCategory::TileVoxels,
            tile.core.area() * slices * BYTES_PER_COMPLEX,
        );
        memory.allocate(
            MemoryCategory::HaloVoxels,
            tile.halo_area() * slices * BYTES_PER_COMPLEX,
        );
        memory.allocate(
            MemoryCategory::Measurements,
            assigned_probes * window * window * BYTES_PER_MEASUREMENT,
        );
        memory.allocate(
            MemoryCategory::GradientBuffer,
            window * window * slices * BYTES_PER_COMPLEX,
        );
        // The pooled buffers this worker holds resident for its whole life:
        // the SimWorkspace — incident stack (slices + 1), far field, back
        // wave and FFT scratch, all window² complex fields — plus the
        // probe-window object patch (slices planes).
        memory.allocate(
            MemoryCategory::ModelWorkspace,
            ((slices + 4) + slices) * window * window * BYTES_PER_COMPLEX,
        );

        let workspace = SimWorkspace::for_model(dataset.model());
        let patch = Array3::full(slices, window, window, Complex64::ONE);

        Self {
            dataset,
            tile: tile.clone(),
            volume,
            step,
            slices,
            workspace,
            patch,
            pruned_model,
        }
    }

    /// The probe window of `loc` expressed in tile-local coordinates.
    pub fn local_window(&self, loc: &ProbeLocation) -> Rect {
        loc.window.to_local(&self.tile.extended)
    }

    /// An all-zero buffer with the shape of the extended tile (used for the
    /// gradient accumulation buffers of Algorithm 1).
    pub fn zero_buffer(&self) -> CArray3 {
        Array3::full(
            self.slices,
            self.tile.extended.rows(),
            self.tile.extended.cols(),
            Complex64::ZERO,
        )
    }

    /// Computes the individual image gradient `∂f_i/∂V_k` for one owned probe
    /// location against the current tile state, writing it into the
    /// caller-owned probe-window-shaped `gradient` buffer. Returns the probe
    /// loss. Allocation-free: the object patch and every model intermediate
    /// live in the worker's pooled buffers.
    pub fn compute_gradient_into(&mut self, loc: &ProbeLocation, gradient: &mut CArray3) -> f64 {
        let local_window = self.local_window(loc);
        self.volume
            .extract_region_into(local_window, Complex64::ONE, &mut self.patch);
        // Direct field borrows keep the model reference disjoint from the
        // mutable workspace borrow.
        let model = match &self.pruned_model {
            Some(pruned) => pruned,
            None => self.dataset.model(),
        };
        probe_gradient_into(
            model,
            &self.patch,
            self.dataset.measurement(loc),
            &mut self.workspace,
            gradient,
        )
    }

    /// Applies one gradient patch to the tile volume at the probe window
    /// (step 8 of Algorithm 1): `V_k ← V_k − α·grad`. Allocation-free.
    pub fn apply_patch(&mut self, loc: &ProbeLocation, gradient: &CArray3) {
        let local_window = self.local_window(loc);
        add_region_scaled(&mut self.volume, local_window, gradient, -self.step);
    }

    /// Applies a full extended-tile-shaped gradient buffer (step 15 of
    /// Algorithm 1): `V_k ← V_k − α·buffer`.
    pub fn apply_buffer(&mut self, buffer: &CArray3) {
        assert_eq!(buffer.shape(), self.volume.shape(), "buffer shape mismatch");
        for (v, g) in self.volume.iter_mut().zip(buffer.iter()) {
            *v -= g.scale(self.step);
        }
    }

    /// Step-15 variant for locally-updating tiles: applies
    /// `V_k ← V_k − α·(total − own)` — the accumulated gradients minus what
    /// this tile already applied locally — without materialising the
    /// difference buffer.
    pub fn apply_buffer_remote(&mut self, total: &CArray3, own: &CArray3) {
        assert_eq!(total.shape(), self.volume.shape(), "buffer shape mismatch");
        assert_eq!(own.shape(), self.volume.shape(), "buffer shape mismatch");
        for ((v, t), o) in self.volume.iter_mut().zip(total.iter()).zip(own.iter()) {
            *v -= (*t - *o).scale(self.step);
        }
    }

    /// Scatters a probe-window-shaped gradient patch into an extended-tile
    /// buffer (step 7: `AccBuf_k += ∂f_i/∂V_k`).
    pub fn accumulate_patch(&self, buffer: &mut CArray3, loc: &ProbeLocation, gradient: &CArray3) {
        let local_window = self.local_window(loc);
        buffer.add_region(local_window, gradient);
    }

    /// A read-only view of the current tile volume (extended, tile-local).
    pub fn volume(&self) -> &CArray3 {
        &self.volume
    }

    /// Mutable access to the tile volume (used by the voxel copy-paste of the
    /// Halo Voxel Exchange baseline).
    pub fn volume_mut(&mut self) -> &mut CArray3 {
        &mut self.volume
    }

    /// Extracts the core (non-halo) part of the tile volume in image
    /// coordinates, ready for stitching.
    pub fn core_volume(&self) -> CArray3 {
        let core_local = self.tile.core.to_local(&self.tile.extended);
        self.volume
            .extract_region_with_fill(core_local, Complex64::ONE)
    }
}

/// Adds `factor · block` into `region` of a complex volume, clipping against
/// the volume bounds — the allocation-free scatter behind the local
/// per-probe update (`block` is probe-window shaped: one sub-plane per slice).
fn add_region_scaled(volume: &mut CArray3, region: Rect, block: &CArray3, factor: f64) {
    let (rows, cols) = region.shape();
    assert_eq!(
        block.shape(),
        (volume.depth(), rows, cols),
        "add_region_scaled: block shape {:?} does not match region {:?} x {} slices",
        block.shape(),
        region,
        volume.depth()
    );
    let bounds = volume.plane_bounds();
    let clipped = region.intersect(&bounds);
    let vol_cols = volume.cols();
    for s in 0..volume.depth() {
        let src = block.slice_data(s);
        let dst = volume.slice_data_mut(s);
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                dst[gr as usize * vol_cols + gc as usize] += src[lr * cols + lc] * factor;
            }
        }
    }
}

/// Flattens the values of `region` (tile-local coordinates) of a complex
/// volume into an interleaved `re, im` vector, slice-major then row-major —
/// the wire format of every gradient/voxel message. Cells of `region` outside
/// the volume flatten to zero. Allocates the payload; the solvers' hot paths
/// use [`extract_region_flat_into`] over a pooled buffer instead.
#[cfg(test)]
pub(crate) fn extract_region_flat(volume: &CArray3, region: Rect) -> Vec<f64> {
    let (rows, cols) = region.shape();
    let mut out = vec![0.0; volume.depth() * rows * cols * 2];
    extract_region_flat_into(volume, region, &mut out);
    out
}

/// Extracts `region` of `buffer` into a pooled payload and sends it — the
/// one allocation-free send path shared by the directional passes and the
/// HVE voxel paste. The tile retired back into the pool keeps its buffer
/// alive until every comm-layer alias has been dropped, at which point the
/// pool recycles it.
pub(crate) fn send_pooled_region<C: ptycho_cluster::RankComm<ptycho_cluster::SharedTile>>(
    ctx: &mut C,
    pool: &mut ptycho_cluster::TilePayloadPool,
    buffer: &CArray3,
    region: Rect,
    to: usize,
    tag: u64,
) {
    let (rows, cols) = region.shape();
    let mut tile = pool.acquire(buffer.depth() * rows * cols * 2);
    extract_region_flat_into(
        buffer,
        region,
        tile.unique_values_mut()
            .expect("freshly acquired tiles are unaliased"),
    );
    ctx.isend(to, tag, tile.clone());
    pool.retire(tile);
}

/// [`extract_region_flat`] into a caller-owned buffer of exactly
/// `slices * rows * cols * 2` values (a pooled
/// [`ptycho_cluster::SharedTile`] payload), so the steady-state multi-rank
/// send path performs no allocation. The buffer's previous contents are
/// fully overwritten (out-of-volume cells with zero).
pub(crate) fn extract_region_flat_into(volume: &CArray3, region: Rect, out: &mut [f64]) {
    let slices = volume.depth();
    let (rows, cols) = region.shape();
    assert_eq!(
        out.len(),
        slices * rows * cols * 2,
        "payload buffer must match the region's flat size"
    );
    out.fill(0.0);
    let bounds = volume.plane_bounds();
    let clipped = region.intersect(&bounds);
    let vol_cols = volume.cols();
    for s in 0..slices {
        let plane = volume.slice_data(s);
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                let idx = 2 * ((s * rows + lr) * cols + lc);
                let v = plane[gr as usize * vol_cols + gc as usize];
                out[idx] = v.re;
                out[idx + 1] = v.im;
            }
        }
    }
}

/// Adds interleaved `re, im` values into `region` of a complex volume
/// (the gradient-accumulation receive).
pub(crate) fn add_region_flat(volume: &mut CArray3, region: Rect, data: &[f64]) {
    apply_region_flat(volume, region, data, |dst, src| *dst += src);
}

/// Overwrites `region` of a complex volume with interleaved `re, im` values
/// (the backward-pass replace, and the HVE voxel paste).
pub(crate) fn set_region_flat(volume: &mut CArray3, region: Rect, data: &[f64]) {
    apply_region_flat(volume, region, data, |dst, src| *dst = src);
}

fn apply_region_flat(
    volume: &mut CArray3,
    region: Rect,
    data: &[f64],
    mut op: impl FnMut(&mut Complex64, Complex64),
) {
    let slices = volume.depth();
    let (rows, cols) = region.shape();
    assert_eq!(
        data.len(),
        slices * rows * cols * 2,
        "flat payload length {} does not match region {:?} x {} slices",
        data.len(),
        region,
        slices
    );
    let bounds = volume.plane_bounds();
    let clipped = region.intersect(&bounds);
    let vol_cols = volume.cols();
    for s in 0..slices {
        let plane = volume.slice_data_mut(s);
        for gr in clipped.row0..clipped.row1 {
            let lr = (gr - region.row0) as usize;
            for gc in clipped.col0..clipped.col1 {
                let lc = (gc - region.col0) as usize;
                let idx = 2 * ((s * rows + lr) * cols + lc);
                let value = Complex64::new(data[idx], data[idx + 1]);
                op(&mut plane[gr as usize * vol_cols + gc as usize], value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptycho_array::Array3;

    fn volume_with_pattern() -> CArray3 {
        Array3::from_fn(2, 6, 6, |s, r, c| {
            Complex64::new((s * 36 + r * 6 + c) as f64, -(r as f64))
        })
    }

    #[test]
    fn flat_roundtrip_set() {
        let vol = volume_with_pattern();
        let region = Rect::new(1, 2, 3, 3);
        let flat = extract_region_flat(&vol, region);
        assert_eq!(flat.len(), 2 * 3 * 3 * 2);

        let mut target = Array3::full(2, 6, 6, Complex64::ZERO);
        set_region_flat(&mut target, region, &flat);
        for s in 0..2 {
            for r in 1..4 {
                for c in 2..5 {
                    assert_eq!(target[(s, r, c)], vol[(s, r, c)]);
                }
            }
        }
        // Outside the region stays zero.
        assert_eq!(target[(0, 0, 0)], Complex64::ZERO);
    }

    #[test]
    fn flat_add_accumulates() {
        let vol = volume_with_pattern();
        let region = Rect::new(0, 0, 2, 2);
        let flat = extract_region_flat(&vol, region);
        let mut target = vol.clone();
        add_region_flat(&mut target, region, &flat);
        assert_eq!(target[(0, 0, 0)], vol[(0, 0, 0)] + vol[(0, 0, 0)]);
        assert_eq!(target[(1, 1, 1)], vol[(1, 1, 1)].scale(2.0));
        // Outside region unchanged.
        assert_eq!(target[(0, 5, 5)], vol[(0, 5, 5)]);
    }

    #[test]
    fn flat_handles_out_of_bounds_region() {
        let vol = volume_with_pattern();
        // Region hangs off the edge; extract pads with zeros and apply clips.
        let region = Rect::new(4, 4, 4, 4);
        let flat = extract_region_flat(&vol, region);
        assert_eq!(flat.len(), 2 * 4 * 4 * 2);
        let mut target = Array3::full(2, 6, 6, Complex64::ZERO);
        set_region_flat(&mut target, region, &flat);
        assert_eq!(target[(0, 5, 5)], vol[(0, 5, 5)]);
        assert_eq!(target[(0, 0, 0)], Complex64::ZERO);
    }

    #[test]
    fn add_region_scaled_matches_map_then_add() {
        let vol = volume_with_pattern();
        let region = Rect::new(-1, 3, 4, 4);
        let block = Array3::from_fn(2, 4, 4, |s, r, c| Complex64::new((s + r) as f64, c as f64));

        let mut direct = vol.clone();
        add_region_scaled(&mut direct, region, &block, -0.37);

        let mut reference = vol.clone();
        let scaled = block.map(|g| -*g * 0.37);
        reference.add_region(region, &scaled);

        for (a, b) in direct.iter().zip(reference.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "does not match region")]
    fn wrong_payload_length_panics() {
        let mut vol = volume_with_pattern();
        add_region_flat(&mut vol, Rect::new(0, 0, 2, 2), &[1.0, 2.0]);
    }
}
