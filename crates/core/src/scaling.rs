//! Analytic strong-scaling model regenerating Tables II/III and Fig. 7.
//!
//! The paper's runtime numbers come from real runs on up to 4158 V100 GPUs.
//! This module replays the same decomposition geometry (tile sizes, halo
//! widths, probe assignments, message sizes) against the calibrated hardware
//! model of `ptycho-cluster` to predict, for any GPU count:
//!
//! * the per-GPU memory footprint (delegated to [`crate::memory_model`]),
//! * the runtime for a fixed number of iterations, split into computation,
//!   GPU-waiting and communication time (Fig. 7b),
//! * the strong-scaling efficiency relative to the 6-GPU configuration.
//!
//! The model is *calibrated, not predictive in absolute terms*: the caller
//! anchors the single-node (6-GPU) runtime to the paper's measured value via
//! [`ScalingScenario::calibrate_to`], and every other configuration follows
//! from the geometry and the cost model. Per-probe work has two parts — a
//! detector-sized component (the far-field FFTs, independent of the
//! decomposition) and a tile-sized component (multi-slice propagation over the
//! halo-extended tile) — plus a cache-residency speedup as the per-slice
//! working set shrinks, which together reproduce the paper's super-linear
//! strong scaling.

use crate::memory_model::{
    decomposition_geometry, gd_memory_per_gpu, hve_feasible, hve_memory_per_gpu,
    DecompositionGeometry, GPU_VOXEL_BYTES,
};
use crate::metrics::{seconds_to_minutes, strong_scaling_efficiency};
use ptycho_cluster::{HardwareModel, TimeBreakdown};
use ptycho_sim::dataset::DatasetSpec;

/// The halo width used by the Gradient Decomposition method in the paper.
pub const GD_HALO_PM: f64 = 600.0;
/// The halo width used by the Halo Voxel Exchange baseline in the paper.
pub const HVE_HALO_PM: f64 = 890.0;

/// One row of a scaling table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Number of GPUs.
    pub gpus: usize,
    /// Number of Summit-like nodes (6 GPUs per node).
    pub nodes: usize,
    /// Average peak memory per GPU in gigabytes.
    pub memory_gb: f64,
    /// Runtime in minutes for the configured iteration count.
    pub runtime_minutes: f64,
    /// Strong-scaling efficiency (percent) relative to the table's first row.
    pub efficiency_percent: f64,
    /// Runtime breakdown (compute / wait / communication) in seconds.
    pub breakdown: TimeBreakdown,
}

/// The method a scaling point describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// The paper's Gradient Decomposition method.
    GradientDecomposition,
    /// The Halo Voxel Exchange baseline.
    HaloVoxelExchange,
}

/// A complete scaling scenario: dataset geometry, hardware model, and the
/// reconstruction parameters of Sec. VI-A.
#[derive(Clone, Debug)]
pub struct ScalingScenario {
    /// The dataset geometry (Table I).
    pub spec: DatasetSpec,
    /// The calibrated hardware model.
    pub hardware: HardwareModel,
    /// Number of reconstruction iterations (the paper uses 100).
    pub iterations: usize,
    /// Directional-pass rounds per iteration (the paper's default is 1).
    pub passes_per_iteration: usize,
    /// Extra probe-location rows for the Halo Voxel Exchange baseline.
    pub hve_extra_probe_rows: usize,
    /// Multiplier on the detector-sized (tile-independent) share of the
    /// per-probe work; the remaining share scales with the extended tile and
    /// is what produces the work-reduction part of the super-linear speedup.
    pub detector_work_scale: f64,
    /// Calibration constant for the GPU-waiting model (s⁻¹): waiting grows
    /// with the square of the per-probe time, matching the paper's
    /// observation that waiting dominates at small GPU counts and vanishes at
    /// large ones (Fig. 7b).
    pub wait_coefficient: f64,
}

impl ScalingScenario {
    /// A scenario for a dataset with paper defaults and an uncalibrated
    /// Summit-like hardware model.
    pub fn new(spec: DatasetSpec) -> Self {
        Self {
            spec,
            hardware: HardwareModel::summit_v100(),
            iterations: 100,
            passes_per_iteration: 1,
            hve_extra_probe_rows: 2,
            detector_work_scale: 3.0,
            wait_coefficient: 0.4,
        }
    }

    /// Calibrates the hardware throughput so that the Gradient Decomposition
    /// runtime at `gpus` equals `target_minutes` (the paper's measured
    /// single-node runtime), leaving every other prediction to the model.
    pub fn calibrate_to(&mut self, gpus: usize, target_minutes: f64) {
        assert!(target_minutes > 0.0, "target runtime must be positive");
        // The waiting model is nonlinear in the throughput, so a single
        // rescaling does not land exactly on the target; iterate the
        // multiplicative correction to a fixed point.
        for _ in 0..64 {
            let current = self.gd_point_uncalibrated(gpus).runtime_minutes;
            let ratio = current / target_minutes;
            if (ratio - 1.0).abs() < 1e-6 {
                break;
            }
            self.hardware.base_flops *= ratio;
        }
    }

    fn gd_point_uncalibrated(&self, gpus: usize) -> ScalingPoint {
        self.point(Method::GradientDecomposition, gpus, true)
            .expect("Gradient Decomposition is always feasible")
    }

    /// The scaling point for one method and GPU count; `None` when the method
    /// cannot run at that scale (the "NA" entries).
    pub fn point(&self, method: Method, gpus: usize, appp: bool) -> Option<ScalingPoint> {
        let (halo_pm, extra_rows, with_buffers) = match method {
            Method::GradientDecomposition => (GD_HALO_PM, 0, true),
            Method::HaloVoxelExchange => {
                if !hve_feasible(&self.spec, gpus, HVE_HALO_PM) {
                    return None;
                }
                (HVE_HALO_PM, self.hve_extra_probe_rows, false)
            }
        };
        let geometry = decomposition_geometry(&self.spec, gpus, halo_pm, extra_rows);
        let breakdown = self.iteration_breakdown(method, &geometry, appp);
        let total = TimeBreakdown {
            compute: breakdown.compute * self.iterations as f64,
            wait: breakdown.wait * self.iterations as f64,
            communication: breakdown.communication * self.iterations as f64,
        };
        let memory_gb = if with_buffers {
            gd_memory_per_gpu(&self.spec, gpus, halo_pm).gigabytes()
        } else {
            hve_memory_per_gpu(&self.spec, gpus, halo_pm, extra_rows).gigabytes()
        };
        Some(ScalingPoint {
            gpus,
            nodes: self.hardware.topology.nodes_for(gpus),
            memory_gb,
            runtime_minutes: seconds_to_minutes(total.total()),
            efficiency_percent: 100.0,
            breakdown: total,
        })
    }

    /// Per-iteration critical-path breakdown for one configuration.
    fn iteration_breakdown(
        &self,
        method: Method,
        geometry: &DecompositionGeometry,
        appp: bool,
    ) -> TimeBreakdown {
        let slices = self.spec.slices();
        let probes = match method {
            Method::GradientDecomposition => geometry.max_owned,
            Method::HaloVoxelExchange => geometry.max_assigned,
        }
        .max(1.0);

        let t_probe = self.per_probe_seconds(geometry);
        let compute = probes * t_probe;

        // Waiting: ranks wait on each other's in-flight gradient computations
        // before the synchronisation points; the expected stall grows with the
        // square of the per-probe time (long probes at small GPU counts) and
        // with how many probes each rank processes.
        let wait = self.wait_coefficient * probes * t_probe * t_probe;

        // Communication.
        let communication = match method {
            Method::GradientDecomposition => {
                let bytes_per_message = (2.0
                    * geometry.halo_px
                    * geometry.extended_px.1.max(geometry.extended_px.0)
                    * slices as f64
                    * GPU_VOXEL_BYTES) as usize;
                if appp {
                    // Asynchronous pipelined point-to-point passes: 4 messages
                    // per pass round, largely overlapped with computation.
                    let per_pass = 4.0 * self.hardware.transfer_time(0, 6, bytes_per_message);
                    self.passes_per_iteration as f64 * per_pass
                } else {
                    // The rejected alternative: synchronous global all-reduce
                    // of the full image gradient per pass round (Sec. V).
                    let gradient_bytes = (self.spec.lateral_px() as f64
                        * self.spec.lateral_px() as f64
                        * slices as f64
                        * GPU_VOXEL_BYTES) as usize;
                    self.passes_per_iteration as f64
                        * self.hardware.allreduce_time(gradient_bytes, geometry.gpus)
                }
            }
            Method::HaloVoxelExchange => {
                // Synchronous voxel copy-paste with all 8 neighbours, staged
                // through host memory (no overlap with computation), plus a
                // cluster-wide synchronisation whose cost grows with the number
                // of participating tile pairs — the mechanism behind the sharp
                // runtime increase the paper observes for the baseline past
                // 198 GPUs (Sec. VI-B). The quadratic coefficient is a
                // calibration constant.
                let bytes_per_message = (geometry.halo_px
                    * geometry.extended_px.1.max(geometry.extended_px.0)
                    * slices as f64
                    * GPU_VOXEL_BYTES) as usize;
                let staging_penalty = 4.0;
                let sync_overhead = 2.0e-4 * (geometry.gpus as f64).powi(2);
                16.0 * staging_penalty * self.hardware.transfer_time(0, 6, bytes_per_message)
                    + sync_overhead
            }
        };

        TimeBreakdown {
            compute,
            wait,
            communication,
        }
    }

    /// Seconds per probe-location gradient evaluation for a decomposition.
    fn per_probe_seconds(&self, geometry: &DecompositionGeometry) -> f64 {
        let slices = self.spec.slices();
        // Detector-sized work: the per-slice probe-window transforms and the
        // amplitude projection, independent of the tile decomposition. The
        // multiplier is a calibration constant for how much of the per-probe
        // kernel is insensitive to tile size.
        let detector_flops =
            self.detector_work_scale * HardwareModel::gradient_flops(self.spec.detector_px, slices);
        // Tile-sized work: multi-slice propagation over the extended tile.
        let tile_side = geometry.extended_area().sqrt().max(2.0) as usize;
        let tile_flops = HardwareModel::gradient_flops(tile_side, slices);
        // The cache-relevant working set is a few per-slice tile buffers.
        let working_set = 3.0 * geometry.extended_area() * GPU_VOXEL_BYTES;
        self.hardware.per_probe_overhead
            + self
                .hardware
                .compute_time(detector_flops + tile_flops, working_set)
    }

    /// The full scaling table for one method over a list of GPU counts, with
    /// efficiencies computed relative to the first *feasible* entry.
    pub fn table(&self, method: Method, gpu_counts: &[usize]) -> Vec<Option<ScalingPoint>> {
        let mut rows: Vec<Option<ScalingPoint>> = gpu_counts
            .iter()
            .map(|&g| self.point(method, g, true))
            .collect();
        let baseline = rows
            .iter()
            .flatten()
            .next()
            .map(|p| (p.gpus, p.runtime_minutes));
        if let Some(base) = baseline {
            for row in rows.iter_mut().flatten() {
                row.efficiency_percent =
                    strong_scaling_efficiency(base, (row.gpus, row.runtime_minutes));
            }
        }
        rows
    }

    /// The GPU counts used in the paper's tables for this dataset.
    pub fn paper_gpu_counts(&self) -> Vec<usize> {
        if self.spec.probe_locations >= 10000 {
            vec![6, 54, 198, 462, 924, 4158]
        } else {
            vec![6, 24, 54, 126, 198, 462]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated_large() -> ScalingScenario {
        let mut s = ScalingScenario::new(DatasetSpec::lead_titanate_large());
        s.calibrate_to(6, 5543.0);
        s
    }

    fn calibrated_small() -> ScalingScenario {
        let mut s = ScalingScenario::new(DatasetSpec::lead_titanate_small());
        s.calibrate_to(6, 360.0);
        s
    }

    #[test]
    fn calibration_anchors_single_node_runtime() {
        let s = calibrated_large();
        let p = s.point(Method::GradientDecomposition, 6, true).unwrap();
        assert!(
            (p.runtime_minutes - 5543.0).abs() < 1.0,
            "calibrated 6-GPU runtime should match the paper, got {}",
            p.runtime_minutes
        );
        assert_eq!(p.nodes, 1);
    }

    #[test]
    fn gd_runtime_decreases_monotonically_with_gpus() {
        let s = calibrated_large();
        let table = s.table(Method::GradientDecomposition, &s.paper_gpu_counts());
        let runtimes: Vec<f64> = table.iter().flatten().map(|p| p.runtime_minutes).collect();
        assert_eq!(runtimes.len(), 6);
        for pair in runtimes.windows(2) {
            assert!(
                pair[1] < pair[0],
                "runtime must fall with more GPUs: {runtimes:?}"
            );
        }
    }

    #[test]
    fn gd_scaling_is_super_linear_at_scale() {
        let s = calibrated_large();
        let table = s.table(Method::GradientDecomposition, &s.paper_gpu_counts());
        for point in table.iter().flatten().skip(1) {
            assert!(
                point.efficiency_percent > 100.0,
                "paper reports super-linear efficiency at {} GPUs, model gives {:.0}%",
                point.gpus,
                point.efficiency_percent
            );
        }
        // And the headline: thousands of times faster at 4158 GPUs.
        let last = table.last().unwrap().unwrap();
        let speedup = 5543.0 / last.runtime_minutes;
        assert!(
            speedup > 500.0,
            "expected a speedup in the thousands at 4158 GPUs, got {speedup:.0}x"
        );
    }

    #[test]
    fn hve_infeasible_beyond_paper_limits() {
        let s = calibrated_large();
        assert!(s.point(Method::HaloVoxelExchange, 462, true).is_some());
        assert!(s.point(Method::HaloVoxelExchange, 924, true).is_none());
        let small = calibrated_small();
        assert!(small.point(Method::HaloVoxelExchange, 54, true).is_some());
        assert!(small.point(Method::HaloVoxelExchange, 126, true).is_none());
    }

    #[test]
    fn gd_beats_hve_runtime_and_memory() {
        let s = calibrated_large();
        for gpus in [54, 198, 462] {
            let gd = s.point(Method::GradientDecomposition, gpus, true).unwrap();
            let hve = s.point(Method::HaloVoxelExchange, gpus, true).unwrap();
            assert!(
                hve.runtime_minutes > gd.runtime_minutes,
                "HVE should be slower at {gpus} GPUs ({} vs {})",
                hve.runtime_minutes,
                gd.runtime_minutes
            );
            assert!(hve.memory_gb > gd.memory_gb);
        }
    }

    #[test]
    fn best_case_speed_advantage_is_large() {
        // Paper: GD at 4158 GPUs (2.2 min) vs HVE's best (59.2 min at 198
        // GPUs) is an 86x gap; the model should show a gap of tens of times.
        let s = calibrated_large();
        let gd_best = s
            .table(Method::GradientDecomposition, &s.paper_gpu_counts())
            .iter()
            .flatten()
            .map(|p| p.runtime_minutes)
            .fold(f64::INFINITY, f64::min);
        let hve_best = s
            .table(Method::HaloVoxelExchange, &s.paper_gpu_counts())
            .iter()
            .flatten()
            .map(|p| p.runtime_minutes)
            .fold(f64::INFINITY, f64::min);
        let advantage = hve_best / gd_best;
        assert!(
            advantage > 10.0,
            "GD best ({gd_best:.1} min) should beat HVE best ({hve_best:.1} min) by >10x"
        );
    }

    #[test]
    fn wait_time_decreases_with_gpus() {
        let s = calibrated_large();
        let few = s.point(Method::GradientDecomposition, 24, true).unwrap();
        let many = s.point(Method::GradientDecomposition, 462, true).unwrap();
        assert!(few.breakdown.wait > many.breakdown.wait * 10.0);
    }

    #[test]
    fn appp_reduces_communication_overhead() {
        // Fig. 7b: at 462 GPUs the communication overhead without APPP is an
        // order of magnitude larger than with it.
        let s = calibrated_large();
        let with = s.point(Method::GradientDecomposition, 462, true).unwrap();
        let without = s.point(Method::GradientDecomposition, 462, false).unwrap();
        assert!(
            without.breakdown.communication > 10.0 * with.breakdown.communication,
            "APPP should cut communication by >10x ({} vs {})",
            without.breakdown.communication,
            with.breakdown.communication
        );
        // And the no-APPP overhead grows with scale.
        let without_small = s.point(Method::GradientDecomposition, 24, false).unwrap();
        assert!(without.breakdown.communication > without_small.breakdown.communication);
    }

    #[test]
    fn small_dataset_reaches_minutes_at_462_gpus() {
        // Table II(a): 3.0 minutes at 462 GPUs from 360 at 6 GPUs.
        let s = calibrated_small();
        let p = s.point(Method::GradientDecomposition, 462, true).unwrap();
        assert!(
            p.runtime_minutes < 20.0,
            "small dataset should reconstruct in minutes at 462 GPUs, got {}",
            p.runtime_minutes
        );
    }

    #[test]
    fn paper_gpu_counts_match_tables() {
        assert_eq!(
            ScalingScenario::new(DatasetSpec::lead_titanate_small()).paper_gpu_counts(),
            vec![6, 24, 54, 126, 198, 462]
        );
        assert_eq!(
            ScalingScenario::new(DatasetSpec::lead_titanate_large()).paper_gpu_counts(),
            vec![6, 54, 198, 462, 924, 4158]
        );
    }
}
