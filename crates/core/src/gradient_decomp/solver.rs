//! Algorithm 1: Asynchronous Pipelining for Parallel Passes.
//!
//! Every rank owns one halo-extended tile and the probe locations whose
//! centres fall inside its core tile. Per probe location it computes the
//! individual image gradient, adds it to the accumulation buffer (`AccBuf` in
//! the paper), and optionally applies it locally right away (step 8). After
//! every `T` probe locations the directional passes of [`super::passes`]
//! accumulate the buffers across tiles and the tile is updated from the
//! accumulated gradients (steps 9–16). The passes for different tile columns
//! and rows proceed concurrently and communication is non-blocking, which is
//! the Asynchronous Pipelining for Parallel Passes technique of Sec. V.
//!
//! The only deliberate deviation from the paper's pseudo-code: when local
//! per-probe updates are enabled, step 15 applies the accumulated buffer
//! *minus the gradients this tile already applied locally*, so that no probe's
//! gradient is applied to the same voxels twice. With local updates disabled
//! (`SolverConfig::local_updates = false`) the method reduces exactly to
//! synchronous data-parallel gradient descent, which the integration tests
//! exploit to verify equivalence with a serial reference.

use crate::config::SolverConfig;
use crate::convergence::CostHistory;
use crate::gradient_decomp::passes::run_accumulation_passes;
use crate::stitch::stitch_tiles;
use crate::tiling::TileGrid;
use crate::worker::TileWorker;
use ptycho_array::Rect;
use ptycho_cluster::{
    CommBackend, CommError, MemoryCategory, MemoryTracker, RankComm, RankFailure, TimeBreakdown,
};
use ptycho_fft::CArray3;
use ptycho_sim::dataset::{Dataset, BYTES_PER_COMPLEX};

/// The outcome of a parallel reconstruction.
#[derive(Clone, Debug)]
pub struct ReconstructionResult {
    /// The stitched reconstruction volume (halos discarded).
    pub volume: CArray3,
    /// Global cost `F(V)` per iteration, summed over every probe location.
    pub cost_history: CostHistory,
    /// Per-rank time breakdowns.
    pub time: Vec<TimeBreakdown>,
    /// Per-rank memory accounting.
    pub memory: Vec<MemoryTracker>,
    /// The tile decomposition the reconstruction used.
    pub grid: TileGrid,
}

impl ReconstructionResult {
    /// Average peak memory per rank in bytes.
    pub fn average_peak_memory_bytes(&self) -> f64 {
        ptycho_cluster::average_peak_bytes(&self.memory)
    }

    /// Worst-case (critical-path) time breakdown across ranks.
    pub fn critical_path(&self) -> TimeBreakdown {
        self.time
            .iter()
            .fold(TimeBreakdown::default(), |acc, t| acc.max_per_component(t))
    }
}

/// The Gradient Decomposition parallel solver (the paper's contribution).
pub struct GradientDecompositionSolver<'a> {
    dataset: &'a Dataset,
    config: SolverConfig,
    grid: TileGrid,
}

impl<'a> GradientDecompositionSolver<'a> {
    /// Creates a solver that decomposes `dataset`'s reconstruction over a
    /// `grid_dims.0 × grid_dims.1` tile grid.
    pub fn new(dataset: &'a Dataset, config: SolverConfig, grid_dims: (usize, usize)) -> Self {
        let (_, rows, cols) = dataset.object_shape();
        let grid = TileGrid::new(
            rows,
            cols,
            grid_dims.0,
            grid_dims.1,
            config.halo_px,
            dataset.scan(),
        );
        Self {
            dataset,
            config,
            grid,
        }
    }

    /// Creates a solver for `workers` ranks using a near-square tile grid.
    pub fn for_workers(dataset: &'a Dataset, config: SolverConfig, workers: usize) -> Self {
        Self::new(dataset, config, TileGrid::grid_dims_for(workers))
    }

    /// The tile decomposition.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Number of synchronisation rounds per iteration (identical on every
    /// rank, so the collective passes cannot deadlock).
    fn rounds_per_iteration(&self) -> usize {
        let max_owned = self
            .grid
            .tiles()
            .iter()
            .map(|t| t.owned_locations.len())
            .max()
            .unwrap_or(0);
        match self.config.pass_frequency {
            crate::config::PassFrequency::EveryProbe => max_owned.max(1),
            crate::config::PassFrequency::PerIteration(times) => times.clamp(1, max_owned.max(1)),
        }
    }

    /// Runs the reconstruction on the given communication backend, one rank
    /// per tile. Panics on communication failure; use
    /// [`Self::try_run`] when faults are expected (fault-injection tests).
    pub fn run<B: CommBackend>(&self, backend: &B) -> ReconstructionResult {
        self.try_run(backend)
            .expect("communication failed during reconstruction")
    }

    /// Runs the reconstruction, surfacing communication failures (lost
    /// messages, deadlocks) as an error instead of panicking.
    pub fn try_run<B: CommBackend>(
        &self,
        backend: &B,
    ) -> Result<ReconstructionResult, RankFailure> {
        let ranks = self.grid.num_tiles();
        let rounds = self.rounds_per_iteration();
        let initial = self.dataset.initial_guess();
        let grid = &self.grid;
        let dataset = self.dataset;
        let config = self.config;
        let initial_ref = &initial;

        let outcomes = backend.run::<Vec<f64>, (CArray3, Vec<f64>), _>(ranks, |ctx| {
            run_rank(ctx, dataset, grid, &config, rounds, initial_ref)
        })?;

        Ok(assemble_result(
            outcomes,
            grid.clone(),
            self.config.iterations,
        ))
    }
}

/// The per-rank body of Algorithm 1, generic over the communication backend.
fn run_rank<C: RankComm<Vec<f64>>>(
    ctx: &mut C,
    dataset: &Dataset,
    grid: &TileGrid,
    config: &SolverConfig,
    rounds: usize,
    initial: &CArray3,
) -> Result<(CArray3, Vec<f64>), CommError> {
    let rank = ctx.rank();
    let tile = grid.tile(rank).clone();
    let owned = tile.owned_locations.clone();
    let slices = dataset.object_shape().0;

    let mut memory = MemoryTracker::new();
    let mut worker = TileWorker::new(
        dataset,
        &tile,
        initial,
        config.step_relaxation,
        owned.len(),
        &mut memory,
    );
    // The accumulation buffer (and, with local updates, the record of what was
    // already applied locally) live on the GPU too.
    let buffer_bytes = tile.extended.area() * slices * BYTES_PER_COMPLEX;
    memory.allocate(MemoryCategory::AccumulationBuffer, buffer_bytes);
    if config.local_updates {
        memory.allocate(MemoryCategory::AccumulationBuffer, buffer_bytes);
    }

    let mut acc_buf = worker.zero_buffer();
    let mut own_acc = worker.zero_buffer();
    let mut local_costs = Vec::with_capacity(config.iterations);

    for _iteration in 0..config.iterations {
        let mut iteration_cost = 0.0;
        for round in 0..rounds {
            // This round's share of the owned probe locations.
            let start = round * owned.len() / rounds;
            let end = (round + 1) * owned.len() / rounds;
            for loc in &owned[start..end] {
                let (loss, gradient) = ctx.clock_mut().compute(|| worker.compute_gradient(loc));
                iteration_cost += loss;
                ctx.clock_mut().compute(|| {
                    worker.accumulate_patch(&mut acc_buf, loc, &gradient);
                    if config.local_updates {
                        worker.accumulate_patch(&mut own_acc, loc, &gradient);
                        worker.apply_patch(loc, &gradient);
                    }
                });
            }

            // Steps 10-13: accumulate gradients across tiles.
            run_accumulation_passes(ctx, grid, &mut acc_buf)?;

            // Steps 14-15: update the tile from the accumulated gradients.
            ctx.clock_mut().compute(|| {
                if config.local_updates {
                    // Apply only what this tile has not already applied.
                    let remote = acc_buf.zip_map(&own_acc, |total, own| *total - *own);
                    worker.apply_buffer(&remote);
                } else {
                    worker.apply_buffer(&acc_buf);
                }
            });

            // Step 16: reset the buffers.
            acc_buf = worker.zero_buffer();
            own_acc = worker.zero_buffer();
        }
        local_costs.push(iteration_cost);
    }

    ctx.memory_mut().max_merge(&memory);
    Ok((worker.core_volume(), local_costs))
}

/// Gathers per-rank outcomes into a [`ReconstructionResult`].
fn assemble_result(
    outcomes: Vec<ptycho_cluster::RankOutcome<(CArray3, Vec<f64>)>>,
    grid: TileGrid,
    iterations: usize,
) -> ReconstructionResult {
    let mut cores: Vec<(Rect, CArray3)> = Vec::with_capacity(outcomes.len());
    let mut cost_per_iteration = vec![0.0; iterations];
    let mut time = Vec::with_capacity(outcomes.len());
    let mut memory = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (core, costs) = outcome.result;
        cores.push((grid.tile(outcome.rank).core, core));
        for (i, c) in costs.iter().enumerate() {
            cost_per_iteration[i] += c;
        }
        time.push(outcome.time);
        memory.push(outcome.memory);
    }
    let volume = stitch_tiles(&grid, &cores);
    ReconstructionResult {
        volume,
        cost_history: CostHistory::from_costs(cost_per_iteration),
        time,
        memory,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PassFrequency;
    use ptycho_cluster::{Cluster, ClusterTopology};
    use ptycho_sim::dataset::SyntheticConfig;

    fn tiny_dataset() -> Dataset {
        Dataset::synthesize(SyntheticConfig::tiny())
    }

    fn quick_config(iterations: usize) -> SolverConfig {
        SolverConfig {
            iterations,
            halo_px: 20,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn single_rank_reduces_cost() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::new(&dataset, quick_config(3), (1, 1));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert_eq!(result.volume.shape(), dataset.object_shape());
        assert!(result.cost_history.is_monotonically_decreasing());
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
    }

    #[test]
    fn four_ranks_reduce_cost_and_report_memory() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::new(&dataset, quick_config(3), (2, 2));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert_eq!(result.time.len(), 4);
        assert_eq!(result.memory.len(), 4);
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
        assert!(result.average_peak_memory_bytes() > 0.0);
        // Each rank holds roughly a quarter of the volume plus halo, so its
        // voxel storage (tile + halo) must be well below the full volume's.
        let (d, r, c) = dataset.object_shape();
        let full_volume_bytes = d * r * c * 16;
        for m in &result.memory {
            let voxel_bytes = m.peak_of(ptycho_cluster::MemoryCategory::TileVoxels)
                + m.peak_of(ptycho_cluster::MemoryCategory::HaloVoxels);
            assert!(voxel_bytes < full_volume_bytes);
        }
    }

    #[test]
    fn decomposed_matches_serial_when_updates_are_synchronous() {
        // With local updates disabled and one pass per iteration, the parallel
        // method is exactly synchronous full-gradient descent, so any tile
        // grid must give the same answer as a single rank.
        let dataset = tiny_dataset();
        let config = SolverConfig {
            iterations: 2,
            local_updates: false,
            pass_frequency: PassFrequency::PerIteration(1),
            halo_px: 20,
            ..SolverConfig::default()
        };
        let cluster = Cluster::new(ClusterTopology::summit());

        let serial = GradientDecompositionSolver::new(&dataset, config, (1, 1)).run(&cluster);
        let parallel = GradientDecompositionSolver::new(&dataset, config, (2, 2)).run(&cluster);

        let max_diff = serial
            .volume
            .iter()
            .zip(parallel.volume.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-6,
            "parallel synchronous GD should match serial GD, max diff {max_diff}"
        );
        for (a, b) in serial
            .cost_history
            .costs()
            .iter()
            .zip(parallel.cost_history.costs())
        {
            assert!((a - b).abs() < 1e-6 * a.max(1.0));
        }
    }

    #[test]
    fn pass_frequency_variants_all_converge() {
        let dataset = tiny_dataset();
        let cluster = Cluster::new(ClusterTopology::summit());
        for freq in [
            PassFrequency::EveryProbe,
            PassFrequency::PerIteration(2),
            PassFrequency::PerIteration(1),
        ] {
            let config = SolverConfig {
                iterations: 2,
                pass_frequency: freq,
                halo_px: 20,
                ..SolverConfig::default()
            };
            let result = GradientDecompositionSolver::new(&dataset, config, (2, 2)).run(&cluster);
            assert!(
                result.cost_history.final_cost() < result.cost_history.initial_cost(),
                "{freq:?} failed to reduce the cost"
            );
        }
    }

    #[test]
    fn for_workers_uses_near_square_grid() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::for_workers(&dataset, quick_config(1), 6);
        assert_eq!(solver.grid().grid_shape(), (2, 3));
    }
}
