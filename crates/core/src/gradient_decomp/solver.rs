//! Algorithm 1: Asynchronous Pipelining for Parallel Passes.
//!
//! Every rank owns one halo-extended tile and the probe locations whose
//! centres fall inside its core tile. Per probe location it computes the
//! individual image gradient, adds it to the accumulation buffer (`AccBuf` in
//! the paper), and optionally applies it locally right away (step 8). After
//! every `T` probe locations the directional passes of [`super::passes`]
//! accumulate the buffers across tiles and the tile is updated from the
//! accumulated gradients (steps 9–16). The passes for different tile columns
//! and rows proceed concurrently and communication is non-blocking, which is
//! the Asynchronous Pipelining for Parallel Passes technique of Sec. V.
//!
//! The iteration driving (and the recovery machinery) lives in the shared
//! [`IterationEngine`](crate::engine::IterationEngine); this module
//! contributes the [`SolverKernel`] describing what one Gradient
//! Decomposition iteration does on one rank.
//!
//! The only deliberate deviation from the paper's pseudo-code: when local
//! per-probe updates are enabled, step 15 applies the accumulated buffer
//! *minus the gradients this tile already applied locally*, so that no probe's
//! gradient is applied to the same voxels twice. With local updates disabled
//! (`SolverConfig::local_updates = false`) the method reduces exactly to
//! synchronous data-parallel gradient descent, which the integration tests
//! exploit to verify equivalence with a serial reference.

use crate::config::SolverConfig;
use crate::engine::{IterationEngine, RecoveryPolicy, SolverKernel};
use crate::gradient_decomp::passes::run_accumulation_passes;
use crate::tiling::TileGrid;
use crate::worker::TileWorker;
use ptycho_array::Array3;
use ptycho_cluster::{
    CommBackend, CommError, HardwareModel, MemoryCategory, RankComm, RankFailure, SharedTile,
    TilePayloadPool,
};
use ptycho_fft::{CArray3, Complex64};
use ptycho_sim::dataset::{Dataset, BYTES_PER_COMPLEX};
use ptycho_sim::scan::ProbeLocation;

pub use crate::engine::ReconstructionResult;

/// The Gradient Decomposition parallel solver (the paper's contribution).
pub struct GradientDecompositionSolver<'a> {
    dataset: &'a Dataset,
    config: SolverConfig,
    grid: TileGrid,
}

impl<'a> GradientDecompositionSolver<'a> {
    /// Creates a solver that decomposes `dataset`'s reconstruction over a
    /// `grid_dims.0 × grid_dims.1` tile grid.
    pub fn new(dataset: &'a Dataset, config: SolverConfig, grid_dims: (usize, usize)) -> Self {
        let (_, rows, cols) = dataset.object_shape();
        let grid = TileGrid::new(
            rows,
            cols,
            grid_dims.0,
            grid_dims.1,
            config.halo_px,
            dataset.scan(),
        );
        Self {
            dataset,
            config,
            grid,
        }
    }

    /// Creates a solver for `workers` ranks using a near-square tile grid.
    pub fn for_workers(dataset: &'a Dataset, config: SolverConfig, workers: usize) -> Self {
        Self::new(dataset, config, TileGrid::grid_dims_for(workers))
    }

    /// The tile decomposition.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Number of synchronisation rounds per iteration (identical on every
    /// rank, so the collective passes cannot deadlock).
    fn rounds_per_iteration(&self) -> usize {
        let max_owned = self
            .grid
            .tiles()
            .iter()
            .map(|t| t.owned_locations.len())
            .max()
            .unwrap_or(0);
        match self.config.pass_frequency {
            crate::config::PassFrequency::EveryProbe => max_owned.max(1),
            crate::config::PassFrequency::PerIteration(times) => times.clamp(1, max_owned.max(1)),
        }
    }

    /// Runs the reconstruction on the given communication backend, one rank
    /// per tile. Panics on communication failure; use
    /// [`Self::try_run`] when faults are expected (fault-injection tests).
    pub fn run<B: CommBackend>(&self, backend: &B) -> ReconstructionResult {
        self.try_run(backend)
            .expect("communication failed during reconstruction")
    }

    /// Runs the reconstruction, surfacing communication failures (lost
    /// messages, deadlocks) as an error instead of panicking.
    pub fn try_run<B: CommBackend>(
        &self,
        backend: &B,
    ) -> Result<ReconstructionResult, RankFailure> {
        self.run_with_recovery(backend, RecoveryPolicy::FailFast)
    }

    /// Runs the reconstruction under an explicit [`RecoveryPolicy`]: with
    /// [`RecoveryPolicy::RetransmitThenRestart`], lost messages are healed
    /// by acknowledge/retransmit and surviving failures roll back to the
    /// last completed iteration instead of aborting.
    pub fn run_with_recovery<B: CommBackend>(
        &self,
        backend: &B,
        policy: RecoveryPolicy,
    ) -> Result<ReconstructionResult, RankFailure> {
        self.run_job(backend, policy, &crate::engine::JobContext::default())
    }

    /// Runs the reconstruction as one job of a multi-tenant service: the
    /// [`JobContext`] adds cooperative cancellation, per-iteration progress
    /// streaming, and an externally owned spare pool to
    /// [`Self::run_with_recovery`] (which is this with an empty context).
    ///
    /// [`JobContext`]: crate::engine::JobContext
    pub fn run_job<B: CommBackend>(
        &self,
        backend: &B,
        policy: RecoveryPolicy,
        job: &crate::engine::JobContext<'_>,
    ) -> Result<ReconstructionResult, RankFailure> {
        let initial = self.dataset.initial_guess();
        let kernel = GdKernel {
            dataset: self.dataset,
            grid: &self.grid,
            config: self.config,
            rounds: self.rounds_per_iteration(),
            initial: &initial,
        };
        IterationEngine::with_policy(&kernel, policy).run_with_context(backend, job)
    }
}

/// The Gradient Decomposition [`SolverKernel`]: Algorithm 1's per-rank,
/// per-iteration body, plugged into the shared iteration engine.
struct GdKernel<'a> {
    dataset: &'a Dataset,
    grid: &'a TileGrid,
    config: SolverConfig,
    rounds: usize,
    initial: &'a CArray3,
}

/// Rank-local Gradient Decomposition state. Every buffer is allocated once
/// here and reused across iterations — the steady-state loop is
/// allocation-free (pinned by `tests/alloc_regression.rs`).
struct GdState<'a> {
    worker: TileWorker<'a>,
    owned: Vec<ProbeLocation>,
    acc_buf: CArray3,
    own_acc: CArray3,
    /// Probe-window-shaped gradient scratch, refilled per probe location.
    gradient: CArray3,
    /// Recycles the pass-message payload buffers, so steady-state sends
    /// allocate nothing.
    pool: TilePayloadPool,
}

impl SolverKernel for GdKernel<'_> {
    type State<'k>
        = GdState<'k>
    where
        Self: 'k;
    type Checkpoint = CArray3;

    fn grid(&self) -> &TileGrid {
        self.grid
    }

    fn iterations(&self) -> usize {
        self.config.iterations
    }

    fn init<'k, C: RankComm<SharedTile>>(&'k self, ctx: &mut C) -> GdState<'k> {
        let tile = self.grid.tile(ctx.rank()).clone();
        let owned = tile.owned_locations.clone();
        let slices = self.dataset.object_shape().0;
        let window = self.dataset.model().window_px();

        let worker = TileWorker::new(
            self.dataset,
            &tile,
            self.initial,
            &self.config,
            owned.len(),
            ctx.memory_mut(),
        );
        // The accumulation buffer (and, with local updates, the record of
        // what was already applied locally) live on the GPU too.
        let buffer_bytes = tile.extended.area() * slices * BYTES_PER_COMPLEX;
        ctx.memory_mut()
            .allocate(MemoryCategory::AccumulationBuffer, buffer_bytes);
        if self.config.local_updates {
            ctx.memory_mut()
                .allocate(MemoryCategory::AccumulationBuffer, buffer_bytes);
        }

        let acc_buf = worker.zero_buffer();
        let own_acc = worker.zero_buffer();
        let gradient = Array3::full(slices, window, window, Complex64::ZERO);
        GdState {
            worker,
            owned,
            acc_buf,
            own_acc,
            gradient,
            pool: TilePayloadPool::new(),
        }
    }

    fn run_iteration<C: RankComm<SharedTile>>(
        &self,
        ctx: &mut C,
        state: &mut GdState<'_>,
        _iteration: usize,
    ) -> Result<f64, CommError> {
        let GdState {
            worker,
            owned,
            acc_buf,
            own_acc,
            gradient,
            pool,
        } = state;
        let mut iteration_cost = 0.0;
        for round in 0..self.rounds {
            // This round's share of the owned probe locations.
            let start = round * owned.len() / self.rounds;
            let end = (round + 1) * owned.len() / self.rounds;
            for loc in &owned[start..end] {
                let loss = ctx
                    .clock_mut()
                    .compute(|| worker.compute_gradient_into(loc, gradient));
                iteration_cost += loss;
                ctx.clock_mut().compute(|| {
                    worker.accumulate_patch(acc_buf, loc, gradient);
                    if self.config.local_updates {
                        worker.accumulate_patch(own_acc, loc, gradient);
                        worker.apply_patch(loc, gradient);
                    }
                });
            }

            // Steps 10-13: accumulate gradients across tiles.
            run_accumulation_passes(ctx, self.grid, acc_buf, pool)?;

            // Steps 14-15: update the tile from the accumulated gradients.
            ctx.clock_mut().compute(|| {
                if self.config.local_updates {
                    // Apply only what this tile has not already applied.
                    worker.apply_buffer_remote(acc_buf, own_acc);
                } else {
                    worker.apply_buffer(acc_buf);
                }
            });

            // Step 16: reset the buffers (in place, reusing their storage).
            acc_buf.fill(Complex64::ZERO);
            own_acc.fill(Complex64::ZERO);
        }
        Ok(iteration_cost)
    }

    fn checkpoint(&self, state: &GdState<'_>) -> CArray3 {
        state.worker.volume().clone()
    }

    fn restore(&self, state: &mut GdState<'_>, checkpoint: &CArray3) {
        *state.worker.volume_mut() = checkpoint.clone();
        // The buffers are zero at every iteration boundary; discard whatever
        // the failed attempt left in them.
        state.acc_buf.fill(Complex64::ZERO);
        state.own_acc.fill(Complex64::ZERO);
    }

    fn core_volume(&self, state: &GdState<'_>) -> CArray3 {
        state.worker.core_volume()
    }

    fn modeled_compute_ns(&self, rank: usize) -> u64 {
        // Analytic (deterministic) per-iteration compute time for the
        // telemetry stream's simulated clock: every owned probe location is
        // visited exactly once per iteration, whatever the round split.
        let tile = self.grid.tile(rank);
        let slices = self.dataset.object_shape().0;
        let window = self.dataset.model().window_px();
        let working_set = (tile.extended.area() * slices * BYTES_PER_COMPLEX) as f64;
        let per_probe =
            HardwareModel::summit_v100().probe_gradient_time(window, slices, working_set);
        (tile.owned_locations.len() as f64 * per_probe * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PassFrequency;
    use ptycho_cluster::{Cluster, ClusterTopology};
    use ptycho_sim::dataset::SyntheticConfig;

    fn tiny_dataset() -> Dataset {
        Dataset::synthesize(SyntheticConfig::tiny())
    }

    fn quick_config(iterations: usize) -> SolverConfig {
        SolverConfig {
            iterations,
            halo_px: 20,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn single_rank_reduces_cost() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::new(&dataset, quick_config(3), (1, 1));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert_eq!(result.volume.shape(), dataset.object_shape());
        assert!(result.cost_history.is_monotonically_decreasing());
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
        assert!(result.recovery.is_clean());
    }

    #[test]
    fn four_ranks_reduce_cost_and_report_memory() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::new(&dataset, quick_config(3), (2, 2));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert_eq!(result.time.len(), 4);
        assert_eq!(result.memory.len(), 4);
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
        assert!(result.average_peak_memory_bytes() > 0.0);
        // Each rank holds roughly a quarter of the volume plus halo, so its
        // voxel storage (tile + halo) must be well below the full volume's.
        let (d, r, c) = dataset.object_shape();
        let full_volume_bytes = d * r * c * 16;
        for m in &result.memory {
            let voxel_bytes = m.peak_of(ptycho_cluster::MemoryCategory::TileVoxels)
                + m.peak_of(ptycho_cluster::MemoryCategory::HaloVoxels);
            assert!(voxel_bytes < full_volume_bytes);
        }
    }

    #[test]
    fn zero_support_threshold_is_bit_identical_to_the_dense_path() {
        // Some(0.0) selects the full probe window: the padded probe and the
        // pruned entry-slice transform must reproduce the dense solver run
        // bit for bit.
        let dataset = tiny_dataset();
        let dense = GradientDecompositionSolver::new(&dataset, quick_config(2), (1, 2))
            .run(&Cluster::new(ClusterTopology::summit()));
        let pruned_config = SolverConfig {
            probe_support_threshold: Some(0.0),
            ..quick_config(2)
        };
        let pruned = GradientDecompositionSolver::new(&dataset, pruned_config, (1, 2))
            .run(&Cluster::new(ClusterTopology::summit()));
        for (a, b) in dense.volume.iter().zip(pruned.volume.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn support_pruned_solver_still_reduces_cost() {
        let dataset = tiny_dataset();
        let config = SolverConfig {
            probe_support_threshold: Some(1e-6),
            ..quick_config(3)
        };
        let solver = GradientDecompositionSolver::new(&dataset, config, (1, 1));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert!(result.cost_history.is_monotonically_decreasing());
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
    }

    #[test]
    fn full_window_detector_roi_is_bit_identical_to_the_dense_path() {
        // The degenerate ROI covering the whole detector window selects the
        // dense far-field transform again, so the configured seam must
        // reproduce the dense solver run bit for bit — the pin that keeps
        // the `SolverConfig::detector_roi` wiring honest.
        let dataset = tiny_dataset();
        let window = dataset.model().window_px() as i64;
        let dense = GradientDecompositionSolver::new(&dataset, quick_config(2), (1, 2))
            .run(&Cluster::new(ClusterTopology::summit()));
        let roi_config = SolverConfig {
            detector_roi: Some(ptycho_array::Rect::new(0, 0, window, window)),
            ..quick_config(2)
        };
        let restricted = GradientDecompositionSolver::new(&dataset, roi_config, (1, 2))
            .run(&Cluster::new(ClusterTopology::summit()));
        for (a, b) in dense.volume.iter().zip(restricted.volume.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn detector_roi_solver_still_reduces_cost() {
        let dataset = tiny_dataset();
        let config = SolverConfig {
            detector_roi: Some(ptycho_array::Rect::new(8, 8, 16, 16)),
            ..quick_config(3)
        };
        let solver = GradientDecompositionSolver::new(&dataset, config, (1, 1));
        let result = solver.run(&Cluster::new(ClusterTopology::summit()));
        assert!(result.cost_history.final_cost() < result.cost_history.initial_cost());
        assert!(result.cost_history.final_cost().is_finite());
    }

    #[test]
    fn decomposed_matches_serial_when_updates_are_synchronous() {
        // With local updates disabled and one pass per iteration, the parallel
        // method is exactly synchronous full-gradient descent, so any tile
        // grid must give the same answer as a single rank.
        let dataset = tiny_dataset();
        let config = SolverConfig {
            iterations: 2,
            local_updates: false,
            pass_frequency: PassFrequency::PerIteration(1),
            halo_px: 20,
            ..SolverConfig::default()
        };
        let cluster = Cluster::new(ClusterTopology::summit());

        let serial = GradientDecompositionSolver::new(&dataset, config, (1, 1)).run(&cluster);
        let parallel = GradientDecompositionSolver::new(&dataset, config, (2, 2)).run(&cluster);

        let max_diff = serial
            .volume
            .iter()
            .zip(parallel.volume.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff < 1e-6,
            "parallel synchronous GD should match serial GD, max diff {max_diff}"
        );
        for (a, b) in serial
            .cost_history
            .costs()
            .iter()
            .zip(parallel.cost_history.costs())
        {
            assert!((a - b).abs() < 1e-6 * a.max(1.0));
        }
    }

    #[test]
    fn pass_frequency_variants_all_converge() {
        let dataset = tiny_dataset();
        let cluster = Cluster::new(ClusterTopology::summit());
        for freq in [
            PassFrequency::EveryProbe,
            PassFrequency::PerIteration(2),
            PassFrequency::PerIteration(1),
        ] {
            let config = SolverConfig {
                iterations: 2,
                pass_frequency: freq,
                halo_px: 20,
                ..SolverConfig::default()
            };
            let result = GradientDecompositionSolver::new(&dataset, config, (2, 2)).run(&cluster);
            assert!(
                result.cost_history.final_cost() < result.cost_history.initial_cost(),
                "{freq:?} failed to reduce the cost"
            );
        }
    }

    #[test]
    fn for_workers_uses_near_square_grid() {
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::for_workers(&dataset, quick_config(1), 6);
        assert_eq!(solver.grid().grid_shape(), (2, 3));
    }

    #[test]
    fn recovery_mode_matches_fail_fast_on_a_clean_run() {
        // The reliable layer and the per-iteration checkpoints must not
        // change the numerics: a fault-free recovery-mode run is
        // bit-identical to the fail-fast run.
        let dataset = tiny_dataset();
        let solver = GradientDecompositionSolver::new(&dataset, quick_config(2), (2, 2));
        let backend = ptycho_cluster::LockstepBackend::new(ClusterTopology::summit());
        let plain = solver.run(&backend);
        let recovered = solver
            .run_with_recovery(
                &backend,
                RecoveryPolicy::RetransmitThenRestart {
                    max_iteration_restarts: 2,
                },
            )
            .expect("fault-free run cannot fail");
        assert_eq!(recovered.recovery.iteration_restarts, 0);
        for (a, b) in plain.volume.iter().zip(recovered.volume.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }
}
