//! Forward and backward accumulated-gradient passes (Sec. IV, Fig. 4).
//!
//! Direct-neighbour gradient exchange is not enough when the probe overlap
//! ratio is high: a probe circle can overlap tiles that are not adjacent to
//! its owner. The paper's remedy is a pair of directional sweeps per axis:
//!
//! * **forward pass** — each tile *adds* its accumulation buffer into the next
//!   tile's buffer over their overlap region, sweeping top→bottom (vertical)
//!   or left→right (horizontal), so contributions cascade down the chain;
//! * **backward pass** — the last tile's now-complete buffer is swept back,
//!   *replacing* the predecessors' buffers over the overlap regions, so every
//!   tile in the chain ends up with the same accumulated values.
//!
//! Running vertical forward+backward, then horizontal forward+backward makes
//! every tile's buffer equal to the total image gradient over its extended
//! tile, including the diagonal overlaps (corner contributions travel through
//! the intermediate tile). The sweeps for different columns (respectively
//! rows) are independent, which is what the APPP pipelining exploits.

use crate::tiling::TileGrid;
use crate::worker::{add_region_flat, send_pooled_region, set_region_flat};
use ptycho_cluster::{CommError, RankComm, SharedTile, TilePayloadPool};
use ptycho_fft::CArray3;

/// Message tags for the four directional passes; combined with the sending
/// rank they uniquely identify each transfer within one synchronisation round.
pub mod tags {
    /// Vertical forward pass (top tile row → bottom tile row).
    pub const VERTICAL_FORWARD: u64 = 0x10;
    /// Vertical backward pass (bottom tile row → top tile row).
    pub const VERTICAL_BACKWARD: u64 = 0x11;
    /// Horizontal forward pass (leftmost tile column → rightmost).
    pub const HORIZONTAL_FORWARD: u64 = 0x12;
    /// Horizontal backward pass (rightmost tile column → leftmost).
    pub const HORIZONTAL_BACKWARD: u64 = 0x13;
}

/// The direction of one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis {
    Vertical,
    Horizontal,
}

/// Runs all four directional passes on this rank's accumulation buffer,
/// leaving it equal (over its extended tile) to the sum of the accumulation
/// buffers of every tile whose extended region overlaps it.
///
/// Every rank in the grid must call this the same number of times per
/// iteration, otherwise the blocking receives deadlock (on the lockstep
/// backend the deadlock is detected and reported as a [`CommError`]).
///
/// Generic over the communication backend: any [`RankComm`] carrying the
/// flat `re, im`-interleaved wire format works. Payloads travel as
/// [`SharedTile`]s, so the fault-injection and reliable-delivery layers
/// duplicate/buffer them by aliasing an `Arc` instead of deep-copying
/// tile-sized buffers — and every payload buffer comes out of the rank's
/// [`TilePayloadPool`], so the steady-state send path allocates nothing.
pub fn run_accumulation_passes<C: RankComm<SharedTile>>(
    ctx: &mut C,
    grid: &TileGrid,
    buffer: &mut CArray3,
    pool: &mut TilePayloadPool,
) -> Result<(), CommError> {
    forward_pass(ctx, grid, buffer, pool, Axis::Vertical)?;
    backward_pass(ctx, grid, buffer, pool, Axis::Vertical)?;
    forward_pass(ctx, grid, buffer, pool, Axis::Horizontal)?;
    backward_pass(ctx, grid, buffer, pool, Axis::Horizontal)
}

/// The neighbour "before" this rank along an axis (above / to the left).
fn predecessor(grid: &TileGrid, rank: usize, axis: Axis) -> Option<usize> {
    let (gr, gc) = grid.tile(rank).grid_pos;
    match axis {
        Axis::Vertical if gr > 0 => Some(grid.rank_at(gr - 1, gc)),
        Axis::Horizontal if gc > 0 => Some(grid.rank_at(gr, gc - 1)),
        _ => None,
    }
}

/// The neighbour "after" this rank along an axis (below / to the right).
fn successor(grid: &TileGrid, rank: usize, axis: Axis) -> Option<usize> {
    let (gr, gc) = grid.tile(rank).grid_pos;
    let (grid_rows, grid_cols) = grid.grid_shape();
    match axis {
        Axis::Vertical if gr + 1 < grid_rows => Some(grid.rank_at(gr + 1, gc)),
        Axis::Horizontal if gc + 1 < grid_cols => Some(grid.rank_at(gr, gc + 1)),
        _ => None,
    }
}

/// The overlap between this rank and a peer, in this rank's tile-local
/// coordinates (empty when the extended tiles do not touch).
fn local_overlap(grid: &TileGrid, rank: usize, peer: usize) -> ptycho_array::Rect {
    grid.overlap(rank, peer).to_local(&grid.tile(rank).extended)
}

fn forward_tag(axis: Axis) -> u64 {
    match axis {
        Axis::Vertical => tags::VERTICAL_FORWARD,
        Axis::Horizontal => tags::HORIZONTAL_FORWARD,
    }
}

fn backward_tag(axis: Axis) -> u64 {
    match axis {
        Axis::Vertical => tags::VERTICAL_BACKWARD,
        Axis::Horizontal => tags::HORIZONTAL_BACKWARD,
    }
}

/// Forward sweep: receive-and-add from the predecessor (if any), then send the
/// now-augmented overlap region to the successor (if any).
fn forward_pass<C: RankComm<SharedTile>>(
    ctx: &mut C,
    grid: &TileGrid,
    buffer: &mut CArray3,
    pool: &mut TilePayloadPool,
    axis: Axis,
) -> Result<(), CommError> {
    let rank = ctx.rank();
    let tag = forward_tag(axis);
    if let Some(prev) = predecessor(grid, rank, axis) {
        let region = local_overlap(grid, rank, prev);
        if !region.is_empty() {
            let payload = ctx.recv(prev, tag)?;
            add_region_flat(buffer, region, payload.values());
        }
    }
    if let Some(next) = successor(grid, rank, axis) {
        let region = local_overlap(grid, rank, next);
        if !region.is_empty() {
            send_pooled_region(ctx, pool, buffer, region, next, tag);
        }
    }
    Ok(())
}

/// Backward sweep: receive-and-replace from the successor (if any), then send
/// the overlap region back to the predecessor (if any).
fn backward_pass<C: RankComm<SharedTile>>(
    ctx: &mut C,
    grid: &TileGrid,
    buffer: &mut CArray3,
    pool: &mut TilePayloadPool,
    axis: Axis,
) -> Result<(), CommError> {
    let rank = ctx.rank();
    let tag = backward_tag(axis);
    if let Some(next) = successor(grid, rank, axis) {
        let region = local_overlap(grid, rank, next);
        if !region.is_empty() {
            let payload = ctx.recv(next, tag)?;
            set_region_flat(buffer, region, payload.values());
        }
    }
    if let Some(prev) = predecessor(grid, rank, axis) {
        let region = local_overlap(grid, rank, prev);
        if !region.is_empty() {
            send_pooled_region(ctx, pool, buffer, region, prev, tag);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptycho_array::{Array3, Rect};
    use ptycho_cluster::{Cluster, ClusterTopology};
    use ptycho_fft::Complex64;
    use ptycho_sim::scan::{ScanConfig, ScanPattern};

    fn scan_for(image: usize) -> ScanPattern {
        ScanPattern::generate(ScanConfig {
            rows: 4,
            cols: 4,
            step_px: (image / 5) as f64,
            origin_px: (8.0, 8.0),
            window_px: 8,
            probe_radius_px: 4.0,
        })
    }

    /// Reference: scatter every tile's buffer into a global image and read the
    /// total back over each tile's extended region.
    fn global_reference(
        grid: &TileGrid,
        locals: &[CArray3],
        slices: usize,
        image: usize,
    ) -> Vec<CArray3> {
        let mut global = Array3::full(slices, image, image, Complex64::ZERO);
        for (rank, local) in locals.iter().enumerate() {
            global.add_region(grid.tile(rank).extended, local);
        }
        (0..grid.num_tiles())
            .map(|rank| global.extract_region_with_fill(grid.tile(rank).extended, Complex64::ZERO))
            .collect()
    }

    fn run_passes_and_compare(grid_rows: usize, grid_cols: usize, halo: usize) {
        let image = 48;
        let slices = 2;
        let scan = scan_for(image);
        let grid = TileGrid::new(image, image, grid_rows, grid_cols, halo, &scan);
        let ranks = grid.num_tiles();

        // Give every rank a deterministic, rank-dependent buffer.
        let initial: Vec<CArray3> = (0..ranks)
            .map(|rank| {
                let ext = grid.tile(rank).extended;
                Array3::from_fn(slices, ext.rows(), ext.cols(), |s, r, c| {
                    Complex64::new(
                        (rank * 1000 + s * 100 + r * 10 + c) as f64 * 0.001,
                        (rank + 1) as f64,
                    )
                })
            })
            .collect();
        let expected = global_reference(&grid, &initial, slices, image);

        let cluster = Cluster::new(ClusterTopology::summit());
        let grid_ref = &grid;
        let initial_ref = &initial;
        let outcomes = cluster
            .run::<SharedTile, CArray3, _>(ranks, |ctx| {
                let mut buffer = initial_ref[ctx.rank()].clone();
                let mut pool = TilePayloadPool::new();
                run_accumulation_passes(ctx, grid_ref, &mut buffer, &mut pool)?;
                Ok(buffer)
            })
            .expect("no faults injected");

        for (rank, outcome) in outcomes.iter().enumerate() {
            let got = &outcome.result;
            let want = &expected[rank];
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.iter().zip(want.iter()) {
                assert!(
                    (*a - *b).abs() < 1e-9,
                    "rank {rank}: accumulated buffer mismatch ({a:?} vs {b:?})"
                );
            }
        }
    }

    #[test]
    fn passes_match_global_reference_3x3() {
        run_passes_and_compare(3, 3, 6);
    }

    #[test]
    fn passes_match_global_reference_2x4() {
        run_passes_and_compare(2, 4, 4);
    }

    #[test]
    fn passes_match_global_reference_1x1_is_noop() {
        run_passes_and_compare(1, 1, 4);
    }

    #[test]
    fn passes_match_global_reference_single_row() {
        run_passes_and_compare(1, 4, 5);
    }

    #[test]
    fn passes_match_global_reference_single_column() {
        run_passes_and_compare(4, 1, 5);
    }

    #[test]
    fn predecessor_successor_geometry() {
        let image = 48;
        let scan = scan_for(image);
        let grid = TileGrid::new(image, image, 3, 3, 4, &scan);
        let center = grid.rank_at(1, 1);
        assert_eq!(
            predecessor(&grid, center, Axis::Vertical),
            Some(grid.rank_at(0, 1))
        );
        assert_eq!(
            successor(&grid, center, Axis::Vertical),
            Some(grid.rank_at(2, 1))
        );
        assert_eq!(
            predecessor(&grid, center, Axis::Horizontal),
            Some(grid.rank_at(1, 0))
        );
        assert_eq!(
            successor(&grid, center, Axis::Horizontal),
            Some(grid.rank_at(1, 2))
        );
        assert_eq!(predecessor(&grid, 0, Axis::Vertical), None);
        assert_eq!(successor(&grid, grid.rank_at(2, 2), Axis::Horizontal), None);
    }

    #[test]
    fn local_overlap_is_inside_extended_tile() {
        let image = 48;
        let scan = scan_for(image);
        let grid = TileGrid::new(image, image, 3, 3, 4, &scan);
        let a = grid.rank_at(1, 1);
        let b = grid.rank_at(1, 2);
        let local = local_overlap(&grid, a, b);
        let ext = grid.tile(a).extended;
        let local_bounds = Rect::of_shape(ext.rows(), ext.cols());
        assert!(local_bounds.contains_rect(&local));
        assert!(!local.is_empty());
    }
}
