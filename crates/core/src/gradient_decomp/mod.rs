//! The Gradient Decomposition method (Secs. III–V of the paper).
//!
//! * [`passes`] — the forward/backward accumulated-gradient passes of Fig. 4,
//!   expressed as per-rank operations on the message-passing runtime.
//! * [`solver`] — Algorithm 1: per-probe gradient computation, delayed
//!   accumulation with period `T`, asynchronously pipelined passes, tile
//!   updates and stitching.

pub mod passes;
pub mod solver;
